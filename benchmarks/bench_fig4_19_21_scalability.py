"""Figures 4.19-4.21 (Experiment 4): scalability over TCP flow counts.

Expected shape: aggregate forward rate near the ~700 Mbps plateau for
native and both LVRM modes at every flow count; max-min fairness > 0.8
and Jain's index > 0.99."""


def test_fig4_19_21_exp4(run_figure):
    result = run_figure("exp4")
    for row in result.rows:
        _mech, _n, agg, max_min, jain = row
        assert agg > 400.0
        assert max_min > 0.7
        assert jain > 0.97
