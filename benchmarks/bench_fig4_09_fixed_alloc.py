"""Figure 4.9 (Experiment 2b): throughput vs fixed core count.

Expected shape: ~60c Kfps scaling up to the seven non-LVRM cores, then a
contention drop when instances outnumber physical cores."""


def test_fig4_09_exp2b(run_figure):
    result = run_figure("exp2b")
    cpp = {row[1]: row[2] for row in result.by(vr_type="cpp")}
    assert cpp[6] > cpp[3] > cpp[1]
    assert cpp[8] < cpp[7]
