"""Figure 4.14 (Experiment 3a): load balancing among VRIs of one VR.

Expected shape: JSQ, round-robin, and random all land near the 360 Kfps
ideal, with JSQ slightly ahead (it alone reads the current loads)."""


def test_fig4_14_exp3a(run_figure):
    result = run_figure("exp3a")
    cpp = {row[1]: row[2] for row in result.by(vr_type="cpp")}
    ideal = result.by(vr_type="cpp")[0][3]
    assert all(v > 0.9 * ideal for v in cpp.values())
