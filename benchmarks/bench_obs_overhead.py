"""Span-probe overhead on the real-process forwarding path.

Measures the runtime backend's end-to-end forwarding rate (dispatch →
worker → drain, the ``bench_micro_runtime.py`` workload) under three
span-sampling settings and writes the trajectory to ``BENCH_obs.json``
at the repo root:

* ``off``      — ``span_sample_every=0``, no probes at all (baseline);
* ``1-in-64``  — the documented production default for the probes;
* ``1-in-1``   — every frame carries a probe (worst case).

The hard budget is on the *disabled* path: with ``span_sample_every=0``
the probe machinery must cost ≤ 2% of the pre-spans
``bench_micro_runtime.py`` throughput (the hot loops only ever pay a
4-byte magic-prefix compare per record).  The sampled columns show what
turning the knob up costs — around 3% at the 1-in-64 default, and
markedly more at 1-in-1 — so an operator can price the visibility.

Run directly (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
or via ``bench_runner.py``.  Numbers are wall-clock and host-dependent:
compare ratios across commits, not absolutes.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.net.addresses import ip_to_int  # noqa: E402
from repro.net.packet import build_udp_frame  # noqa: E402
from repro.runtime import RuntimeLvrm  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_obs.json"

#: (column name, span_sample_every) in measurement order.
VARIANTS = (("off", 0), ("1-in-64", 64), ("1-in-1", 1))
N_FRAMES = 8000
REPEATS = 3


def _forward_rate(sample_every: int, n: int = N_FRAMES,
                  repeats: int = REPEATS) -> Dict[str, float]:
    """Best-of-``repeats`` forwarding rate with the given sampling."""
    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"x" * 64)
    best = 0.0
    for _ in range(repeats):
        with RuntimeLvrm(n_vris=1, worker_lifetime=90.0,
                         span_sample_every=sample_every) as lvrm:
            # Warm-up outside the timed window: fork, ring mmap, first
            # route lookup.
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
            while not lvrm.drain():
                time.sleep(1e-4)
            sent = got = 0
            t0 = time.perf_counter()
            deadline = t0 + 60.0
            while got < n and time.perf_counter() < deadline:
                if sent < n and lvrm.dispatch(frame):
                    sent += 1
                got += len(lvrm.drain())
            elapsed = time.perf_counter() - t0
        if got != n:
            raise RuntimeError(
                f"forwarded only {got}/{n} frames (sample_every="
                f"{sample_every})")
        best = max(best, n / elapsed)
    return {"frames_per_sec": best, "us_per_frame": 1e6 / best}


def bench_obs_overhead() -> Dict[str, Dict]:
    variants: Dict[str, Dict] = {}
    for name, every in VARIANTS:
        print(f"[bench_obs] spans {name} ...", flush=True)
        variants[name] = _forward_rate(every)
    base = variants["off"]["frames_per_sec"]
    return {"span_overhead_runtime": {
        "unit": "frames/sec",
        "frames": N_FRAMES,
        "variants": variants,
        "overhead_1_in_64": 1.0 - variants["1-in-64"]["frames_per_sec"] / base,
        "overhead_1_in_1": 1.0 - variants["1-in-1"]["frames_per_sec"] / base,
    }}


def main() -> int:
    benches = bench_obs_overhead()
    report = {
        "schema": "repro.bench_obs/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_obs] wrote {OUT_PATH}")
    span = benches["span_overhead_runtime"]
    for name, _every in VARIANTS:
        rate = span["variants"][name]["frames_per_sec"]
        print(f"  spans {name:8s} {rate:>12.0f} frames/sec")
    print(f"  overhead: 1-in-64 {span['overhead_1_in_64']:+.2%}, "
          f"1-in-1 {span['overhead_1_in_1']:+.2%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
