"""Record-mode overhead on the real-process forwarding path.

Measures the runtime backend's end-to-end forwarding rate (dispatch →
worker → drain, the ``bench_obs_overhead.py`` workload) with the
replay trace recorder detached vs attached, and how fast the DES twin
replays the recorded interleaving.  Writes the trajectory to
``BENCH_replay.json`` at the repo root:

* ``record_overhead_runtime`` — frames/sec with recording ``off`` vs
  ``on`` (a :class:`repro.replay.ReplayRecorder` absorbing every
  replay-plane event: ring push/pop batches, control messages, span
  closes).  The budget is ≤ 10% end-to-end: the hot loops only pay a
  guarded ``Tracer.instant`` per *batch*, not per frame, so the
  recorder rides the existing batching.  The ``speedup`` field is the
  on/off rate ratio (≈ 0.9-1.0) so ``bench_runner --check`` flags a
  collapse in record-mode throughput like any other fast path.
* ``replay_rate_des`` — events/sec force-scheduling the recorded trace
  through the DES engine plus the happens-before check, i.e. how much
  faster than real time an incident replays offline.

Run directly (``PYTHONPATH=src python benchmarks/bench_replay.py``)
or via ``bench_runner.py``.  Numbers are wall-clock and
host-dependent: compare ratios across commits, not absolutes.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.net.addresses import ip_to_int  # noqa: E402
from repro.net.packet import build_udp_frame  # noqa: E402
from repro.replay import ReplayRecorder, check_races, replay_events  # noqa: E402
from repro.runtime import RuntimeLvrm  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_replay.json"

N_FRAMES = 8000
REPEATS = 3


def _forward_rate(record: bool, n: int = N_FRAMES,
                  repeats: int = REPEATS) -> Dict[str, float]:
    """Best-of-``repeats`` forwarding rate, recorder attached or not."""
    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"x" * 64)
    best = 0.0
    events = 0
    for _ in range(repeats):
        recorder = ReplayRecorder().start() if record else None
        try:
            with RuntimeLvrm(n_vris=1, worker_lifetime=90.0) as lvrm:
                # Warm-up outside the timed window: fork, ring mmap,
                # first route lookup.
                while not lvrm.dispatch(frame):
                    time.sleep(1e-4)
                while not lvrm.drain():
                    time.sleep(1e-4)
                sent = got = 0
                t0 = time.perf_counter()
                deadline = t0 + 60.0
                while got < n and time.perf_counter() < deadline:
                    if sent < n and lvrm.dispatch(frame):
                        sent += 1
                    got += len(lvrm.drain())
                elapsed = time.perf_counter() - t0
        finally:
            if recorder is not None:
                events = len(recorder.events)
                recorder.stop()
        if got != n:
            raise RuntimeError(
                f"forwarded only {got}/{n} frames (record={record})")
        best = max(best, n / elapsed)
    out = {"frames_per_sec": best, "us_per_frame": 1e6 / best}
    if record:
        out["trace_events"] = events
    return out


def _replay_rate(repeats: int = REPEATS) -> Dict[str, float]:
    """Events/sec replaying a recorded forwarding run through the DES."""
    recorder = ReplayRecorder().start()
    try:
        _forward_rate(record=False, n=2000, repeats=1)
    finally:
        recorder.stop()
    events = list(recorder.events)
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        replay_events(events)
        check_races(events)
        elapsed = time.perf_counter() - t0
        best = max(best, len(events) / elapsed)
    return {"events": len(events), "events_per_sec": best}


def collect() -> Dict[str, Dict]:
    """The speedup rows ``bench_runner --check`` gates on."""
    print("[bench_replay] recording off ...", flush=True)
    off = _forward_rate(record=False)
    print("[bench_replay] recording on ...", flush=True)
    on = _forward_rate(record=True)
    ratio = on["frames_per_sec"] / off["frames_per_sec"]
    return {"record_overhead_runtime": {
        "unit": "frames/sec",
        "frames": N_FRAMES,
        "before": off["frames_per_sec"],
        "after": on["frames_per_sec"],
        # on/off rate ratio: 1.0 = free, 0.9 = the 10% budget edge.
        "speedup": ratio,
        "overhead": 1.0 - ratio,
        "variants": {"off": off, "on": on},
    }}


def main() -> int:
    benches = collect()
    print("[bench_replay] des replay ...", flush=True)
    benches["replay_rate_des"] = _replay_rate()
    report = {
        "schema": "repro.bench_replay/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_replay] wrote {OUT_PATH}")
    rec = benches["record_overhead_runtime"]
    print(f"  recording off {rec['before']:>12.0f} frames/sec")
    print(f"  recording on  {rec['after']:>12.0f} frames/sec "
          f"({rec['variants']['on'].get('trace_events', 0)} events)")
    print(f"  overhead      {rec['overhead']:+.2%} (budget 10%)")
    rr = benches["replay_rate_des"]
    print(f"  replay+check  {rr['events_per_sec']:>12.0f} events/sec "
          f"({rr['events']} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
