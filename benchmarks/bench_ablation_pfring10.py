"""Ablation: LVRM 1.0 vs LVRM 1.1 socket adapters (thesis §3.1).

Before PF_RING 3.7.5 there was no zero-copy send path, so LVRM 1.0
received via PF_RING but transmitted via the raw socket; LVRM 1.1 uses
PF_RING both ways.  Expected shape at minimum-size frames:
1.1 > 1.0 > raw-socket-both-ways."""

from repro.experiments.common import ExperimentResult, get_profile, search_achievable


def _run(profile):
    result = ExperimentResult(
        "ablation-pfring10", "Socket-adapter generations @ 84 B",
        columns=("adapter", "kfps"))
    for label, mech in (("lvrm-1.1 (pf-ring both)", "lvrm-cpp-pfring"),
                        ("lvrm-1.0 (pf-ring rx only)", "lvrm-cpp-pfring1.0"),
                        ("raw socket both ways", "lvrm-cpp-raw")):
        fps = search_achievable(mech, 84, profile)
        result.add(label, fps / 1e3)
    return result


def test_ablation_pfring_generations(benchmark):
    profile = get_profile()
    result = benchmark.pedantic(lambda: _run(profile), rounds=1,
                                iterations=1)
    print("\n" + result.render())
    rates = dict(result.rows)
    assert rates["lvrm-1.1 (pf-ring both)"] >= \
        rates["lvrm-1.0 (pf-ring rx only)"] >= \
        rates["raw socket both ways"]
