"""Figure 4.12 (Experiment 2d): dynamic core allocation for two VRs.

Expected shape: two independent staircases, each tracking its own
staggered ramp."""


def test_fig4_12_exp2d(run_figure):
    result = run_figure("exp2d")
    for vr in ("vr1", "vr2"):
        cores = [row[3] for row in result.by(vr=vr)]
        assert max(cores) >= 3
        assert min(cores) <= 1
