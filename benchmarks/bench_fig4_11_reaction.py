"""Figure 4.11 (Experiment 2c): core (de)allocation reaction times.

Expected shape: allocations within ~900 us (vfork-dominated),
deallocations within ~700 us, both far below interactive-latency
budgets (ITU G.114's 150 ms)."""


def test_fig4_11_exp2c_reaction(run_figure):
    result = run_figure("exp2c-reaction")
    alloc = result.by(kind="allocate")[0]
    dealloc = result.by(kind="deallocate")[0]
    max_us = result.columns.index("max_us")
    assert alloc[max_us] < 1000.0
    assert dealloc[max_us] < 800.0
