"""Micro-benchmarks of the substrates (proper pytest-benchmark timing).

These measure this library's own hot paths — the real SPSC ring, the LPM
trie, the DES engine, the checksum — so regressions in the simulation
infrastructure are visible independently of the figure harness."""

import numpy as np

from repro.ipc.ring import SpscRing, ring_bytes_needed
from repro.net.checksum import checksum
from repro.routing.prefix import Prefix
from repro.routing.table import RouteTable
from repro.sim import Simulator


def test_micro_spsc_ring_push_pop(benchmark):
    buf = bytearray(ring_bytes_needed(1024, 128))
    ring = SpscRing(buf, 1024, 128)
    payload = b"x" * 64

    def op():
        ring.try_push(payload)
        ring.try_pop()

    benchmark(op)


def test_micro_lpm_lookup(benchmark):
    table = RouteTable()
    rng = np.random.default_rng(3)
    for i in range(1000):
        table.add(Prefix(int(rng.integers(0, 2**32)), int(rng.integers(8, 25))),
                  i)
    probes = rng.integers(0, 2**32, size=256).tolist()

    def op():
        for ip in probes:
            table.get(int(ip))

    benchmark(op)


def test_micro_des_engine_events(benchmark):
    def run_chain():
        sim = Simulator()

        def chain(sim, n):
            for _ in range(n):
                yield sim.timeout(1e-6)

        sim.process(chain(sim, 2000))
        sim.run()

    benchmark(run_chain)


def test_micro_checksum_1500b(benchmark):
    data = bytes(range(256)) * 6
    benchmark(lambda: checksum(data))


def test_micro_quickstart_pipeline(benchmark):
    """End-to-end frames/second of the simulated LVRM data path."""
    from repro import quickstart

    result = benchmark.pedantic(lambda: quickstart(5000), rounds=1,
                                iterations=1)
    assert result.forwarded == 5000
