"""Figure 4.6 (Experiment 1d): per-frame latency with LVRM only.

Expected shape: C++ VR within 15 us; Click VR higher (the paper's
25-35 us band) but still small next to the network path."""


def test_fig4_06_exp1d(run_figure):
    result = run_figure("exp1d")
    for row in result.rows:
        vr_type, _size, latency = row
        limit = 15.0 if vr_type == "cpp" else 40.0
        assert latency < limit
