"""Micro-benchmark: the three lock-free queue implementations.

The thesis builds on Lamport's queue [23] and points at FastForward [17]
and MCRingBuffer [24] as drop-in improvements.  In C their win is cache-
coherence traffic, which Python timing cannot resolve faithfully — but
the benchmark keeps all three honest on per-op overhead and documents
the swap-in path."""

import pytest

from repro.ipc import RING_KINDS, make_ring, ring_bytes_for


@pytest.mark.parametrize("kind", RING_KINDS)
def test_micro_ring_throughput(benchmark, kind):
    buf = bytearray(ring_bytes_for(kind, 1024, 128))
    ring = make_ring(kind, buf, 1024, 128)
    payload = b"y" * 64

    def op():
        ring.try_push(payload)
        ring.try_pop()

    benchmark(op)


@pytest.mark.parametrize("kind", RING_KINDS)
def test_micro_ring_burst_64(benchmark, kind):
    """Bursty producer/consumer pattern (closer to the LVRM data path)."""
    buf = bytearray(ring_bytes_for(kind, 1024, 128))
    ring = make_ring(kind, buf, 1024, 128)
    payload = b"z" * 84

    def op():
        for _ in range(64):
            ring.try_push(payload)
        flush = getattr(ring, "flush", None)
        if flush:
            flush()
        while ring.try_pop() is not None:
            pass

    benchmark(op)


@pytest.mark.parametrize("kind", RING_KINDS)
def test_micro_ring_batched_64(benchmark, kind):
    """Same burst as above through try_push_many/try_pop_many: the batched
    entry points read the shared indices once per run instead of per
    record (compare against test_micro_ring_burst_64)."""
    buf = bytearray(ring_bytes_for(kind, 1024, 128))
    ring = make_ring(kind, buf, 1024, 128)
    batch = [b"z" * 84] * 64
    flush = getattr(ring, "flush", None)

    def op():
        ring.try_push_many(batch)
        if flush:
            flush()
        ring.try_pop_many()

    benchmark(op)
