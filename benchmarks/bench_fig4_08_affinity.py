"""Figure 4.8 (Experiment 2a): throughput vs core affinity.

Expected shape for the C++ VR: sibling >= non-sibling > default > same;
for Click, sibling ~= non-sibling (its own pipeline is the bottleneck)."""


def test_fig4_08_exp2a(run_figure):
    result = run_figure("exp2a")
    cpp = {row[1]: row[2] for row in result.by(vr_type="cpp")}
    assert cpp["sibling"] >= cpp["non-sibling"] > cpp["same"]
