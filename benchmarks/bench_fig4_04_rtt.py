"""Figure 4.4 (Experiment 1b): round-trip ping latency.

Expected shape: native and all LVRM variants cluster in the 70-120 us
band; VMware Server and QEMU-KVM are remarkably higher."""


def test_fig4_04_exp1b(run_figure):
    result = run_figure("exp1b")
    native = result.value("rtt_us", mechanism="native", frame_size=84)
    kvm = result.value("rtt_us", mechanism="qemu-kvm", frame_size=84)
    assert kvm > 3 * native
