"""Shared helpers for the benchmark harness.

Each figure bench runs the corresponding experiment once under the
profile named by ``REPRO_PROFILE`` (default ``quick``; use ``bench`` for
denser sweeps, ``full`` for paper-scale offline runs), records its wall
time via pytest-benchmark, prints the reproduced table, and archives it
under ``benchmarks/results/``.
"""

import os
import pathlib

import pytest

from repro.experiments import get_profile, run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture
def run_figure(benchmark, profile):
    """Run one experiment id as a single-round benchmark."""

    def _run(exp_id: str):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, profile), rounds=1, iterations=1)
        table = result.render()
        print("\n" + table)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{exp_id}-{profile.name}.txt"
        out.write_text(table + "\n", encoding="utf-8")
        return result

    return _run
