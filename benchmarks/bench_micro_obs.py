"""Micro-benchmark: observability overhead on the DES hot path.

Two claims the subsystem must keep:

1. With tracing *disabled* (the default), every instrumented site costs
   one attribute-check branch.  ``test_micro_obs_guard_cost`` measures
   that branch in a tight loop and pins an absolute per-site bound far
   below a frame's simulated work, so the disabled path cannot regress
   the pipeline by the forbidden 5 %.
2. With tracing *enabled*, the pipeline still runs (slower — it
   allocates an event object per site) and actually collects events.

Run both and pytest-benchmark prints the enabled/disabled ratio for the
full quickstart pipeline.
"""

import time

import pytest

from repro import obs, quickstart
from repro.obs.trace import TRACER

N_FRAMES = 5_000


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def test_micro_obs_guard_cost():
    """The disabled-tracing guard must be nanoseconds per site."""
    assert not TRACER.enabled
    n = 1_000_000
    hits = 0
    t0 = time.perf_counter()
    for _ in range(n):
        if TRACER.enabled:
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits == 0
    per_site = elapsed / n
    # A DES frame costs ~30-40 us of Python work and crosses a handful
    # of instrumented sites; 200 ns/branch keeps the total well under
    # 5 % even on a heavily loaded CI box (typical: ~20-40 ns).
    assert per_site < 200e-9, f"guard costs {per_site * 1e9:.0f} ns/site"


@pytest.mark.timeout(300)
def test_micro_obs_disabled_pipeline(benchmark):
    """Full pipeline with tracing off: the default everyone pays."""
    assert not obs.tracing_enabled()
    stats = benchmark.pedantic(lambda: quickstart(n_frames=N_FRAMES),
                               rounds=3, iterations=1)
    assert stats.forwarded == N_FRAMES
    assert len(TRACER) == 0  # disabled means nothing was collected


@pytest.mark.timeout(300)
def test_micro_obs_enabled_pipeline(benchmark):
    """Full pipeline with tracing on: what --trace-out costs."""
    def run():
        obs.reset()
        obs.enable_tracing()
        return quickstart(n_frames=N_FRAMES)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.forwarded == N_FRAMES
    assert TRACER.named("frame.tx")
    assert TRACER.named("ewma.update")
