"""Fast-path micro/meso benchmark runner with a machine-readable output.

Measures each fast path against the slow path it replaced and writes the
before/after trajectory to ``BENCH_fastpath.json`` at the repo root:

* scalar vs batched ring I/O for all three queue kinds;
* DES events/sec on a Figure 4.5-style LVRM-only run, with the pooled
  ``sleep()`` path disabled ("before") and enabled ("after"), plus a
  pure-delay dispatch microbench isolating the event-loop fast path;
* LPM lookups/sec uncached vs cached;
* flow-table hit cost with the rehash-refresh reference vs the in-place
  refresh;
* UDP frame build cost, full codec vs precomputed template.

Run it directly (``PYTHONPATH=src python benchmarks/bench_runner.py``)
or via the non-gating ``perf-smoke`` CI job.  Honors ``REPRO_PROFILE``
for the DES leg (default ``quick``).  Numbers are wall-clock and
host-dependent: compare the *ratios* across commits, not the absolutes.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Callable, Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ipc import RING_KINDS, make_ring, ring_bytes_for  # noqa: E402
from repro.net.packet import UdpFrameTemplate, build_udp_frame  # noqa: E402
from repro.routing.prefix import Prefix  # noqa: E402
from repro.routing.table import RouteTable  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_fastpath.json"

RING_CAPACITY = 1024
RING_SLOT = 128
RING_BATCH = 64
PAYLOAD = b"z" * 84


def _rate(op: Callable[[], int], min_seconds: float = 0.25,
          repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` rate of ``op`` (which returns items handled).

    Best-of is the standard defense against scheduler/frequency noise in
    micro timing: the fastest window is the one least perturbed.
    """
    op()  # warm-up: allocator and caches settle outside the timed window
    best = 0.0
    for _ in range(repeats):
        items = 0
        t0 = time.perf_counter()
        while True:
            items += op()
            elapsed = time.perf_counter() - t0
            if elapsed >= min_seconds:
                break
        best = max(best, items / elapsed)
    return {"items_per_sec": best, "ns_per_item": 1e9 / best}


# -- ring I/O ----------------------------------------------------------------

def bench_rings() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for kind in RING_KINDS:
        buf = bytearray(ring_bytes_for(kind, RING_CAPACITY, RING_SLOT))
        ring = make_ring(kind, buf, RING_CAPACITY, RING_SLOT)
        flush = getattr(ring, "flush", None)
        batch = [PAYLOAD] * RING_BATCH

        def scalar_burst() -> int:
            for _ in range(RING_BATCH):
                ring.try_push(PAYLOAD)
            if flush is not None:
                flush()
            n = 0
            while ring.try_pop() is not None:
                n += 1
            return n

        def batched_burst() -> int:
            ring.try_push_many(batch)
            if flush is not None:
                flush()
            return len(ring.try_pop_many())

        before = _rate(scalar_burst)
        after = _rate(batched_burst)
        out[f"ring_{kind}"] = {
            "unit": "records/sec",
            "burst": RING_BATCH,
            "before": before,
            "after": after,
            "speedup": after["items_per_sec"] / before["items_per_sec"],
        }
        ring.close()
    return out


# -- DES event loop ----------------------------------------------------------

def _lvrm_only_run(reference_loop: bool) -> Dict[str, float]:
    """One Figure 4.5-style LVRM-only drain (memory adapter, C++ VR).

    ``reference_loop=True`` reproduces the pre-optimization event loop:
    per-event ``step()`` dispatch (no localized hot loop) and pure
    delays going through plain ``timeout()`` allocation instead of the
    pooled ``sleep()`` path.
    """
    from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec,
                            VrType, make_socket_adapter)
    from repro.experiments import get_profile
    from repro.hardware import DEFAULT_COSTS, Machine
    from repro.traffic.trace import synthetic_trace

    profile = get_profile()
    sim = Simulator()
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(profile.trace_frames, 84))
    lvrm = Lvrm(sim, machine, adapter, config=LvrmConfig())
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       vr_type=VrType.CPP), FixedAllocation(1))
    lvrm.start()
    if reference_loop:
        sim.sleep = sim.timeout  # type: ignore[method-assign]
        t0 = time.perf_counter()
        while sim._heap and sim.peek() <= 3600.0:
            sim.step()
        wall = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        sim.run(until=3600.0)
        wall = time.perf_counter() - t0
    return {
        "events_per_sec": sim.events_processed / wall,
        "frames_per_sec": lvrm.stats.forwarded / wall,
        "events": sim.events_processed,
        "frames": lvrm.stats.forwarded,
        "wall_seconds": wall,
    }


def _dispatch_run(use_run: bool, use_sleep: bool,
                  n_events: int = 200_000) -> float:
    """Events/sec for a pure-delay process: isolates loop + allocation
    cost, the two things the DES fast paths actually change."""
    sim = Simulator()

    def napper(sim):
        mk = sim.sleep if use_sleep else sim.timeout
        for _ in range(n_events):
            yield mk(0.001)

    sim.process(napper(sim))
    t0 = time.perf_counter()
    if use_run:
        sim.run()
    else:
        while sim._heap:
            sim.step()
    return sim.events_processed / (time.perf_counter() - t0)


def bench_des() -> Dict[str, Dict]:
    # Macro: a full LVRM run.  Event dispatch is a small slice of the
    # per-event work here (model callbacks dominate), so expect ~1.0x;
    # this leg exists to show the fast paths do not *hurt* real runs.
    runs_before = [_lvrm_only_run(reference_loop=True) for _ in range(3)]
    runs_after = [_lvrm_only_run(reference_loop=False) for _ in range(3)]
    before = max(runs_before, key=lambda r: r["events_per_sec"])
    after = max(runs_after, key=lambda r: r["events_per_sec"])
    # Micro: pure-delay dispatch, where the loop + pooling win is visible.
    disp_before = max(_dispatch_run(False, False) for _ in range(5))
    disp_after = max(_dispatch_run(True, True) for _ in range(5))
    return {
        "des_lvrm_only": {
            "unit": "events/sec",
            "scenario": "fig4.5-style LVRM-only drain, cpp VR, 84B frames",
            "before": before,
            "after": after,
            "speedup": after["events_per_sec"] / before["events_per_sec"],
        },
        "des_dispatch": {
            "unit": "events/sec",
            "scenario": "pure-delay process, 200k events: "
                        "step()+timeout() vs run()+sleep()",
            "before": {"events_per_sec": disp_before},
            "after": {"events_per_sec": disp_after},
            "speedup": disp_after / disp_before,
        },
    }


# -- LPM lookups -------------------------------------------------------------

def bench_lpm() -> Dict[str, Dict]:
    import random

    rng = random.Random(2011)
    table = RouteTable()
    for _ in range(256):
        table.add(Prefix(rng.getrandbits(32), rng.randrange(8, 25)),
                  rng.randrange(8))
    # Steady-state traffic: a few hundred distinct destinations, revisited.
    ips = [rng.getrandbits(32) for _ in range(512)]

    def uncached() -> int:
        get = table.get
        for ip in ips:
            get(ip)
        return len(ips)

    def cached() -> int:
        get = table.get_cached
        for ip in ips:
            get(ip)
        return len(ips)

    before = _rate(uncached)
    after = _rate(cached)
    return {"lpm_lookup": {
        "unit": "lookups/sec",
        "routes": len(table),
        "distinct_dsts": len(ips),
        "before": before,
        "after": after,
        "speedup": after["items_per_sec"] / before["items_per_sec"],
    }}


# -- flow table --------------------------------------------------------------

def bench_flows() -> Dict[str, Dict]:
    from repro.core.flows import FlowTable

    keys = [(i, i + 1, 17, 1000 + i, 2000 + i) for i in range(256)]

    # Reference: the tuple-entry lookup this PR replaced — identical
    # semantics (idle check, hit counter), but every hit rehashes the
    # 5-tuple to store the refreshed timestamp.
    class _TupleFlowTable(FlowTable):
        def lookup(self, key, now):
            entry = self._table.get(key)
            if entry is None:
                self.misses += 1
                return None
            vri_id, last_seen = entry
            if now - last_seen > self.idle_timeout:
                del self._table[key]
                self.expired += 1
                self.misses += 1
                return None
            self._table[key] = [vri_id, now]
            self.hits += 1
            return vri_id

    ref = _TupleFlowTable()
    table = FlowTable()
    for key in keys:
        ref.insert(key, 7, now=0.0)
        table.insert(key, 7, now=0.0)

    def tuple_refresh() -> int:
        lookup = ref.lookup
        for key in keys:
            lookup(key, 1.0)
        return len(keys)

    def inplace_refresh() -> int:
        lookup = table.lookup
        for key in keys:
            lookup(key, 1.0)
        return len(keys)

    before = _rate(tuple_refresh)
    after = _rate(inplace_refresh)
    return {"flow_hit": {
        "unit": "hits/sec",
        "flows": len(keys),
        "before": before,
        "after": after,
        "speedup": after["items_per_sec"] / before["items_per_sec"],
    }}


# -- codec -------------------------------------------------------------------

def bench_codec() -> Dict[str, Dict]:
    kw = dict(src_mac=0x020000000001, dst_mac=0x020000000002,
              src_ip=0x0A010102, dst_ip=0x0A020103,
              src_port=4000, dst_port=5000)
    payload = b"p" * 64
    template = UdpFrameTemplate(payload=payload, **kw)

    def full_build() -> int:
        for ident in range(64):
            build_udp_frame(payload=payload, ident=ident, **kw)
        return 64

    def template_render() -> int:
        render = template.render
        for ident in range(64):
            render(ident)
        return 64

    before = _rate(full_build)
    after = _rate(template_render)
    return {"udp_frame_build": {
        "unit": "frames/sec",
        "payload_bytes": len(payload),
        "before": before,
        "after": after,
        "speedup": after["items_per_sec"] / before["items_per_sec"],
    }}


def _collect_fastpath() -> Dict[str, Dict]:
    benches: Dict[str, Dict] = {}
    for name, fn in (("rings", bench_rings), ("des", bench_des),
                     ("lpm", bench_lpm), ("flows", bench_flows),
                     ("codec", bench_codec)):
        print(f"[bench_runner] running {name} ...", flush=True)
        benches.update(fn())
    return benches


#: A fresh speedup below ``committed * (1 - REGRESSION_TOLERANCE)`` is
#: flagged by ``--check``.  25% absorbs normal CI-runner noise while still
#: catching real fast-path regressions.
REGRESSION_TOLERANCE = 0.25


def check(tolerance: float = REGRESSION_TOLERANCE) -> int:
    """Re-run the speedup benches and diff them against the committed
    ``BENCH_*.json`` baselines.

    Returns non-zero when any bench's fresh speedup falls more than
    ``tolerance`` below its committed value.  Wired into the perf-smoke
    CI job as a non-gating signal — absolute rates vary by host, but the
    before/after *ratio* on the same host should not collapse.
    """
    import bench_arena
    import bench_dispatch
    import bench_federation
    import bench_kernels
    import bench_overload
    import bench_replay
    fresh = {
        "BENCH_fastpath.json": _collect_fastpath(),
        "BENCH_arena.json": bench_arena.collect(),
        # Sharded dispatch plane: split-path micro, e2e speedup vs the
        # single dispatcher (measured or Amdahl-projected from stage
        # costs on small hosts), kill-a-shard counter conservation.
        "BENCH_dispatch.json": bench_dispatch.collect(),
        "BENCH_federation.json": bench_federation.collect(),
        # Covers every kernel x ring class (including the 64B frame size
        # the original gate missed) plus the runtime e2e legs.
        "BENCH_kernels.json": bench_kernels.collect(),
        # Overload-control policy curves (DES sim-time, gated hard):
        # the ISSUE 8 acceptance ratios live in these speedups.
        "BENCH_overload.json": bench_overload.collect(),
        # Record-mode overhead (replay trace recorder attached): the
        # "speedup" is the on/off rate ratio, so a recorder that starts
        # costing more than the 10% budget trips the same gate.
        "BENCH_replay.json": bench_replay.collect(),
    }
    regressions = []
    for fname, benches in fresh.items():
        baseline_path = REPO_ROOT / fname
        if not baseline_path.exists():
            print(f"[bench_runner] --check: no committed {fname}; skipping")
            continue
        committed = json.loads(
            baseline_path.read_text(encoding="utf-8"))["benches"]
        print(f"[bench_runner] --check vs {fname} "
              f"(tolerance {tolerance:.0%}):")
        for name in sorted(benches):
            got = benches[name].get("speedup")
            want = committed.get(name, {}).get("speedup")
            if got is None or want is None:
                print(f"  {name:28s} (new bench, no baseline)")
                continue
            floor = want * (1.0 - tolerance)
            status = "ok" if got >= floor else "REGRESSION"
            print(f"  {name:28s} committed {want:6.2f}x  fresh {got:6.2f}x "
                  f" floor {floor:6.2f}x  {status}")
            if got < floor:
                regressions.append((fname, name, want, got))
    # The dispatch plane's acceptance floors (ISSUE 10) are absolute,
    # not relative-to-baseline: >=1.8x e2e at 2 shards, >=3x at 4, and
    # the kill-a-shard conservation invariant must hold.
    misses = bench_dispatch.check_thresholds(fresh["BENCH_dispatch.json"])
    if misses:
        print("[bench_runner] --check: dispatch acceptance floors MISSED:")
        for miss in misses:
            print(f"  {miss}")
    if regressions:
        print(f"[bench_runner] --check: {len(regressions)} bench(es) "
              "regressed beyond tolerance:")
        for fname, name, want, got in regressions:
            print(f"  {fname}: {name}: {want:.2f}x -> {got:.2f}x")
    if regressions or misses:
        return 1
    print("[bench_runner] --check: all benches within tolerance")
    return 0


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Run the fast-path benchmark suite.")
    parser.add_argument(
        "--check", action="store_true",
        help="re-run the speedup benches and flag >25%% regressions "
             "against the committed BENCH_*.json files (exit 1 on "
             "regression; does not rewrite the baselines)")
    args = parser.parse_args(argv)
    if args.check:
        return check()
    benches = _collect_fastpath()
    # The observability trajectory lives in its own file (BENCH_obs.json)
    # because it measures overhead of a *feature*, not a fast path — but
    # the runner drives it so CI archives both in one pass.  Likewise the
    # arena data-plane comparison (BENCH_arena.json).
    import bench_obs_overhead
    print("[bench_runner] running obs overhead ...", flush=True)
    bench_obs_overhead.main()
    import bench_arena
    print("[bench_runner] running arena data plane ...", flush=True)
    bench_arena.main()
    # Federation failover/scaling ratios (BENCH_federation.json) are
    # DES sim-time — host-independent, so --check gates them hard.
    import bench_federation
    print("[bench_runner] running federation ...", flush=True)
    bench_federation.main()
    # Burst-kernel matrix (BENCH_kernels.json): scalar/numpy/cffi hop
    # rates per ring class and frame size, plus the forwarding-mode e2e.
    import bench_kernels
    print("[bench_runner] running burst kernels ...", flush=True)
    bench_kernels.main()
    # Overload-control policy curves (BENCH_overload.json): DES
    # sim-time throughput/latency/fairness at 1x-10x offered load.
    import bench_overload
    print("[bench_runner] running overload policies ...", flush=True)
    bench_overload.main()
    # Replay-plane cost (BENCH_replay.json): record-mode overhead on
    # the runtime forwarding path and the offline DES replay rate.
    import bench_replay
    print("[bench_runner] running replay recorder ...", flush=True)
    bench_replay.main()
    # Sharded dispatch plane (BENCH_dispatch.json): split-path micro,
    # e2e speedup vs the single dispatcher, conservation drill.
    import bench_dispatch
    print("[bench_runner] running dispatch plane ...", flush=True)
    bench_dispatch.main()
    report = {
        "schema": "repro.bench_fastpath/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_runner] wrote {OUT_PATH}")
    for name, bench in sorted(benches.items()):
        b = bench["before"]
        a = bench["after"]
        key = ("events_per_sec" if "events_per_sec" in b
               else "items_per_sec")
        print(f"  {name:18s} {b[key]:>14.0f} -> {a[key]:>14.0f} "
              f"{bench['unit']:12s} ({bench['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
