"""Figure 4.22 (Experiment 4): aggregate forward rate vs elapsed time.

Expected shape: a plateau around 700-1000 Mbps for native and LVRM
alike, with small dips at the tails."""

import numpy as np


def test_fig4_22_exp4_timeseries(run_figure):
    result = run_figure("exp4-ts")
    for mech in ("native", "lvrm-frame", "lvrm-flow"):
        series = [row[2] for row in result.by(mechanism=mech)]
        steady = series[1:-1]
        assert np.mean(steady) > 400.0
