"""Overload-control benchmark: throughput/latency/fairness curves at
1x–10x offered load for the four admission policies.

Writes ``BENCH_overload.json`` at the repo root.  Every number is **DES
sim-time** — a pure function of the scenario parameters, host-
independent and therefore stable under the ``--check`` regression gate.

The scenario: one Click VR (the paper's ~180 Kfps-class slow path) on a
single VRI with a deliberately small data ring (64 slots), offered a
fixed class mix — 10% control (BGP port 179), 30% interactive
(port 5000), 60% bulk (port 40000) — scaled from 1x (comfortably under
capacity) to 10x.  Per policy and multiplier the bench records
per-class delivered counts and latency percentiles (via the
``on_forward`` hook), plus Jain fairness across flows.

Gated ratios (each also self-enforces an ``ok`` floor, and
``bench_runner --check`` guards the committed speedups at ±25%):

* ``overload_protect_4x``  — the acceptance criterion: control-class
  p99 at 4x relative to its own 1x baseline.  ``priority-shed`` must
  hold that ratio within 2.0x while ``none`` collapses (>= 3x);
  speedup = none's degradation over priority-shed's.
* ``overload_goodput_10x`` — control-class frames actually delivered
  at 10x: priority-shed over none (class-blind queue-full drops starve
  control in proportion to its 10% share; shedding bulk instead keeps
  control flowing).
* ``overload_latency_10x`` — all-class p99 at 10x: none over
  tail-drop.  Even the class-blind policy beats no policy, because a
  short queue is the whole point of admission control.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import LvrmConfig, VrType  # noqa: E402
from repro.experiments.common import build_lvrm_gateway  # noqa: E402
from repro.metrics.fairness import jain_index  # noqa: E402
from repro.net import Testbed  # noqa: E402
from repro.overload import PriorityClassifier  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.traffic import FrameSink, UdpSender  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_overload.json"

POLICIES = ("none", "tail-drop", "priority-shed", "adaptive-sample")
MULTIPLIERS = (1, 2, 4, 10)
DURATION = 0.5
#: Latencies recorded only after the AIMD loop has found its
#: equilibrium — the bench measures steady-state overload behaviour,
#: not the first-100ms reaction transient (which docs/OVERLOAD.md
#: discusses separately).
WARMUP = 0.1
#: Aggregate offered load at 1x: comfortably under the Click VR's
#: single-VRI capacity so 1x is the uncongested baseline.
BASE_FPS = 60_000.0
#: (name, dst_port, share) per class; flows are mirrored on both sender
#: hosts so each host stays well under its CPU ceiling even at 10x.
CLASS_MIX = (("control", 179, 0.10),
             ("interactive", 5000, 0.30),
             ("bulk", 40000, 0.60))
#: Controller tuning for the drill: small ring, tight band, and updates
#: fast enough to track sub-millisecond queue swings (the ring fills in
#: ~0.15 ms at 10x; docs/OVERLOAD.md walks through these choices).
QUEUE_CAPACITY = 64
OVERLOAD_OPTS = {"band_lo": 0.02, "band_hi": 0.08,
                 "increase": 0.01, "decrease": 0.5, "floor": 0.05,
                 "update_interval": 0.001, "ewma_weight": 1.0}

_CLASSIFIER = PriorityClassifier()


def _pctl(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    return sorted_vals[int(q * (len(sorted_vals) - 1))]


def run_trial(policy: str, mult: float) -> Dict:
    """One (policy, multiplier) cell; returns per-class delivery and
    latency plus flow fairness."""
    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(
        record_latency=False, balancer="jsq", flow_based=True,
        queue_capacity=QUEUE_CAPACITY,
        overload_policy=policy,
        overload_opts=OVERLOAD_OPTS if policy != "none" else None)
    _machine, lvrm = build_lvrm_gateway(sim, testbed,
                                        vr_type=VrType.CLICK,
                                        config=config)

    # Sinks absorb forwarded frames at the receivers; measurement rides
    # the gateway's on_forward hook (class + latency at transmit time).
    for name in ("r1", "r2"):
        FrameSink(sim, testbed.hosts[name], record_latency=False)

    lat: Dict[str, List[float]] = {name: [] for name, _, _ in CLASS_MIX}
    delivered_by_flow: Dict[int, int] = {}

    def _observe(frame, now: float) -> None:
        if now < WARMUP:
            return
        cls = _CLASSIFIER.classify_frame(frame)
        lat[CLASS_MIX[cls][0]].append(now - frame.t_created)
        delivered_by_flow[frame.src_port] = (
            delivered_by_flow.get(frame.src_port, 0) + 1)

    lvrm.on_forward.append(_observe)

    senders: List[UdpSender] = []
    flow = 0
    for host, dst in (("s1", "r1"), ("s2", "r2")):
        for _cls_name, dst_port, share in CLASS_MIX:
            senders.append(UdpSender(
                sim, testbed.hosts[host], testbed.host_ip(dst),
                BASE_FPS * mult * share / 2.0,
                src_port=10_000 + flow, dst_port=dst_port,
                phase=flow * 1.3e-6, t_stop=DURATION))
            flow += 1
    sim.run(until=DURATION)

    classes: Dict[str, Dict] = {}
    sent_by_class = {name: 0 for name, _, _ in CLASS_MIX}
    for i, sender in enumerate(senders):
        sent_by_class[CLASS_MIX[i % len(CLASS_MIX)][0]] += sender.sent
    # ``offered`` spans the whole run; ``delivered``/latency cover the
    # post-warmup window only (same window for every policy, so the
    # cross-policy ratios below compare like with like).
    for name, _, _ in CLASS_MIX:
        vals = sorted(lat[name])
        classes[name] = {
            "offered": sent_by_class[name],
            "delivered": len(vals),
            "p50_us": round(_pctl(vals, 0.50) * 1e6, 2),
            "p99_us": round(_pctl(vals, 0.99) * 1e6, 2),
        }
    all_lat = sorted(v for vals in lat.values() for v in vals)
    out = {
        "policy": policy,
        "mult": mult,
        "offered_fps": BASE_FPS * mult,
        "delivered": len(all_lat),
        "delivered_fps": round(len(all_lat) / (DURATION - WARMUP), 1),
        "p99_us": round(_pctl(all_lat, 0.99) * 1e6, 2),
        "jain_flows": round(jain_index(
            [delivered_by_flow.get(10_000 + i, 0)
             for i in range(len(senders))]), 4),
        "classes": classes,
    }
    if lvrm.overload is not None:
        state = lvrm.overload.state()
        out["rates"] = {name: c["rate"]
                       for name, c in state["classes"].items()}
        out["shed"] = {name: c["shed"]
                       for name, c in state["classes"].items()}
    return out


def collect_curves() -> Dict[str, Dict[str, Dict]]:
    curves: Dict[str, Dict[str, Dict]] = {}
    for policy in POLICIES:
        curves[policy] = {}
        for mult in MULTIPLIERS:
            print(f"[bench_overload] {policy} @ {mult}x ...", flush=True)
            curves[policy][f"{mult}x"] = run_trial(policy, float(mult))
    return curves


def _benches_from_curves(curves: Dict) -> Dict[str, Dict]:
    def p99_ctl(policy: str, mult: int) -> float:
        return curves[policy][f"{mult}x"]["classes"]["control"]["p99_us"]

    def delivered_ctl(policy: str, mult: int) -> int:
        return curves[policy][f"{mult}x"]["classes"]["control"]["delivered"]

    none_ratio = p99_ctl("none", 4) / max(p99_ctl("none", 1), 1e-9)
    shed_ratio = (p99_ctl("priority-shed", 4)
                  / max(p99_ctl("priority-shed", 1), 1e-9))
    goodput = (delivered_ctl("priority-shed", 10)
               / max(delivered_ctl("none", 10), 1))
    latency = (curves["none"]["10x"]["p99_us"]
               / max(curves["tail-drop"]["10x"]["p99_us"], 1e-9))
    return {
        "overload_protect_4x": {
            "unit": "none/shed p99 degradation at 4x",
            "before": {"none_p99_ratio_4x": round(none_ratio, 3),
                       "none_ctl_p99_us_4x": p99_ctl("none", 4)},
            "after": {"shed_p99_ratio_4x": round(shed_ratio, 3),
                      "shed_ctl_p99_us_4x": p99_ctl("priority-shed", 4)},
            "speedup": round(none_ratio / max(shed_ratio, 1e-9), 3),
            # The ISSUE 8 acceptance bar: priority-shed holds control
            # p99 within 2x of its 1x baseline while none collapses.
            "ok": shed_ratio <= 2.0 and none_ratio >= 3.0,
        },
        "overload_goodput_10x": {
            "unit": "control frames delivered, shed/none at 10x",
            "before": {"none_ctl_delivered": delivered_ctl("none", 10)},
            "after": {"shed_ctl_delivered":
                      delivered_ctl("priority-shed", 10)},
            "speedup": round(goodput, 3),
            "ok": goodput >= 1.5,
        },
        "overload_latency_10x": {
            "unit": "all-class p99, none/tail-drop at 10x",
            "before": {"none_p99_us": curves["none"]["10x"]["p99_us"]},
            "after": {"taildrop_p99_us":
                      curves["tail-drop"]["10x"]["p99_us"]},
            "speedup": round(latency, 3),
            "ok": latency >= 2.0,
        },
    }


def collect() -> Dict[str, Dict]:
    """The gated bench entries (``bench_runner --check`` contract)."""
    return _benches_from_curves(collect_curves())


def main() -> int:
    curves = collect_curves()
    benches = _benches_from_curves(curves)
    report = {
        "schema": "repro.bench_overload/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenario": {
            "duration_s": DURATION,
            "warmup_s": WARMUP,
            "base_fps": BASE_FPS,
            "multipliers": list(MULTIPLIERS),
            "queue_capacity": QUEUE_CAPACITY,
            "class_mix": [{"class": n, "dst_port": p, "share": s}
                          for n, p, s in CLASS_MIX],
            "overload_opts": OVERLOAD_OPTS,
        },
        "curves": curves,
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_overload] wrote {OUT_PATH}")
    bad = 0
    for name, bench in sorted(benches.items()):
        flag = "ok" if bench["ok"] else "FAILED"
        print(f"  {name:24s} {bench['speedup']:6.2f}x "
              f"({bench['unit']})  {flag}")
        bad += 0 if bench["ok"] else 1
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
