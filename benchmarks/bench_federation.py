"""Federation benchmark: failover time, recovery, and shard scaling.

Writes ``BENCH_federation.json`` at the repo root.  Unlike the
wall-clock micro-benches, every number here is **DES sim-time** — a
pure function of the scenario configs, host-independent and therefore
stable under the ``--check`` regression gate:

* ``federation_failover``  — speedup = failover budget (2 supervision
  periods) over the measured failover time of the canned
  kill-the-active drill; above 1.0 means the SLO holds, and a falling
  ratio means detection/promotion got slower.
* ``federation_recovery``  — speedup = post-failover throughput over
  pre-kill throughput at N=2 (the ≥0.9 acceptance bar).
* ``federation_scaling_n2`` / ``_n4`` — speedup = aggregate forwarded
  throughput at N shards over N=1, with each monitor core saturated
  (the ≥1.7x-at-N=2 acceptance bar).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import (load_federation_config,  # noqa: E402
                           run_des_failover_scenario, run_des_scaling)

OUT_PATH = REPO_ROOT / "BENCH_federation.json"
CONFIG = REPO_ROOT / "examples" / "configs" / "federation_pair.json"


def bench_failover() -> Dict[str, Dict]:
    print("[bench_federation] running the HA-pair failover drill ...",
          flush=True)
    report = run_des_failover_scenario(
        load_federation_config(str(CONFIG)))
    failover = report["failover"]
    throughput = report["throughput"]
    return {
        "federation_failover": {
            "unit": "budget/failover",
            "before": {"budget_seconds": failover["budget_seconds"]},
            "after": {"failover_seconds": failover["failover_seconds"],
                      "lost_in_blackout": failover["lost_in_blackout"]},
            "speedup": (failover["budget_seconds"]
                        / failover["failover_seconds"]),
            "ok": report["ok"],
        },
        "federation_recovery": {
            "unit": "post/pre throughput",
            "before": {"pre_kill_kfps": throughput["pre_kill_kfps"]},
            "after": {"post_failover_kfps":
                      throughput["post_failover_kfps"]},
            "speedup": throughput["recovered_ratio"],
            "ok": throughput["recovered_ratio"] >= 0.9,
        },
    }


def bench_scaling() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    base = None
    for n in (1, 2, 4):
        print(f"[bench_federation] running the scaling sweep at "
              f"N={n} ...", flush=True)
        report = run_des_scaling(n)
        if n == 1:
            base = report
            continue
        speedup = (report["throughput_kfps"]
                   / base["throughput_kfps"])
        out[f"federation_scaling_n{n}"] = {
            "unit": "aggregate kfps vs N=1",
            "before": {"n1_kfps": base["throughput_kfps"]},
            "after": {f"n{n}_kfps": report["throughput_kfps"],
                      "vr_shares": report["vr_shares"],
                      "rebalance_moves": report["rebalance_moves"]},
            "speedup": speedup,
            "ok": n != 2 or speedup >= 1.7,
        }
    return out


def collect() -> Dict[str, Dict]:
    benches: Dict[str, Dict] = {}
    benches.update(bench_failover())
    benches.update(bench_scaling())
    return benches


def main() -> int:
    benches = collect()
    report = {
        "schema": "repro.bench_federation/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_federation] wrote {OUT_PATH}")
    bad = 0
    for name, bench in sorted(benches.items()):
        flag = "ok" if bench["ok"] else "FAILED"
        print(f"  {name:24s} {bench['speedup']:6.2f}x "
              f"({bench['unit']})  {flag}")
        bad += 0 if bench["ok"] else 1
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
