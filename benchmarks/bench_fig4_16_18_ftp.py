"""Figures 4.16-4.18 (Experiment 3c): FTP/TCP, frame- vs flow-based.

Expected shape: native and LVRM-with-JSQ lead the aggregate throughput;
flow-based variants trail slightly (connection-tracking cost, coarser
granularity); max-min fairness > 0.6 and Jain's index > 0.9 everywhere."""


def test_fig4_16_18_exp3c(run_figure):
    result = run_figure("exp3c")
    for row in result.rows:
        _mech, _agg, max_min, jain = row
        assert max_min > 0.5
        assert jain > 0.85
