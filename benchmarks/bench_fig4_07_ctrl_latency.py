"""Figure 4.7 (Experiment 1e): latency of inter-VRI control messages.

Expected shape: 5-7 us with no data load, 10-12 us under full load —
both insignificant next to the network transmission path."""


def test_fig4_07_exp1e(run_figure):
    result = run_figure("exp1e")
    for row in result.rows:
        _load, _size, latency = row
        assert latency < 25.0
