"""Extension: frame-level latency attribution on both backends.

No thesis figure — these cover the telemetry plane of
docs/OBSERVABILITY.md: per-phase latency quantiles (dispatch, ring_wait,
service, drain) from sampled frame spans, and (runtime) worker series
merged into the monitor's registry over the KIND_STATS control channel.

Expected shape: every phase quantile is finite and the total p99 stays
in the tens-of-microseconds band the DES cost model predicts; the
runtime run must report at least one merged worker registry.
"""


def _phase_rows(result):
    return {row[1]: row for row in result.rows}


def test_figx_fwd_des(run_figure):
    result = run_figure("fwd-des")
    rows = _phase_rows(result)
    for phase in ("dispatch", "ring_wait", "service", "drain", "total"):
        assert phase in rows, f"missing span phase {phase!r}"
        _backend, _phase, p50, p95, p99 = rows[phase]
        assert 0.0 <= p50 <= p95 <= p99, rows[phase]
    # Simulated gateway: total latency is deterministic-ish and small.
    assert rows["total"][4] < 1000.0  # p99 under 1 ms


def test_figx_fwd_rt(run_figure):
    result = run_figure("fwd-rt")
    rows = _phase_rows(result)
    assert "total" in rows
    merged = [n for n in result.notes
              if "KIND_STATS" in n and "vri_id=[" in n
              and "vri_id=[]" not in n]
    assert merged, "runtime run reported no merged worker telemetry"
