"""Ablation: balancing schemes under bursty (ON/OFF) arrivals.

The paper's Experiment 3a drives JSQ/RR/random with smooth CBR traffic
and finds them nearly tied, JSQ "slightly" ahead.  This ablation swaps
in ON/OFF sources with deliberately short per-VRI queues: JSQ steers
each burst at the least-backlogged instance, while random concentrates
variance and shows the first overflows.  Expected shape: JSQ at least
matches round-robin and beats random — the same ordering as the paper,
with the random gap widened by the burstiness."""

import numpy as np

from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec, make_socket_adapter
from repro.experiments.common import ExperimentResult, get_profile
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import FrameSink
from repro.traffic.onoff import OnOffSender


def _trial(scheme: str, profile) -> float:
    s = profile.rate_scale
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False, balancer=scheme,
                                  queue_capacity=24))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=1 / 60e3 / s), FixedAllocation(4))
    lvrm.start()
    rng = np.random.default_rng(11)
    t0 = 0.012
    senders = []
    for i, (host, dst) in enumerate((("s1", "r1"), ("s2", "r2"))):
        senders.append(OnOffSender(
            sim, testbed.hosts[host], testbed.host_ip(dst),
            peak_fps=170_000.0 * s, mean_on=0.004, mean_off=0.004,
            rng=np.random.default_rng(11 + i), t_start=t0))
    sinks = [FrameSink(sim, testbed.hosts[h], record_latency=False)
             for h in ("r1", "r2")]
    window = max(profile.window * 8, 0.12)
    sim.run(until=t0 + window)
    sent = sum(x.sent for x in senders)
    recv = sum(k.received for k in sinks)
    return recv / max(sent, 1)


def _run(profile):
    result = ExperimentResult(
        "ablation-bursty", "Balancing under ON/OFF bursts (4 VRIs, "
        "short queues)", columns=("balancer", "delivery_ratio"))
    for scheme in ("jsq", "rr", "random"):
        result.add(scheme, _trial(scheme, profile))
    return result


def test_ablation_bursty_jsq_advantage(benchmark):
    profile = get_profile()
    result = benchmark.pedantic(lambda: _run(profile), rounds=1,
                                iterations=1)
    print("\n" + result.render())
    ratios = dict(result.rows)
    assert ratios["jsq"] >= ratios["rr"] - 0.01
    assert ratios["jsq"] >= ratios["random"] - 0.01
