"""Burst-kernel data plane: vectorized/compiled kernels vs the scalar
reference.

Two legs, written to ``BENCH_kernels.json`` at the repo root:

* **Routed hop micro-bench** — one monitor->worker->monitor descriptor
  hop per record *with routing included*: pop a descriptor block, parse
  + LPM every frame through the kernel under test, fill the iface
  half-words, push.  Unlike ``bench_arena``'s routing-free hops, this
  isolates exactly what the kernels change.  Names are
  ``arena_hop_{kernel}_{ring}_{size}b`` — every kernel × ring class at
  64/512/1500 B, so the ``bench_runner --check`` 25% regression gate
  covers the small-frame path too (the 64B gap the kernels must not
  silently regress).  "Before" is always the scalar reference kernel.

* **Copy-plane rewrite micro-bench** — ``route_frames_rewrite`` over
  whole-frame bursts (``copy_rewrite_{kernel}_{size}b``): the legacy
  plane's forwarding mode, where the vectorized kernels batch the
  RFC 1624 checksum math (``incremental_update_batch``) and only the
  three patched bytes are written per frame.

* **Runtime end-to-end** — real monitor + worker processes on the arena
  plane in *forwarding mode* (``kernel_rewrite=True``: TTL decrement +
  RFC 1624 checksum update, the full RFC 1812 router data path), scalar
  kernel vs each vectorized kernel (``runtime_e2e_{kernel}``).  Deep
  descriptor rings (8192) keep the worker saturated so the measurement
  is CPU-bound rather than bounded by ring depth × scheduler timeslice
  on small hosts; the driver only dispatches into ring headroom, like a
  NIC honouring descriptor-ring backpressure.

``main()`` additionally gates the acceptance thresholds: numpy >= 2x on
the 512B/1500B hop benches and >= 1.5x end-to-end (exit 1 on a miss).
Numbers are wall-clock and host-dependent: compare ratios, not
absolutes.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ipc import (DESC_SLOT, RING_KINDS, FrameArena,  # noqa: E402
                       arena_bytes_needed, make_ring, ring_bytes_for)
from repro.kernels import available_kernels, make_kernel  # noqa: E402
from repro.net.addresses import ip_to_int  # noqa: E402
from repro.net.packet import build_udp_frame  # noqa: E402
from repro.routing.mapfile import parse_map_lines  # noqa: E402
from repro.runtime.monitor import DEFAULT_MAP_LINES  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_kernels.json"

RING_CAPACITY = 1024
#: Records per hop: the AIMD batcher's loaded steady state.
BURST = 128
FRAME_SIZES = (64, 512, 1500)
#: Ethernet + IPv4 + UDP header bytes build_udp_frame adds.
_HDR_BYTES = 42
#: Distinct destinations the burst cycles through (enough to exercise
#: the LPM, few enough to be steady-state cacheable like real traffic).
N_DSTS = 32

#: End-to-end measurement window per kernel run (best of E2E_REPEATS).
E2E_SECONDS = 1.5
E2E_REPEATS = 2
E2E_PAYLOAD = 470         # 512 B on the wire
E2E_BURST = 256
E2E_RING = 8192           # deep rings: keep the worker CPU-bound

#: Acceptance thresholds (ISSUE 7): numpy kernel vs scalar.
HOP_FLOOR = 2.0           # arena_hop_numpy_*_{512,1500}b
E2E_FLOOR = 1.5           # runtime_e2e_numpy


def _rate(op: Callable[[], int], min_seconds: float = 0.25,
          repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` rate of ``op`` (which returns items handled)."""
    op()  # warm-up
    best = 0.0
    for _ in range(repeats):
        items = 0
        t0 = time.perf_counter()
        while True:
            items += op()
            elapsed = time.perf_counter() - t0
            if elapsed >= min_seconds:
                break
        best = max(best, items / elapsed)
    return {"items_per_sec": best, "ns_per_item": 1e9 / best}


def _routed_frames(size: int) -> List[bytes]:
    """A burst of valid, routable UDP frames of ``size`` wire bytes,
    cycling destinations across the default map's subnets."""
    payload = b"k" * (size - _HDR_BYTES)
    bases = (ip_to_int("10.1.1.0"), ip_to_int("10.2.1.0"))
    return [build_udp_frame(0x020000000001, 0x020000000002,
                            ip_to_int("10.9.0.1"),
                            bases[i % 2] + 1 + (i % N_DSTS),
                            10000 + i, 20000, payload)
            for i in range(BURST)]


# -- routed hop micro-bench ---------------------------------------------------

def bench_kernel_hop() -> Dict[str, Dict]:
    routes, _arp = parse_map_lines(DEFAULT_MAP_LINES)
    kernels = available_kernels()
    out: Dict[str, Dict] = {}
    arena_buf = bytearray(arena_bytes_needed(chunks_per_class=RING_CAPACITY))
    mask32 = np.uint64(0xFFFFFFFF)
    for ring_kind in RING_KINDS:
        for size in FRAME_SIZES:
            frames = _routed_frames(size)
            arena = FrameArena(arena_buf, chunks_per_class=RING_CAPACITY)
            block = arena.producer().write_block(frames)
            din = bytearray(ring_bytes_for(ring_kind, RING_CAPACITY,
                                           DESC_SLOT))
            dout = bytearray(ring_bytes_for(ring_kind, RING_CAPACITY,
                                            DESC_SLOT))
            desc_in = make_ring(ring_kind, din, RING_CAPACITY, DESC_SLOT)
            desc_out = make_ring(ring_kind, dout, RING_CAPACITY, DESC_SLOT)
            flush_in = getattr(desc_in, "flush", None)
            flush_out = getattr(desc_out, "flush", None)
            buf = arena.buffer

            def routed_hop(kernel) -> int:
                # monitor -> worker: 24 B descriptors through the ring...
                desc_in.try_push_desc_block(block)
                if flush_in is not None:
                    flush_in()
                popped = desc_in.try_pop_desc_block()
                # ... worker parses + LPM-routes the whole burst ...
                offsets = np.ascontiguousarray(popped[:, 0])
                lengths = np.ascontiguousarray(popped[:, 1] & mask32)
                ifaces = kernel.route_block(buf, offsets, lengths)
                kernel.fill_ifaces(popped, ifaces)
                # ... and echoes the descriptors back.
                desc_out.try_push_desc_block(popped)
                if flush_out is not None:
                    flush_out()
                return len(desc_out.try_pop_desc_block())

            rates = {}
            for kind in kernels:
                kernel = make_kernel(kind, routes)
                rates[kind] = _rate(lambda k=kernel: routed_hop(k))
            desc_in.close()
            desc_out.close()
            arena.close()
            before = rates["scalar"]
            for kind in kernels:
                if kind == "scalar":
                    continue
                after = rates[kind]
                out[f"arena_hop_{kind}_{ring_kind}_{size}b"] = {
                    "unit": "records/sec",
                    "burst": BURST,
                    "frame_bytes": size,
                    "kernel": kind,
                    "ring": ring_kind,
                    "before": before,
                    "after": after,
                    "speedup": (after["items_per_sec"]
                                / before["items_per_sec"]),
                }
    return out


# -- copy-plane forwarding micro-bench ----------------------------------------

def bench_copy_rewrite() -> Dict[str, Dict]:
    """``route_frames_rewrite`` over whole-frame bursts: the legacy
    copy plane's forwarding mode (parse + LPM + TTL/checksum rewrite
    into private copies), vectorized kernels vs the scalar reference.
    Names are ``copy_rewrite_{kernel}_{size}b``."""
    routes, _arp = parse_map_lines(DEFAULT_MAP_LINES)
    kernels = available_kernels()
    out: Dict[str, Dict] = {}
    for size in FRAME_SIZES:
        frames = _routed_frames(size)

        def rewrite_burst(kernel) -> int:
            ifaces, _outs = kernel.route_frames_rewrite(frames)
            return len(ifaces)

        rates = {}
        for kind in kernels:
            kernel = make_kernel(kind, routes, rewrite_ttl=True)
            rates[kind] = _rate(lambda k=kernel: rewrite_burst(k))
        before = rates["scalar"]
        for kind in kernels:
            if kind == "scalar":
                continue
            after = rates[kind]
            out[f"copy_rewrite_{kind}_{size}b"] = {
                "unit": "frames/sec",
                "burst": BURST,
                "frame_bytes": size,
                "kernel": kind,
                "before": before,
                "after": after,
                "speedup": (after["items_per_sec"]
                            / before["items_per_sec"]),
            }
    return out


# -- runtime end-to-end -------------------------------------------------------

def _runtime_rate_once(kernel: str) -> Dict[str, float]:
    """Frames/sec through a real monitor -> worker -> monitor loop on
    the arena plane with the given burst kernel, forwarding mode."""
    from repro.runtime import RuntimeLvrm

    frame = build_udp_frame(0x020000000001, 0x020000000002,
                            ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
                            10000, 20000, b"e" * E2E_PAYLOAD)
    burst = [frame] * E2E_BURST
    done = 0
    with RuntimeLvrm(n_vris=1, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", ring_capacity=E2E_RING,
                     kernel=kernel, kernel_rewrite=True) as lvrm:
        data_in = lvrm.vris[0].data_in
        lvrm.dispatch_many(burst)
        lvrm.drain_until(E2E_BURST, timeout=5.0)
        t0 = time.perf_counter()
        deadline = t0 + E2E_SECONDS
        while time.perf_counter() < deadline:
            # Only dispatch into ring headroom (a NIC honouring
            # descriptor backpressure): staging a burst the ring cannot
            # take would be thrown-away work on both sides.
            if E2E_RING - len(data_in) >= E2E_BURST:
                lvrm.dispatch_many(burst)
            done += len(lvrm.drain())
        wall = time.perf_counter() - t0
    return {"frames_per_sec": done / wall, "frames": done,
            "wall_seconds": wall}


def _runtime_rate(kernel: str) -> Dict[str, float]:
    best: Dict[str, float] = {"frames_per_sec": 0.0}
    for _ in range(E2E_REPEATS):
        got = _runtime_rate_once(kernel)
        if got["frames_per_sec"] > best["frames_per_sec"]:
            best = got
    return best


def bench_runtime_e2e() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    before = _runtime_rate("scalar")
    for kind in available_kernels():
        if kind == "scalar":
            continue
        after = _runtime_rate(kind)
        out[f"runtime_e2e_{kind}"] = {
            "unit": "frames/sec",
            "scenario": f"1 worker, arena plane, 512B frames, forwarding "
                        f"mode (TTL+checksum rewrite), kernel={kind} vs "
                        f"scalar, {E2E_RING}-deep rings, "
                        f"dispatch_many({E2E_BURST})/drain loop",
            "frame_bytes": E2E_PAYLOAD + _HDR_BYTES,
            "before": before,
            "after": after,
            "speedup": after["frames_per_sec"] / before["frames_per_sec"],
        }
    return out


def collect() -> Dict[str, Dict]:
    benches: Dict[str, Dict] = {}
    print(f"[bench_kernels] kernels available: {available_kernels()}",
          flush=True)
    print("[bench_kernels] running routed hop micro-bench ...", flush=True)
    benches.update(bench_kernel_hop())
    print("[bench_kernels] running copy-plane rewrite micro-bench ...",
          flush=True)
    benches.update(bench_copy_rewrite())
    print("[bench_kernels] running runtime end-to-end ...", flush=True)
    benches.update(bench_runtime_e2e())
    return benches


def check_thresholds(benches: Dict[str, Dict]) -> List[str]:
    """The acceptance floors; returns human-readable misses."""
    misses = []
    for name, bench in benches.items():
        if (name.startswith("arena_hop_numpy_")
                and bench["frame_bytes"] >= 512
                and bench["speedup"] < HOP_FLOOR):
            misses.append(f"{name}: {bench['speedup']:.2f}x < {HOP_FLOOR}x")
    e2e = benches.get("runtime_e2e_numpy")
    if e2e is not None and e2e["speedup"] < E2E_FLOOR:
        misses.append(f"runtime_e2e_numpy: {e2e['speedup']:.2f}x "
                      f"< {E2E_FLOOR}x")
    return misses


def main() -> int:
    benches = collect()
    report = {
        "schema": "repro.bench_kernels/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "kernels": available_kernels(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_kernels] wrote {OUT_PATH}")
    for name, bench in sorted(benches.items()):
        b, a = bench["before"], bench["after"]
        key = ("frames_per_sec" if "frames_per_sec" in b
               else "items_per_sec")
        print(f"  {name:34s} {b[key]:>13.0f} -> {a[key]:>13.0f} "
              f"{bench['unit']:12s} ({bench['speedup']:.2f}x)")
    misses = check_thresholds(benches)
    if misses:
        print("[bench_kernels] acceptance thresholds MISSED:")
        for miss in misses:
            print(f"  {miss}")
        return 1
    print(f"[bench_kernels] thresholds ok (numpy >= {HOP_FLOOR}x hop at "
          f">=512B, >= {E2E_FLOOR}x e2e)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
