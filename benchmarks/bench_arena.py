"""Zero-copy arena data plane vs the batched copy path.

Two legs, written to ``BENCH_arena.json`` at the repo root:

* **Ring micro-bench** — one simulated monitor->worker->monitor hop per
  record, for every ring kind at 64/512/1500 B frames.  The "before"
  side is the PR-2 batched copy path (frame bytes staged through ring
  slots, popped as owned ``bytes``, re-packed for the return hop); the
  "after" side stages each payload once into a frame arena and moves
  24-byte descriptors through both rings, with one copy-out at drain.
  The copy path pays four full-frame copies per round trip, the arena
  path two — so the descriptor win grows with frame size.

* **Runtime end-to-end** — real monitor + worker processes pumping
  routable UDP frames through dispatch_many/drain, copy vs arena plane,
  once per wait strategy (spin / yield / sleep).  Historically 2-3x in
  the arena's favor; since the burst kernels (``repro.kernels``)
  replaced the copy plane's per-frame codec parse, both planes converge
  on the ring/scheduler bound at default-depth rings and this leg sits
  near 1.0-1.1x — see BENCH_kernels.json for the kernel-vs-kernel e2e.

Numbers are wall-clock and host-dependent: compare ratios, not
absolutes.  Run directly or via ``bench_runner.py`` / the perf-smoke CI
job.
"""

from __future__ import annotations

import json
import pathlib
import platform
import struct
import sys
import time
from typing import Callable, Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ipc import (RING_KINDS, DESC_SLOT, FrameArena,  # noqa: E402
                       arena_bytes_needed, make_ring, ring_bytes_for)
from repro.ipc.wait import WAIT_STRATEGIES  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_arena.json"

RING_CAPACITY = 1024
COPY_SLOT = 2048          # fits a 1500 B frame + the 2 B iface header
#: Records per simulated hop: the loaded steady state of the AIMD
#: batcher (which ramps 8..256 under sustained backlog), where the
#: per-batch fixed costs of both paths are amortized as in production.
BURST = 128
FRAME_SIZES = (64, 512, 1500)
_OUT_HEADER = struct.Struct("<H")

#: End-to-end measurement window per (plane, wait strategy) run.
E2E_SECONDS = 1.0
E2E_PAYLOAD = 470         # 512 B on the wire after the 42 B of headers


def _rate(op: Callable[[], int], min_seconds: float = 0.25,
          repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` rate of ``op`` (which returns items handled)."""
    op()  # warm-up
    best = 0.0
    for _ in range(repeats):
        items = 0
        t0 = time.perf_counter()
        while True:
            items += op()
            elapsed = time.perf_counter() - t0
            if elapsed >= min_seconds:
                break
        best = max(best, items / elapsed)
    return {"items_per_sec": best, "ns_per_item": 1e9 / best}


# -- ring micro-bench --------------------------------------------------------

def bench_ring_hop() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    arena_buf = bytearray(arena_bytes_needed(chunks_per_class=RING_CAPACITY))
    for kind in RING_KINDS:
        for size in FRAME_SIZES:
            frame = b"z" * size
            batch = [frame] * BURST

            # Copy plane: the rings carry the frames themselves.
            in_buf = bytearray(ring_bytes_for(kind, RING_CAPACITY, COPY_SLOT))
            out_buf = bytearray(ring_bytes_for(kind, RING_CAPACITY, COPY_SLOT))
            ring_in = make_ring(kind, in_buf, RING_CAPACITY, COPY_SLOT)
            ring_out = make_ring(kind, out_buf, RING_CAPACITY, COPY_SLOT)
            flush_in = getattr(ring_in, "flush", None)
            flush_out = getattr(ring_out, "flush", None)
            pack = _OUT_HEADER.pack

            def copy_hop() -> int:
                # monitor -> worker: full frames through the ring ...
                ring_in.try_push_many(batch)
                if flush_in is not None:
                    flush_in()
                popped = ring_in.try_pop_many()
                # ... worker re-packs with the chosen iface ...
                records = [pack(1) + f for f in popped]
                ring_out.try_push_many(records)
                if flush_out is not None:
                    flush_out()
                # ... monitor -> caller: owned bytes again.
                return len(ring_out.try_pop_many())

            before = _rate(copy_hop)
            ring_in.close()
            ring_out.close()

            # Arena plane: descriptor rings + one staging copy.
            arena = FrameArena(arena_buf, chunks_per_class=RING_CAPACITY)
            prod = arena.producer()
            din_buf = bytearray(ring_bytes_for(kind, RING_CAPACITY, DESC_SLOT))
            dout_buf = bytearray(ring_bytes_for(kind, RING_CAPACITY,
                                                DESC_SLOT))
            desc_in = make_ring(kind, din_buf, RING_CAPACITY, DESC_SLOT)
            desc_out = make_ring(kind, dout_buf, RING_CAPACITY, DESC_SLOT)
            dflush_in = getattr(desc_in, "flush", None)
            dflush_out = getattr(desc_out, "flush", None)
            read_block = arena.read_block
            free_many = prod.free_local_many
            write_block = prod.write_block
            iface_bits = np.uint64(1 << 32)

            def desc_hop() -> int:
                # monitor -> worker: stage once, ship 24 B descriptors.
                desc_in.try_push_desc_block(write_block(batch))
                if dflush_in is not None:
                    dflush_in()
                popped = desc_in.try_pop_desc_block()
                # ... worker echoes the same chunks, iface in the word ...
                popped[:, 1] |= iface_bits
                desc_out.try_push_desc_block(popped)
                if dflush_out is not None:
                    dflush_out()
                # ... monitor copies out once and frees the chunks.
                out_blk = desc_out.try_pop_desc_block()
                n = len(read_block(out_blk))
                free_many(out_blk[:, 0])
                return n

            after = _rate(desc_hop)
            desc_in.close()
            desc_out.close()
            arena.close()

            out[f"arena_hop_{kind}_{size}b"] = {
                "unit": "records/sec",
                "burst": BURST,
                "frame_bytes": size,
                "before": before,
                "after": after,
                "speedup": after["items_per_sec"] / before["items_per_sec"],
            }
    return out


# -- runtime end-to-end ------------------------------------------------------

def _runtime_rate(data_plane: str, wait_strategy: str) -> Dict[str, float]:
    """Frames/sec through a real monitor -> worker -> monitor loop."""
    from repro.net.addresses import ip_to_int
    from repro.net.packet import build_udp_frame
    from repro.runtime import RuntimeLvrm

    frame = build_udp_frame(0x020000000001, 0x020000000002,
                            ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
                            10000, 20000, b"e" * E2E_PAYLOAD)
    burst = [frame] * 32
    done = 0
    with RuntimeLvrm(n_vris=1, worker_lifetime=60.0,
                     data_plane=data_plane,
                     wait_strategy=wait_strategy) as lvrm:
        # Warm-up: fault in both code paths before the timed window.
        lvrm.dispatch_many(burst)
        lvrm.drain_until(32, timeout=5.0)
        t0 = time.perf_counter()
        deadline = t0 + E2E_SECONDS
        while time.perf_counter() < deadline:
            lvrm.dispatch_many(burst)
            done += len(lvrm.drain())
        wall = time.perf_counter() - t0
        # Only frames drained inside the window count: waiting on
        # stragglers would fold ring depth (and any overflow-dropped
        # frames, which never arrive) into the wall clock.
    return {"frames_per_sec": done / wall, "frames": done,
            "wall_seconds": wall}


def bench_runtime_e2e() -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for strategy in WAIT_STRATEGIES:
        before = _runtime_rate("copy", strategy)
        after = _runtime_rate("arena", strategy)
        out[f"runtime_e2e_{strategy}"] = {
            "unit": "frames/sec",
            "scenario": f"1 worker, 512B frames, wait={strategy}, "
                        "dispatch_many(32)/drain loop",
            "frame_bytes": E2E_PAYLOAD + 42,
            "before": before,
            "after": after,
            "speedup": (after["frames_per_sec"]
                        / before["frames_per_sec"]),
        }
    return out


def collect() -> Dict[str, Dict]:
    benches: Dict[str, Dict] = {}
    print("[bench_arena] running ring hop micro-bench ...", flush=True)
    benches.update(bench_ring_hop())
    print("[bench_arena] running runtime end-to-end ...", flush=True)
    benches.update(bench_runtime_e2e())
    return benches


def main() -> int:
    benches = collect()
    report = {
        "schema": "repro.bench_arena/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_arena] wrote {OUT_PATH}")
    for name, bench in sorted(benches.items()):
        b, a = bench["before"], bench["after"]
        key = ("frames_per_sec" if "frames_per_sec" in b
               else "items_per_sec")
        print(f"  {name:28s} {b[key]:>14.0f} -> {a[key]:>14.0f} "
              f"{bench['unit']:12s} ({bench['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
