"""Ablation: EWMA weight of the load estimator.

The thesis fixes one weight; this sweep shows the stability/
responsiveness trade-off the design section argues about: tiny weights
make JSQ jittery (estimates whipsaw), huge weights make it stale.
Expected shape: a broad plateau of good weights, mild degradation at
the extremes."""

import numpy as np

from repro.core.estimation import EwmaQueueLength
from repro.experiments.common import ExperimentResult, get_profile


def _tracking_error(weight: float, rng: np.random.Generator) -> float:
    """Feed a square-wave queue depth; measure mean |estimate - truth|."""
    est = EwmaQueueLength(weight=weight)
    err = 0.0
    n = 0
    depth = 0
    for step in range(4000):
        if step % 500 == 0:
            depth = int(rng.integers(0, 64))
        noisy = max(0, depth + int(rng.integers(-3, 4)))
        est.observe(0.0, noisy)
        err += abs(est.get() - depth)
        n += 1
    return err / n


def _run():
    rng = np.random.default_rng(7)
    result = ExperimentResult(
        "ablation-ewma", "Load-estimator EWMA weight sweep",
        columns=("weight", "tracking_error"))
    for weight in (0.0, 1.0, 4.0, 8.0, 32.0, 128.0, 512.0):
        result.add(weight, _tracking_error(weight, rng))
    return result


def test_ablation_ewma_weight(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + result.render())
    errors = dict(result.rows)
    # The mid-range beats the stale extreme.
    assert errors[8.0] < errors[512.0]
