"""Figure 4.10 (Experiment 2c): dynamic core allocation for one VR.

Expected shape: the allocated-core staircase tracks the
60 -> 360 -> 60 Kfps offered-rate staircase with about one allocation
period of lag."""


def test_fig4_10_exp2c(run_figure):
    result = run_figure("exp2c")
    cores = result.column("cores")
    assert max(cores) >= 6
    assert cores[0] <= 3
