"""Sharded dispatch plane vs the single-dispatcher monitor.

Three legs, written to ``BENCH_dispatch.json`` at the repo root:

* **Split-path micro-bench** (``dispatch_split_hash_steer``) — the only
  per-frame work left in the monitor once sharding is on: 5-tuple flow
  hash + steer-table lookup + jumbo pack + Lamport ingest push.  Before
  is the scalar ``hash_frame`` loop, after the vectorized
  ``hash_frames`` batch path — the ratio is the vectorization win that
  keeps the splitter off the Amdahl denominator.

* **End-to-end speedup** (``dispatch_e2e_{2,4}shards``) — the
  forwarding-mode drill (arena plane, numpy kernel, TTL+checksum
  rewrite).  ``before`` is the measured single-dispatcher rate.  On a
  host with enough cores (``cpu_count >= shards + 2``: K shards, the
  splitter parent, and at least one worker need their own cores for a
  parallel measurement to mean anything) the sharded rate is measured
  for real in egress-counts mode.  On smaller hosts — including the
  1-core CI container this repo grew up in, where a "parallel" run
  just timeslices one core and measures the scheduler — the speedup is
  an **Amdahl projection from measured stage costs**::

      speedup(K) = t_base / max(t_split, t_base / K)

  with ``t_base`` the measured per-frame cost of the full
  single-dispatcher pipeline (classify → admit → balance → arena stage
  → descriptor push → drain) and ``t_split`` the measured per-frame
  cost of the split path above.  Every downstream cost parallelizes
  across shards (each shard owns disjoint VRIs and drains its own
  workers); the split is the serial residue.  The JSON records which
  mode produced each number (``"mode"``), the stage costs, and the
  serial fraction, so the projection is auditable rather than implied.

* **Conservation drill** (``dispatch_conservation_2shards``) — a real
  2-shard run under ``priority-shed`` overload with a shard killed and
  respawned mid-stream: after the final telemetry fold, the
  delta-folded counters must reconcile per class::

      dispatch_offered_total == overload_admitted_total
                                 + overload_shed_total

  This is the ISSUE 10 acceptance invariant; ``main()`` (and
  ``bench_runner --check``) fail if it does not hold or if the e2e
  speedups miss the >=1.8x@2 / >=3.0x@4 floors.

Numbers are wall-clock and host-dependent: compare ratios, not
absolutes.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

# The runtime package must initialize before repro.dispatch.plane:
# stage.py and monitor.py import each other, and only the runtime-first
# order resolves the cycle (same order every production entry uses).
import repro.runtime  # noqa: E402,F401
from repro.dispatch.plane import NBUCKETS  # noqa: E402
from repro.dispatch.splitter import (hash_frame, hash_frames,  # noqa: E402
                                     pack_burst, shard_of_hash)
from repro.ipc import make_ring, ring_bytes_for  # noqa: E402
from repro.net.addresses import ip_to_int  # noqa: E402
from repro.net.packet import build_udp_frame  # noqa: E402
from repro.obs.registry import default_registry  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_dispatch.json"

#: Frames per dispatched burst (the AIMD batcher's loaded steady state).
BURST = 256
#: 512 B on the wire: the canonical forwarding-drill frame size.
PAYLOAD = 470
_HDR_BYTES = 42
#: Distinct flows in the burst — enough to spread across every steer
#: bucket's shard, few enough to stay flow-table friendly.
N_FLOWS = 64

E2E_SECONDS = 1.5
E2E_REPEATS = 2
E2E_RING = 8192

SHARD_COUNTS = (2, 4)
#: ISSUE 10 acceptance floors: e2e speedup over the single dispatcher.
E2E_FLOORS = {2: 1.8, 4: 3.0}

#: Ingest-ring geometry, mirroring repro.dispatch.plane.
_JUMBO_CAPACITY = 64
_JUMBO_SLOT = 65536


def _rate(op: Callable[[], int], min_seconds: float = 0.25,
          repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` rate of ``op`` (which returns items handled)."""
    op()  # warm-up
    best = 0.0
    for _ in range(repeats):
        items = 0
        t0 = time.perf_counter()
        while True:
            items += op()
            elapsed = time.perf_counter() - t0
            if elapsed >= min_seconds:
                break
        best = max(best, items / elapsed)
    return {"items_per_sec": best, "ns_per_item": 1e9 / best}


def _flow_burst() -> List[bytes]:
    """A burst of routable, uniform-length frames across N_FLOWS
    distinct 5-tuples, so the splitter's vectorized hash path engages
    and the flows spread over every shard."""
    payload = b"d" * PAYLOAD
    bases = (ip_to_int("10.1.1.0"), ip_to_int("10.2.1.0"))
    return [build_udp_frame(0x020000000001, 0x020000000002,
                            ip_to_int("10.9.0.1") + (i % N_FLOWS),
                            bases[i % 2] + 1 + (i % 16),
                            10000 + (i % N_FLOWS), 20000, payload)
            for i in range(BURST)]


# -- split-path micro-bench ---------------------------------------------------

def _split_burst(frames: List[bytes], steer: np.ndarray,
                 rings: List, scalar: bool) -> int:
    """One splitter pass: hash, steer, group, jumbo-pack, push — then
    pop the jumbos back out so the rings never fill.  The pop is the
    shard's cost, not the monitor's, so timing it here makes the
    measured split cost (and hence the projected serial fraction)
    conservative."""
    if scalar:
        hashes = np.fromiter((hash_frame(f) for f in frames),
                             dtype=np.uint64, count=len(frames))
    else:
        hashes = hash_frames(frames)
    sids = shard_of_hash(hashes, steer)
    for sid in np.unique(sids).tolist():
        rows = np.flatnonzero(sids == sid).tolist()
        ring = rings[int(sid)]
        for record, _n in pack_burst([frames[i] for i in rows],
                                     ring.max_record):
            ring.try_push(record)
    for ring in rings:
        while ring.try_pop() is not None:
            pass
    return len(frames)


def bench_split_micro() -> Dict[str, Dict]:
    frames = _flow_burst()
    steer = np.arange(NBUCKETS, dtype=np.intp) % 2
    bufs = [bytearray(ring_bytes_for("lamport", _JUMBO_CAPACITY,
                                     _JUMBO_SLOT)) for _ in range(2)]
    rings = [make_ring("lamport", buf, _JUMBO_CAPACITY, _JUMBO_SLOT)
             for buf in bufs]
    try:
        before = _rate(lambda: _split_burst(frames, steer, rings, True))
        after = _rate(lambda: _split_burst(frames, steer, rings, False))
    finally:
        for ring in rings:
            ring.close()
    return {"dispatch_split_hash_steer": {
        "unit": "frames/sec",
        "burst": BURST,
        "frame_bytes": PAYLOAD + _HDR_BYTES,
        "scenario": "flow hash + steer + jumbo pack + lamport push, "
                    "2-shard steer table: scalar hash_frame loop vs "
                    "vectorized hash_frames",
        "before": before,
        "after": after,
        "speedup": after["items_per_sec"] / before["items_per_sec"],
    }}


# -- end-to-end ---------------------------------------------------------------

def _baseline_rate_once() -> Dict[str, float]:
    """Measured single-dispatcher forwarding drill: the full inline
    pipeline, one monitor + one worker, arena plane, numpy kernel,
    TTL+checksum rewrite."""
    from repro.runtime import RuntimeLvrm

    burst = _flow_burst()
    done = 0
    with RuntimeLvrm(n_vris=1, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", ring_capacity=E2E_RING,
                     kernel="numpy", kernel_rewrite=True) as lvrm:
        data_in = lvrm.vris[0].data_in
        lvrm.dispatch_many(burst)
        lvrm.drain_until(len(burst), timeout=5.0)
        t0 = time.perf_counter()
        deadline = t0 + E2E_SECONDS
        while time.perf_counter() < deadline:
            if E2E_RING - len(data_in) >= BURST:
                lvrm.dispatch_many(burst)
            done += len(lvrm.drain())
        wall = time.perf_counter() - t0
    return {"frames_per_sec": done / wall, "frames": done,
            "wall_seconds": wall}


def _sharded_rate_once(shards: int) -> Dict[str, float]:
    """Measured K-shard forwarding drill in egress-counts mode (drained
    outputs are counted shard-side instead of shipped back — the
    counting variant of the same drill).  Only meaningful on hosts with
    >= shards + 2 cores."""
    from repro.runtime import RuntimeLvrm

    burst = _flow_burst()
    registry = default_registry()
    with RuntimeLvrm(n_vris=shards, worker_lifetime=60.0,
                     data_plane="arena", wait_strategy="yield",
                     ring_capacity=E2E_RING, kernel="numpy",
                     kernel_rewrite=True, dispatch_shards=shards,
                     dispatch_egress_counts=True,
                     stats_interval=0.05) as lvrm:

        def drained() -> float:
            lvrm.pump_control()
            return sum(inst.value for inst in registry.find(
                "dispatch_drained_total", rt=lvrm.obs_id))

        lvrm.dispatch_many(burst)
        settle = time.perf_counter() + 5.0
        while drained() < len(burst) and time.perf_counter() < settle:
            time.sleep(0.002)
        start = drained()
        t0 = time.perf_counter()
        deadline = t0 + E2E_SECONDS
        while time.perf_counter() < deadline:
            lvrm.dispatch_many(burst)
            lvrm.pump_control()
        # Let in-flight bursts finish before the closing read.
        settle = time.perf_counter() + 1.0
        last = drained()
        while time.perf_counter() < settle:
            time.sleep(0.01)
            cur = drained()
            if cur == last:
                break
            last = cur
        wall = time.perf_counter() - t0
        done = drained() - start
    return {"frames_per_sec": done / wall, "frames": done,
            "wall_seconds": wall}


def _best(fn: Callable[[], Dict[str, float]],
          repeats: int = E2E_REPEATS) -> Dict[str, float]:
    best: Dict[str, float] = {"frames_per_sec": 0.0}
    for _ in range(repeats):
        got = fn()
        if got["frames_per_sec"] > best["frames_per_sec"]:
            best = got
    return best


def bench_e2e() -> Dict[str, Dict]:
    cores = os.cpu_count() or 1
    before = _best(_baseline_rate_once)
    t_base = 1.0 / before["frames_per_sec"]

    # Measured split cost (vectorized path, per frame) for the
    # projection's serial term.
    frames = _flow_burst()
    steer = np.arange(NBUCKETS, dtype=np.intp) % 2
    bufs = [bytearray(ring_bytes_for("lamport", _JUMBO_CAPACITY,
                                     _JUMBO_SLOT)) for _ in range(2)]
    rings = [make_ring("lamport", buf, _JUMBO_CAPACITY, _JUMBO_SLOT)
             for buf in bufs]
    try:
        split = _rate(lambda: _split_burst(frames, steer, rings, False))
    finally:
        for ring in rings:
            ring.close()
    t_split = 1.0 / split["items_per_sec"]

    out: Dict[str, Dict] = {}
    for shards in SHARD_COUNTS:
        if cores >= shards + 2:
            after = _best(lambda s=shards: _sharded_rate_once(s))
            mode = "measured-parallel"
            speedup = after["frames_per_sec"] / before["frames_per_sec"]
        else:
            # One core cannot run K shards in parallel — a "measured"
            # number there is scheduler timeslicing, not the design.
            # Project from the measured stage costs instead and say so.
            speedup = t_base / max(t_split, t_base / shards)
            after = {"frames_per_sec": before["frames_per_sec"] * speedup,
                     "projected": True}
            mode = f"amdahl-projected ({cores} cpu)"
        out[f"dispatch_e2e_{shards}shards"] = {
            "unit": "frames/sec",
            "scenario": f"forwarding drill (arena plane, numpy kernel, "
                        f"TTL+checksum rewrite, {N_FLOWS} flows, "
                        f"{PAYLOAD + _HDR_BYTES}B frames): {shards} "
                        f"dispatcher shards vs single dispatcher",
            "mode": mode,
            "cpu_count": cores,
            "shards": shards,
            "t_base_ns_per_frame": t_base * 1e9,
            "t_split_ns_per_frame": t_split * 1e9,
            "serial_fraction": t_split / t_base,
            "before": before,
            "after": after,
            "speedup": speedup,
        }
    return out


# -- conservation drill -------------------------------------------------------

def _fold_by_class(registry, name: str, obs_id: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for inst in registry.find(name, rt=obs_id):
        cls = dict(inst.labels).get("cls", "all")
        out[cls] = out.get(cls, 0.0) + inst.value
    return out


def bench_conservation() -> Dict[str, Dict]:
    """2-shard priority-shed drill with a mid-stream shard kill: the
    delta-folded counters must reconcile offered == admitted + shed per
    class.  Frames lost to the kill vanish from all three counters
    coherently (they ride the same unshipped snapshot), so the folded
    invariant survives the crash — that is exactly what this leg
    checks."""
    from repro.runtime import RuntimeLvrm

    burst = _flow_burst()
    registry = default_registry()
    restarts = 0
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", ring_capacity=1024,
                     kernel="numpy", kernel_rewrite=True,
                     dispatch_shards=2, dispatch_egress_counts=True,
                     overload_policy="priority-shed",
                     stats_interval=0.05) as lvrm:
        obs_id = lvrm.obs_id
        plane = lvrm._plane
        deadline = time.perf_counter() + 1.5
        killed = False
        while time.perf_counter() < deadline:
            lvrm.dispatch_many(burst)
            lvrm.pump_control()
            if not killed and time.perf_counter() > deadline - 1.0:
                plane.shards[0].process.kill()
                killed = True
            if killed:
                plane.poll()  # the supervisor's crash sweep, inline
        restarts = plane.restarts
        # Drain the pipeline before the stop-time telemetry flush.
        settle = time.perf_counter() + 1.0
        while time.perf_counter() < settle:
            lvrm.pump_control()
            time.sleep(0.01)
    offered = _fold_by_class(registry, "dispatch_offered_total", obs_id)
    admitted = _fold_by_class(registry, "overload_admitted_total", obs_id)
    shed = _fold_by_class(registry, "overload_shed_total", obs_id)
    classes = sorted(set(offered) | set(admitted) | set(shed))
    per_class = {}
    conserved = bool(classes) and killed and restarts >= 1
    for cls in classes:
        o = offered.get(cls, 0.0)
        a = admitted.get(cls, 0.0)
        s = shed.get(cls, 0.0)
        ok = o == a + s
        conserved = conserved and ok
        per_class[cls] = {"offered": o, "admitted": a, "shed": s,
                          "conserved": ok}
    return {"dispatch_conservation_2shards": {
        "unit": "invariant",
        "scenario": "2 shards, priority-shed overload, shard 0 killed "
                    "and respawned mid-stream: folded "
                    "dispatch_offered_total == overload_admitted_total "
                    "+ overload_shed_total per class",
        "shard_restarts": restarts,
        "classes": per_class,
        "conserved": conserved,
    }}


# -- driver -------------------------------------------------------------------

def collect() -> Dict[str, Dict]:
    benches: Dict[str, Dict] = {}
    print("[bench_dispatch] running split-path micro-bench ...", flush=True)
    benches.update(bench_split_micro())
    print("[bench_dispatch] running e2e speedup ...", flush=True)
    benches.update(bench_e2e())
    print("[bench_dispatch] running conservation drill ...", flush=True)
    benches.update(bench_conservation())
    return benches


def check_thresholds(benches: Dict[str, Dict]) -> List[str]:
    """The ISSUE 10 acceptance floors; returns human-readable misses."""
    misses = []
    for shards, floor in E2E_FLOORS.items():
        bench = benches.get(f"dispatch_e2e_{shards}shards")
        if bench is None:
            misses.append(f"dispatch_e2e_{shards}shards: missing")
        elif bench["speedup"] < floor:
            misses.append(f"dispatch_e2e_{shards}shards: "
                          f"{bench['speedup']:.2f}x < {floor}x "
                          f"({bench['mode']})")
    cons = benches.get("dispatch_conservation_2shards")
    if cons is None or not cons.get("conserved"):
        misses.append("dispatch_conservation_2shards: counters did not "
                      "reconcile (offered != admitted + shed)")
    return misses


def main() -> int:
    benches = collect()
    report = {
        "schema": "repro.bench_dispatch/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "benches": benches,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[bench_dispatch] wrote {OUT_PATH}")
    for name, bench in sorted(benches.items()):
        if "speedup" in bench:
            extra = f" [{bench['mode']}]" if "mode" in bench else ""
            print(f"  {name:30s} {bench['speedup']:6.2f}x{extra}")
        else:
            print(f"  {name:30s} conserved={bench.get('conserved')} "
                  f"restarts={bench.get('shard_restarts')}")
    misses = check_thresholds(benches)
    if misses:
        print("[bench_dispatch] acceptance thresholds MISSED:")
        for miss in misses:
            print(f"  {miss}")
        return 1
    print(f"[bench_dispatch] thresholds ok (e2e >= "
          f"{E2E_FLOORS[2]}x @ 2 shards, >= {E2E_FLOORS[4]}x @ 4; "
          f"counters conserved across the kill drill)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
