"""Ablation: balancing schemes under *heterogeneous* VRI service rates.

The paper compares JSQ/RR/random over identical VRIs (Experiment 3a),
where all three tie.  This ablation makes the case for JSQ explicit:
VRIs pinned across sockets have unequal effective service rates, and
only JSQ (which reads the load estimates) avoids overloading the slow
ones.  Expected shape: JSQ's delivered rate degrades least."""

from repro.core import FixedAllocation
from repro.experiments.common import get_profile, udp_trial
from repro.experiments.exp2_core_alloc import DUMMY_LOAD_1_60MS
from repro.experiments.common import ExperimentResult


def _run(profile):
    s = profile.rate_scale
    result = ExperimentResult(
        "ablation-balancing",
        "Balancing under heterogeneous VRIs (4 siblings + 2 remote)",
        columns=("balancer", "kfps"))
    # Six VRIs: sibling-first placement puts 3 in-socket, 3 remote, so
    # the remote ones pay cross-socket IPC on every frame.
    for scheme in ("jsq", "rr", "random"):
        _sent, recv = udp_trial(
            "lvrm-cpp-pfring", 330_000.0 * s, 84, profile,
            vr_variant={"dummy_load": DUMMY_LOAD_1_60MS / s,
                        "balancer": scheme,
                        "allocator_factory": lambda: FixedAllocation(6)})
        result.add(scheme, recv / (1e3 * s))
    return result


def test_ablation_balancing_heterogeneous(benchmark):
    profile = get_profile()
    result = benchmark.pedantic(lambda: _run(profile), rounds=1,
                                iterations=1)
    print("\n" + result.render())
    rates = dict(result.rows)
    assert rates["jsq"] >= rates["random"] * 0.98
