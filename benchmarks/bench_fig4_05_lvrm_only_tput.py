"""Figure 4.5 (Experiment 1c): achievable throughput with LVRM only.

The main-memory socket adapter excludes the network: the paper reports
3.7 Mfps at 84 B and ~922 Kfps (11 Gbps) at 1538 B for the C++ VR, with
Click far lower."""


def test_fig4_05_exp1c(run_figure):
    result = run_figure("exp1c")
    cpp84 = result.value("mfps", vr_type="cpp", frame_size=84)
    assert cpp84 > 2.0
    gbps = result.value("gbps", vr_type="cpp", frame_size=1538)
    assert gbps > 9.0
