"""Extension: multi-LVRM federation — sharded scaling and HA failover.

No thesis figure — these cover the repro.cluster subsystem of
docs/ARCHITECTURE.md §7: aggregate throughput must scale with shard
count when each monitor core is saturated, and the canned
kill-the-active drill must complete failover inside the budget of two
supervision periods with >= 90% of pre-kill throughput recovered.

Expected shape: scale-n2 speedup >= 1.7x, scale-n4 > scale-n2, the
ha-pair rows report ok=1, and the runtime twin promotes the standby
with every announced route already replicated.
"""


def _rows_by_key(result, *key_cols):
    n = len(key_cols)
    return {tuple(row[:n]): row for row in result.rows}


def test_figx_fed_des(run_figure):
    result = run_figure("fed-des")
    rows = _rows_by_key(result, "scenario", "metric")
    n1 = rows[("scale-n1", "throughput_kfps")][2]
    n2 = rows[("scale-n2", "throughput_kfps")][2]
    n4 = rows[("scale-n4", "throughput_kfps")][2]
    assert n1 > 0
    assert n2 / n1 >= 1.7, f"N=2 scaling {n2 / n1:.2f}x below 1.7x"
    assert n4 > n2
    assert rows[("ha-pair", "ok")][2] == 1
    failover_ms = rows[("ha-pair", "failover_ms")][2]
    budget_ms = rows[("ha-pair", "budget_ms")][2]
    assert 0.0 < failover_ms < budget_ms
    assert rows[("ha-pair", "route_relearns")][2] == 0


def test_figx_fed_rt(run_figure):
    result = run_figure("fed-rt")
    rows = {row[0]: row for row in result.rows}
    assert rows["ok"][1] == 1
    assert rows["within_budget"][1] == 1
    assert rows["routes_on_standby"][1] == 12
    assert rows["replicate_events"][1] > 0
