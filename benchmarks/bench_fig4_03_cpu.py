"""Figure 4.3 (Experiment 1a): per-core CPU usage in data forwarding.

Expected shape: native shows only softirq (si) time; raw-socket LVRM is
system-time heavy; PF_RING LVRM burns its core in user space (busy
polling)."""


def test_fig4_03_exp1a_cpu(run_figure):
    result = run_figure("exp1a-cpu")
    native = result.by(mechanism="native")[0]
    si = result.columns.index("si")
    us = result.columns.index("us")
    assert native[si] > 0 and native[us] == 0
