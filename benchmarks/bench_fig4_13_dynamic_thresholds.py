"""Figure 4.13 (Experiment 2e): dynamic thresholds, unequal service rates.

Expected shape: with VR1's VRIs serving at half VR2's rate, VR1 receives
about twice the cores at equal offered load."""


def test_fig4_13_exp2e(run_figure):
    result = run_figure("exp2e")
    vr1 = result.value("cores", vr="vr1")
    vr2 = result.value("cores", vr="vr2")
    assert vr1 > vr2
