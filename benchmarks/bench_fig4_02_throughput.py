"""Figure 4.2 (Experiment 1a): achievable throughput in data forwarding.

Regenerates the paper's headline comparison: native Linux IP forwarding
vs the three LVRM variants vs two general-purpose hypervisors, across
frame sizes.  Expected shape: PF_RING LVRM ~= native; raw socket ~-1/3
at 84 B; Click < C++; hypervisors far behind; everything converges to
the 1-Gbps wire at large frames (except QEMU-KVM)."""


def test_fig4_02_exp1a(run_figure):
    result = run_figure("exp1a")
    fps84 = {m: result.value("kfps", mechanism=m, frame_size=84)
             for m in ("native", "lvrm-cpp-pfring", "qemu-kvm")}
    assert fps84["lvrm-cpp-pfring"] > 0.9 * fps84["native"]
    assert fps84["qemu-kvm"] < 0.2 * fps84["native"]
