"""Ablation: flow-table size under eviction pressure.

Flow-based balancing relies on the connection-tracking hash table
(thesis §3.3).  When the table is smaller than the live flow count,
pins get evicted and flows silently migrate between VRIs — the exact
reordering hazard flow-based balancing exists to prevent.  Expected
shape: migrations drop to zero once the table fits the flow set."""

from repro.core.balancing import FlowBasedBalancer, RoundRobin
from repro.core.flows import FlowTable
from repro.experiments.common import ExperimentResult
from repro.traffic.trace import flow_mix_trace


class _Vri:
    def __init__(self, vri_id):
        self.vri_id = vri_id

    def load_estimate(self):
        return 0.0


def _run():
    result = ExperimentResult(
        "ablation-flowtable", "Flow-table capacity vs pin migrations",
        columns=("table_size", "migrations", "evictions"))
    n_flows = 256
    vris = [_Vri(i) for i in range(6)]
    for size in (32, 128, 256, 1024):
        balancer = FlowBasedBalancer(
            RoundRobin(), FlowTable(max_entries=size, idle_timeout=1e9))
        pins = {}
        migrations = 0
        for i, frame in enumerate(flow_mix_trace(20_000, n_flows, seed=5)):
            vri = balancer.pick(frame, vris, now=i * 1e-5)
            key = frame.five_tuple
            if key in pins and pins[key] != vri.vri_id:
                migrations += 1
            pins[key] = vri.vri_id
        result.add(size, migrations, balancer.flows.evicted)
    return result


def test_ablation_flow_table_size(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + result.render())
    rows = {row[0]: row for row in result.rows}
    assert rows[32][1] > 0          # undersized: flows migrate
    assert rows[1024][1] == 0       # fits: pins are stable
