"""Ablation: the allocation period.

The paper fixes the core-allocation trigger at 1 s and argues "too high
causes instability, too low causes poor responsiveness".  This sweep
replays the Experiment 2c ramp at several periods and reports (a) how
closely the staircase tracks the ideal core count and (b) how many
allocation actions were taken (churn).  Expected shape: tracking error
falls as the period shrinks, churn rises."""

import dataclasses

import numpy as np

from repro.core import DynamicFixedThresholds
from repro.experiments.common import ExperimentResult, get_profile
from repro.experiments.exp2_core_alloc import DUMMY_LOAD_1_60MS, _run_ramp


def _run(profile):
    s = profile.rate_scale
    result = ExperimentResult(
        "ablation-period", "Allocation-period sweep on the Exp 2c ramp",
        columns=("period_ratio", "tracking_error", "actions"))
    for ratio in (0.05, 0.2, 0.5, 1.0):
        period = profile.ramp_step * ratio
        prof = dataclasses.replace(profile, allocation_period=period)
        sim, lvrm, schedules, _t0 = _run_ramp(
            prof, n_vrs=1,
            allocator_factory=lambda: DynamicFixedThresholds(60_000.0 * s),
            peak_each=180_000.0 * s, step_each=30_000.0 * s,
            dummy_loads=(DUMMY_LOAD_1_60MS / s,))
        series = lvrm.vr_monitor.entries["vr1"].cores_series
        errs = []
        for t_step, rate_each in schedules[0][:-1]:
            mid = t_step + 0.75 * prof.ramp_step
            if mid > sim.now:
                break
            offered = 2 * rate_each
            ideal = max(1, int(np.ceil(offered / (60_000.0 * s))))
            errs.append(abs(series.value_at(mid) - ideal))
        actions = (len(lvrm.vr_monitor.alloc_latency)
                   + len(lvrm.vr_monitor.dealloc_latency))
        result.add(ratio, float(np.mean(errs)), actions)
    return result


def test_ablation_allocation_period(benchmark):
    profile = get_profile()
    result = benchmark.pedantic(lambda: _run(profile), rounds=1,
                                iterations=1)
    print("\n" + result.render())
    actions = {row[0]: row[2] for row in result.rows}
    # Faster periods react (and act) more.
    assert actions[0.05] >= actions[1.0]
