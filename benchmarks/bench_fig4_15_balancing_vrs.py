"""Figure 4.15 (Experiment 3b): load balancing among two VRs.

Expected shape: T = 2*min(T1, T2) close to the 360 Kfps ideal for every
scheme — both VRs receive fair processing shares."""


def test_fig4_15_exp3b(run_figure):
    result = run_figure("exp3b")
    for row in result.rows:
        _vr, _scheme, t_kfps, ideal = row
        assert t_kfps > 0.85 * ideal
