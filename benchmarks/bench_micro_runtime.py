"""Micro-benchmark: the real-process backend's forwarding rate.

Measures genuine frames/second through the shared-memory data plane
(parent dispatch -> child parse/route -> parent drain).  This is the
number that motivates the DES backend: Python moves on the order of
10^4 frames/s where the paper's C++ moved 10^5-10^6 — the mechanism is
identical, the constant is not."""

import time

import pytest

from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.runtime import RuntimeLvrm


@pytest.mark.timeout(120)
def test_micro_runtime_forwarding_rate(benchmark):
    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"x" * 64)
    n = 1500

    def run_once():
        with RuntimeLvrm(n_vris=1, worker_lifetime=90.0) as lvrm:
            sent = 0
            got = 0
            deadline = time.monotonic() + 60
            while got < n and time.monotonic() < deadline:
                if sent < n and lvrm.dispatch(frame):
                    sent += 1
                got += len(lvrm.drain())
            return got

    got = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert got == n
