"""Ablation: sibling-first vs naive placement under multi-VR contention.

DESIGN.md calls out LVRM's sibling-first heuristic.  With two VRs
growing dynamically, sibling-first keeps early (hot) VRIs on the cheap
intra-socket IPC path; a reversed ("remote-first") policy pays the
cross-socket surcharge on every frame.  Expected shape: sibling-first
delivers at least as much as remote-first at high load."""

from repro.core import FixedAllocation
from repro.experiments.common import ExperimentResult, get_profile, udp_trial
from repro.experiments.exp2_core_alloc import DUMMY_LOAD_1_60MS
from repro.hardware import AffinityMode


def _run(profile):
    s = profile.rate_scale
    result = ExperimentResult(
        "ablation-affinity", "Placement policy under load (3 VRIs)",
        columns=("policy", "kfps"))
    for label, mode in (("sibling-first", AffinityMode.SIBLING_FIRST),
                        ("non-sibling", AffinityMode.NON_SIBLING)):
        _sent, recv = udp_trial(
            "lvrm-cpp-pfring", 170_000.0 * s, 84, profile,
            vr_variant={"dummy_load": DUMMY_LOAD_1_60MS / s,
                        "affinity": mode,
                        "allocator_factory": lambda: FixedAllocation(3)})
        result.add(label, recv / (1e3 * s))
    return result


def test_ablation_affinity_policy(benchmark):
    profile = get_profile()
    result = benchmark.pedantic(lambda: _run(profile), rounds=1,
                                iterations=1)
    print("\n" + result.render())
    rates = dict(result.rows)
    assert rates["sibling-first"] >= rates["non-sibling"] * 0.97
