#!/usr/bin/env python3
"""Quickstart: host one virtual router on LVRM and forward a trace.

This is the smallest end-to-end use of the public API:

1. build the simulated multi-core gateway;
2. give LVRM a main-memory socket adapter streaming synthetic frames
   (the Experiment 1c configuration — no network in the way);
3. host one C++-style VR with a single fixed VRI;
4. run, and read the monitor's statistics.

Run:  python examples/quickstart.py
"""

from repro import FixedAllocation, Lvrm, Machine, Simulator, VrSpec
from repro.core import make_socket_adapter
from repro.hardware import DEFAULT_COSTS
from repro.routing.prefix import Prefix
from repro.traffic.trace import synthetic_trace


def main() -> None:
    n_frames = 50_000
    frame_size = 84  # the minimum Ethernet wire size the paper sweeps

    sim = Simulator()
    machine = Machine(sim)  # two quad-core CPUs, like the paper's gateway

    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(n_frames, frame_size))

    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(
        VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
        allocator=FixedAllocation(1))
    lvrm.start()

    sim.run(until=60.0)

    stats = lvrm.stats
    drain_time = stats.latency.times[-1]
    rate = stats.forwarded / drain_time
    print(f"frames captured   : {stats.captured}")
    print(f"frames forwarded  : {stats.forwarded}")
    print(f"throughput        : {rate / 1e6:.2f} Mfps "
          f"({rate * frame_size * 8 / 1e9:.2f} Gbps)")
    print(f"mean gw latency   : {stats.latency.mean() * 1e6:.2f} us")
    print(f"CPU core of LVRM  : {lvrm.config.lvrm_core}; "
          f"VRI cores: {[v.core.core_id for v in lvrm.all_vris()]}")


if __name__ == "__main__":
    main()
