// A policy-bearing Click VR configuration (see examples/README.md).
// Quarantines one /26, admits only UDP, and routes the rest.
src :: FromDevice(eth0);
acl :: IPFilter(deny 10.1.1.64/26, allow all);
udp :: Classifier(udp);
rt  :: StaticIPLookup(10.2.0.0/16 1, 10.1.0.0/16 0);
cnt :: Counter;
src -> acl -> udp -> CheckIPHeader -> rt -> DecIPTTL -> cnt
    -> ToDevice(routed);
