#!/usr/bin/env python3
"""Capture-to-replay round trip: pcap files through the memory adapter.

The paper's Experiment 1c loads "a trace file of raw frames into main
memory".  This example writes a real ``.pcap`` file (openable in any
standard tool), reads it back, converts the byte frames into simulation
frames, and replays them through LVRM via the memory socket adapter.

Run:  python examples/pcap_replay.py
"""

import os
import tempfile

from repro import FixedAllocation, Lvrm, Machine, Simulator, VrSpec
from repro.core import make_socket_adapter
from repro.hardware import DEFAULT_COSTS
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame, WIRE_OVERHEAD
from repro.net.packet import build_udp_frame, parse_ethernet, parse_ipv4, parse_udp
from repro.routing.prefix import Prefix
from repro.traffic.pcap import read_pcap, write_pcap

N_FRAMES = 1_000


def synthesize_capture(path: str) -> None:
    """Write a pcap of UDP frames from two flows."""
    records = []
    for i in range(N_FRAMES):
        flow = i % 2
        wire = build_udp_frame(
            src_mac=0x020000000001 + flow, dst_mac=0x0200000000FF,
            src_ip=ip_to_int(f"10.1.1.{2 + flow}"),
            dst_ip=ip_to_int("10.2.1.2"),
            src_port=10_000 + flow, dst_port=20_000,
            payload=bytes(18 + (i % 5)))
        records.append((i * 10e-6, wire))
    write_pcap(path, records)


def frames_from_pcap(path: str):
    """Parse captured bytes back into hot-path simulation frames."""
    for _ts, wire in read_pcap(path):
        eth, ip_bytes = parse_ethernet(wire)
        ip, udp_bytes = parse_ipv4(ip_bytes)
        udp, _payload = parse_udp(udp_bytes, ip.src_ip, ip.dst_ip)
        yield Frame(max(84, len(wire) + WIRE_OVERHEAD), ip.src_ip,
                    ip.dst_ip, proto=ip.proto,
                    src_port=udp.src_port, dst_port=udp.dst_port)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "capture.pcap")
        synthesize_capture(path)
        size = os.path.getsize(path)
        print(f"wrote {path} ({N_FRAMES} frames, {size} bytes)")

        sim = Simulator()
        machine = Machine(sim)
        adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                      trace=frames_from_pcap(path))
        lvrm = Lvrm(sim, machine, adapter)
        lvrm.add_vr(VrSpec(name="replay-vr",
                           subnets=(Prefix.parse("10.1.0.0/16"),)),
                    FixedAllocation(2))
        lvrm.start()
        sim.run(until=30.0)

        stats = lvrm.stats
        print(f"replayed through LVRM: {stats.forwarded}/{stats.captured} "
              f"forwarded, mean latency "
              f"{stats.latency.mean() * 1e6:.2f} us")
        shares = {v.vri_id: v.processed for v in lvrm.all_vris()}
        print(f"VRI shares: {shares}")


if __name__ == "__main__":
    main()
