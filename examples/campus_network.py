#!/usr/bin/env python3
"""Campus backbone: per-department VRs with load-aware core allocation.

The paper's motivating deployment (Chapter 1): one physical gateway on a
campus backbone hosts a virtual router per department, each with its own
routing policy, and CPU cores follow each department's traffic.

Here the CS department's traffic ramps up through the morning while the
Math department's stays flat; LVRM's dynamic allocator (fixed 60 Kfps-
per-core thresholds, scaled 1/4 to keep the example fast) shifts cores
accordingly.  The printout shows each VR's core staircase.

Run:  python examples/campus_network.py
"""

from repro import DynamicFixedThresholds, Lvrm, Machine, Simulator, VrSpec
from repro.core import LvrmConfig, make_socket_adapter
from repro.hardware import DEFAULT_COSTS
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.traffic import FrameSink, RampSender, UdpSender

SCALE = 0.25  # rates and dummy loads co-scaled; shapes are invariant
PER_CORE_FPS = 60_000.0 * SCALE
DUMMY_LOAD = 1 / 60e3 / SCALE  # one VRI saturates at ~60 Kfps (scaled)
STEP = 0.25  # seconds per ramp step (the paper uses 5 s)


def main() -> None:
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(allocation_period=STEP / 5,
                                  record_latency=False))

    # One VR per department, classified by source subnet, each with its
    # own (identical here) routing policy from a static map file.
    for name, subnet in (("cs-dept", "10.1.1.0/24"),
                         ("math-dept", "10.1.2.0/24")):
        lvrm.add_vr(
            VrSpec(name=name, subnets=(Prefix.parse(subnet),),
                   dummy_load=DUMMY_LOAD),
            DynamicFixedThresholds(PER_CORE_FPS))
    lvrm.start()

    # CS ramps 30 -> 150 Kfps (paper scale) and back; Math holds 30 Kfps.
    ramp = [(0.01 + i * STEP, rate * SCALE) for i, rate in enumerate(
        [30e3, 60e3, 90e3, 120e3, 150e3, 120e3, 90e3, 60e3, 30e3])]
    ramp.append((0.01 + len(ramp) * STEP, 0.0))
    RampSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), ramp)
    UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
              rate_fps=30e3 * SCALE, t_start=0.01,
              t_stop=ramp[-1][0])
    sinks = [FrameSink(sim, testbed.hosts[h], record_latency=False)
             for h in ("r1", "r2")]

    horizon = ramp[-1][0] + 0.2
    sim.run(until=horizon)

    print(f"{'time':>6}  {'cs-dept cores':>14}  {'math-dept cores':>16}")
    series = {name: entry.cores_series
              for name, entry in lvrm.vr_monitor.entries.items()}
    t = 0.01 + STEP * 0.8
    while t < horizon - 0.1:
        cs = series["cs-dept"].value_at(t)
        math = series["math-dept"].value_at(t)
        print(f"{t:6.2f}  {cs:14.0f}  {math:16.0f}")
        t += STEP
    print(f"\ndelivered to CS subnet   : {sinks[0].received} frames")
    print(f"delivered to Math subnet : {sinks[1].received} frames")
    print(f"allocation passes        : {lvrm.vr_monitor.passes}")
    alloc = lvrm.vr_monitor.alloc_latency
    if len(alloc):
        print(f"alloc reaction (mean)    : {alloc.mean() * 1e6:.0f} us")
    print("\nfinal state (lvrm.snapshot()):")
    for name, vr in lvrm.snapshot().items():
        cores = [v.core_id for v in vr.vris]
        print(f"  {name:<10} vris={vr.n_vris} cores={cores} "
              f"dispatched={vr.dispatched} "
              f"queue-drops={vr.dropped_queue_full}")


if __name__ == "__main__":
    main()
