#!/usr/bin/env python3
"""FTP/TCP through LVRM: frame-based vs flow-based load balancing.

Reproduces the Experiment 3c scenario in miniature: a handful of FTP
GETs (TCP Reno with receive-window flow control) cross the gateway while
LVRM spreads segments over six VRIs, once per frame (frame-based JSQ)
and once pinned per 5-tuple (flow-based JSQ).  Prints aggregate
throughput and both fairness indexes per configuration.

Run:  python examples/ftp_load_balancing.py
"""

from repro import FixedAllocation, Lvrm, Machine, Simulator, VrSpec
from repro.core import LvrmConfig, make_socket_adapter
from repro.hardware import DEFAULT_COSTS
from repro.metrics import jain_index, max_min_fairness
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.traffic.ftp import FtpWorkload
from repro.traffic.tcp import TcpParams

N_SESSIONS = 8
WARMUP = 0.15
WINDOW = 0.25
READ_TOTAL = 92e6  # aggregate client read speed: ~736 Mbit/s ceiling


def run(flow_based: bool) -> None:
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(balancer="jsq", flow_based=flow_based,
                                  record_latency=False))
    # One VR owns both directions so TCP ACKs are classified too.
    lvrm.add_vr(VrSpec(name="vr1",
                       subnets=(Prefix.parse("10.1.0.0/16"),
                                Prefix.parse("10.2.0.0/16")),
                       dummy_load=1 / 60e3),
                FixedAllocation(6))
    lvrm.start()

    workload = FtpWorkload(
        sim,
        pairs=[(testbed.hosts["s1"], testbed.hosts["r1"]),
               (testbed.hosts["s2"], testbed.hosts["r2"])],
        n_sessions=N_SESSIONS,
        params=TcpParams(app_read_rate=READ_TOTAL / N_SESSIONS),
        t_start=0.01, read_rate_spread=0.5)

    sim.run(until=0.01 + WARMUP)
    workload.mark_window_start()
    sim.run(until=0.01 + WARMUP + WINDOW)

    goodputs = workload.goodputs_bps(WINDOW)
    label = "flow-based " if flow_based else "frame-based"
    print(f"{label} JSQ: aggregate {goodputs.sum() / 1e6:7.1f} Mbps | "
          f"max-min {max_min_fairness(goodputs):.3f} | "
          f"Jain {jain_index(goodputs):.3f}")
    retx = sum(s.data.sender.retransmits for s in workload.sessions)
    print(f"{'':11s}  retransmits {retx}, "
          f"per-flow Mbps {[round(float(g) / 1e6, 1) for g in goodputs]}")
    workload.stop_all()


def main() -> None:
    print(f"{N_SESSIONS} FTP sessions, {WINDOW * 1e3:.0f} ms crest window\n")
    run(flow_based=False)
    run(flow_based=True)


if __name__ == "__main__":
    main()
