#!/usr/bin/env python3
"""The real thing: LVRM over actual OS processes and shared memory.

Everything in this example is literal, not simulated: the VRIs are
child processes spawned by the monitor, frames are real Ethernet/IPv4
bytes built with the packet codecs, the IPC queues are lock-free SPSC
rings living in POSIX shared memory, and (where the host permits) each
worker pins itself to a CPU core with ``os.sched_setaffinity``.

Python will not forward a gigabit — that is exactly why the paper's
figures are reproduced on the calibrated simulator — but the mechanism
is the thesis' mechanism, end to end.

Run:  python examples/real_processes.py
"""

import time

from repro.net.addresses import int_to_ip, ip_to_int
from repro.net.packet import build_udp_frame, parse_ethernet, parse_ipv4
from repro.runtime import RuntimeLvrm

N_FRAMES = 2_000


def main() -> None:
    frame = build_udp_frame(
        src_mac=0x020000000001, dst_mac=0x020000000002,
        src_ip=ip_to_int("10.1.1.2"), dst_ip=ip_to_int("10.2.1.2"),
        src_port=10_000, dst_port=20_000,
        payload=b"campus-backbone-demo" * 8)

    with RuntimeLvrm(n_vris=2, balancer="jsq",
                     worker_lifetime=60.0) as lvrm:
        cores = [v.core_id for v in lvrm.vris]
        print(f"spawned {len(lvrm.vris)} VRI worker processes "
              f"(pids {[v.process.pid for v in lvrm.vris]}, "
              f"cores {cores})")

        t0 = time.perf_counter()
        sent = 0
        collected = []
        while sent < N_FRAMES:
            if lvrm.dispatch(frame):
                sent += 1
            else:
                collected.extend(lvrm.drain())
        collected.extend(lvrm.drain_until(N_FRAMES - len(collected),
                                          timeout=30.0))
        dt = time.perf_counter() - t0

    assert len(collected) == N_FRAMES, "frames went missing!"
    by_vri = {}
    for vri_id, iface, out in collected:
        by_vri[vri_id] = by_vri.get(vri_id, 0) + 1
        assert out == frame and iface == 1
    eth, ip_bytes = parse_ethernet(collected[0][2])
    ip, _ = parse_ipv4(ip_bytes)
    print(f"forwarded {len(collected)} frames intact in {dt:.2f} s "
          f"({len(collected) / dt:.0f} fps through real shared memory)")
    print(f"routing verified: dst {int_to_ip(ip.dst_ip)} -> iface 1")
    print(f"per-worker shares: {by_vri}")


if __name__ == "__main__":
    main()
