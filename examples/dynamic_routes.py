#!/usr/bin/env python3
"""Dynamic routes: VRIs synchronizing routing state over control queues.

The thesis ships static map-file routes but designs for more: VRIs "can
share control information with other VRIs of the same VR, for example,
to synchronize the routing state" (§2.1), and "if dynamic routes are
used, the VRIs can be slightly changed to support both static and
dynamic routes" (§3.7).  This example exercises that path:

1. a VR with three VRIs starts with only the static testbed routes;
2. traffic for an unknown subnet (172.16/12) arrives and is dropped;
3. VRI #1 "learns" the route (as if from a routing daemon) and
   announces it to its peers through LVRM's control queues;
4. the drop rate collapses to zero and a later withdrawal restores it.

Run:  python examples/dynamic_routes.py
"""

from repro import FixedAllocation, Lvrm, Machine, Simulator, VrSpec
from repro.core import make_socket_adapter
from repro.hardware import DEFAULT_COSTS
from repro.routing.prefix import Prefix
from repro.routing.sync import RouteSyncAgent, RouteUpdate, router_table_of
from repro.traffic.trace import synthetic_trace


def main() -> None:
    sim = Simulator()
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(3000, 84, dst_ip="172.16.0.9"),
        trace_rate_fps=30_000.0)  # paced: ~100 ms of traffic
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(3))
    lvrm.start()

    def checkpoint(label):
        forwarded = lvrm.stats.forwarded
        dropped = sum(v.dropped_no_route for v in lvrm.all_vris())
        print(f"t={sim.now * 1e3:6.1f} ms  {label:<28} "
              f"forwarded={forwarded:<5} no-route-drops={dropped}")

    def orchestrate():
        while len(lvrm.all_vris()) < 3:
            yield sim.timeout(1e-4)
        vris = lvrm.all_vris()
        agents = [RouteSyncAgent(v) for v in vris]
        peers = [v.vri_id for v in vris[1:]]

        yield sim.timeout(0.02)
        checkpoint("before announcement")

        # VRI #1 learns 172.16/12 and shares it with its peers.
        yield from agents[0].announce(
            [RouteUpdate(Prefix.parse("172.16.0.0/12"), iface=1)], peers)
        drops_at_announce = sum(v.dropped_no_route for v in vris)
        yield sim.timeout(0.04)
        checkpoint("route announced")
        drops_after = sum(v.dropped_no_route for v in vris)
        assert drops_after == drops_at_announce, "drops must stop!"

        # Later the route is withdrawn again.
        yield from agents[0].announce(
            [RouteUpdate(Prefix.parse("172.16.0.0/12"), withdraw=True)],
            peers)
        yield sim.timeout(0.03)
        checkpoint("route withdrawn")

    sim.process(orchestrate())
    sim.run(until=1.0)
    print(f"\ncontrol events relayed by LVRM: {lvrm.stats.ctrl_relayed}")
    print("route-table sizes:",
          {v.vri_id: len(router_table_of(v.router))
           for v in lvrm.all_vris()})


if __name__ == "__main__":
    main()
