"""Shared resources for simulation processes.

Two primitives cover everything the LVRM models need:

* :class:`Store` — a bounded FIFO of items with blocking ``put``/``get``
  events (used for NIC rings, link queues, and as a base for the
  simulated IPC queues).
* :class:`Resource` — a counted semaphore with FIFO discipline (used for
  serializing access to a CPU core by multiple processes in the "same"
  affinity mode).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Store", "StorePut", "StoreGet", "Resource", "ResourceRequest"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    __slots__ = ("item", "_store")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        self._store = store

    def _abandon(self) -> None:
        """Withdraw a still-queued put (the waiter was interrupted)."""
        if self in self._store._putters:
            self._store._putters.remove(self)


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ("_store",)

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        self._store = store

    def _abandon(self) -> None:
        """Withdraw a still-queued get so no item is handed to the dead."""
        if self in self._store._getters:
            self._store._getters.remove(self)


class Store:
    """Bounded FIFO store with blocking put/get.

    ``capacity`` may be ``float('inf')``.  Waiters are served in FIFO
    order.  The non-blocking variants ``try_put``/``try_get`` support
    drop-tail producers (NIC rings drop frames when full, they do not
    block the wire).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # -- blocking API ---------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        self._getters.append(ev)
        self._dispatch()
        return ev

    # -- non-blocking API --------------------------------------------------------
    def try_put(self, item: Any) -> bool:
        """Store ``item`` if there is room *right now*; never blocks."""
        if self.is_full:
            return False
        self.items.append(item)
        self._dispatch()
        return True

    def try_get(self) -> Optional[Any]:
        """Pop the head item if any; never blocks.

        Returns ``None`` when empty (items must therefore never be None).
        """
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    # -- internals -----------------------------------------------------------------
    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move queued puts into the buffer while room remains.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy waiting getters while items remain.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; fires on acquisition."""

    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        self.resource._release(self)

    def _abandon(self) -> None:
        """Withdraw a still-queued request (the waiter was interrupted)."""
        self.resource._release(self)


class Resource:
    """A counted, FIFO-fair resource (semaphore)."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list = []
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        req = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    # -- no-event fast path -----------------------------------------------
    def acquire_nowait(self):
        """Grant immediately without any event, or return None.

        Hot-path optimization for the common uncontended case (a core
        with one pinned process): skips the request-event round trip.
        The returned token must go back via :meth:`release_nowait`.
        """
        if len(self.users) < self.capacity and not self._waiters:
            token = object()
            self.users.append(token)
            return token
        return None

    def release_nowait(self, token) -> None:
        self.users.remove(token)
        while self._waiters and len(self.users) < self.capacity:
            nxt = self._waiters.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def _release(self, req: ResourceRequest) -> None:
        if req._released:
            return
        req._released = True
        if req in self.users:
            self.users.remove(req)
        elif req in self._waiters:
            self._waiters.remove(req)
            return
        while self._waiters and len(self.users) < self.capacity:
            nxt = self._waiters.popleft()
            self.users.append(nxt)
            nxt.succeed()
