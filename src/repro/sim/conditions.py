"""Composite wait conditions: any-of and all-of.

Processes occasionally need to sleep on several events at once — "the
first reply or the timeout" (the ping probe), "every child finished"
(experiment drivers).  These helpers compose plain events without the
cancel-and-reserve pitfalls of racing multiple blocking ``get``s.

Failure semantics: the first *failed* constituent fails the composite
with the same exception (and defuses it on the constituent so the
engine does not re-raise it at top level).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.engine import Event, Simulator

__all__ = ["any_of", "all_of"]


def any_of(sim: Simulator, events: Sequence[Event]) -> Event:
    """Event firing when the first constituent fires.

    Value: ``(index, value)`` of the winner.  Later firings are ignored
    (their values are consumed by whoever owns those events).
    """
    if not events:
        raise ValueError("any_of needs at least one event")
    composite = sim.event()

    def _on_fire(index: int, event: Event) -> None:
        if composite.triggered:
            if not event.ok:
                event.defuse()
            return
        if event.ok:
            composite.succeed((index, event.value))
        else:
            event.defuse()
            composite.fail(event.value)

    for index, event in enumerate(events):
        event.add_callback(lambda e, i=index: _on_fire(i, e))
    return composite


def all_of(sim: Simulator, events: Sequence[Event]) -> Event:
    """Event firing when every constituent has fired.

    Value: the list of constituent values, in input order.  Fails fast
    on the first constituent failure.
    """
    if not events:
        raise ValueError("all_of needs at least one event")
    composite = sim.event()
    remaining = [len(events)]
    values: List = [None] * len(events)

    def _on_fire(index: int, event: Event) -> None:
        if composite.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            composite.fail(event.value)
            return
        values[index] = event.value
        remaining[0] -= 1
        if remaining[0] == 0:
            composite.succeed(list(values))

    for index, event in enumerate(events):
        event.add_callback(lambda e, i=index: _on_fire(i, e))
    return composite
