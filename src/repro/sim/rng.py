"""Seeded random-number streams.

Every stochastic component (random load balancer, traffic jitter, kernel
scheduler migration model, ...) draws from its own named stream derived
from one master seed, so experiments are reproducible bit-for-bit and
independent components stay statistically independent regardless of
event interleaving.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named ``numpy.random.Generator`` streams.

    Streams are derived with ``SeedSequence.spawn``-style child seeding
    keyed on the stream name, so adding a new stream never perturbs
    existing ones.
    """

    def __init__(self, master_seed: int = 2011):
        if master_seed < 0:
            raise ValueError("master seed must be non-negative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable per-name derivation: hash the name into entropy words.
            words = [self.master_seed] + [ord(c) for c in name]
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(words)))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. for a repeated trial)."""
        return RngRegistry((self.master_seed * 1_000_003 + salt) % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
