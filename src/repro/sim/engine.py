"""Core event loop for the discrete-event simulator.

The engine is deliberately minimal: a heap of ``(time, priority, seq,
event)`` entries and an :class:`Event` primitive with success/failure
callbacks.  Everything else (processes, stores, resources) is layered on
top in sibling modules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.obs.trace import TRACER as _TRACE

__all__ = ["Simulator", "Event", "Timeout", "StopSimulation", "PENDING"]

#: Sentinel for an event that has not been triggered yet.
PENDING = object()

#: Default event priority.  Lower runs first among simultaneous events.
NORMAL = 1
#: Priority used for high-urgency bookkeeping (e.g. interrupts).
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence with a value and callbacks.

    An event has three observable states:

    * *pending* — created, not yet triggered;
    * *triggered* — given a value and scheduled on the heap;
    * *processed* — callbacks have run.

    Callbacks are ``fn(event)`` callables; they run inside the event loop
    when the event's scheduled time is reached.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, NORMAL, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process.  If nothing
        ever waits on a failed event the simulator raises it at the end of
        the run instead of silently swallowing it (unless :meth:`defused`).
        """
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim._enqueue(delay, NORMAL, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator won't re-raise."""
        self._defused = True

    # -- callback plumbing ---------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately (still inside the loop's
            # current step, preserving causality).
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:  # type: ignore[union-attr]
            fn(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(delay, NORMAL, self)


class _PooledTimeout(Event):
    """A recyclable pure-delay event (see :meth:`Simulator.sleep`).

    Instances are returned to the simulator's free list right after
    their callbacks run, so the dominant timeout pattern — a process
    sleeping for a fixed delay — stops allocating an ``Event`` plus a
    callback list per occurrence.  They must therefore never be stored
    past their firing; :meth:`Simulator.sleep` documents the contract.
    """

    __slots__ = ()


#: Upper bound on recycled timeout events kept per simulator.  Deeper
#: pools only help when that many sleeps are simultaneously pending,
#: which no LVRM scenario approaches.
_POOL_MAX = 1024


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run(until=1.0)
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._active: bool = False
        #: Events processed since construction (a plain int so the hot
        #: loop pays one add; exported at trace/metrics time).
        self.events_processed: int = 0
        #: Free list of processed :class:`_PooledTimeout` events.
        self._timeout_pool: list = []

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def clock(self):
        """A zero-arg callable reading sim time — the drop-in stand-in
        for ``time.monotonic`` wherever obs components take a ``clock``
        (span recorders, SLO watchdogs), keeping one code path across
        the DES and the runtime backend."""
        return lambda: self._now

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Event:
        """A pooled pure-delay event: ``yield sim.sleep(dt)``.

        Same scheduling semantics as :meth:`timeout` (NORMAL priority,
        FIFO among simultaneous events), but the event object is
        recycled as soon as its callbacks have run.  Use it only when
        the event is consumed immediately by a single waiter — i.e. the
        plain ``yield`` in a process loop, which is the overwhelming
        majority of all DES events (every ``Core.execute`` and every
        paced traffic source).  Never store the returned event or hand
        it to a condition (:mod:`repro.sim.conditions`); those need
        :meth:`timeout`, whose events stay valid after processing.
        """
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay!r}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._defused = False
        else:
            ev = _PooledTimeout(self)
        ev._ok = True
        ev._value = value
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, NORMAL, self._seq, ev))
        return ev

    def process(self, generator) -> "Process":
        """Start a generator as a simulation process."""
        from repro.sim.process import Process  # local import, avoids cycle

        return Process(self, generator)

    def call_at(self, time: float, fn: Callable[[], None],
                urgent: bool = False) -> Event:
        """Run a plain callback at absolute time ``time``.

        ``urgent=True`` schedules at :data:`URGENT` priority, so the
        callback runs *before* any normal event at the same timestamp.
        This is the fault-injection hook: an injected fault at ``t``
        must observably precede every frame/control event at ``t``, or
        the outcome would depend on heap insertion order and the
        determinism contract of :mod:`repro.faults` would not hold.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        ev = Event(self)
        ev.add_callback(lambda _e: fn())
        ev._ok = True
        ev._value = None
        self._enqueue(time - self._now, URGENT if urgent else NORMAL, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None],
                urgent: bool = False) -> Event:
        """Run a plain callback after ``delay`` seconds."""
        return self.call_at(self._now + delay, fn, urgent=urgent)

    # -- scheduling internals ---------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- main loop ---------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when drained."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        time, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        event._process()
        if type(event) is _PooledTimeout and len(self._timeout_pool) < _POOL_MAX:
            event._value = PENDING
            self._timeout_pool.append(event)

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the heap drains or ``until`` (absolute time) is reached.

        At return, ``now`` equals ``until`` if a horizon was given (even if
        the heap drained earlier), mirroring SimPy semantics.
        """
        if self._active:
            raise RuntimeError("simulator is already running")
        self._active = True
        if _TRACE.enabled:
            _TRACE.instant("sim.run.begin", ts=self._now, cat="sim",
                           track="sim", until=until)
        try:
            if until is not None and until < self._now:
                raise ValueError(
                    f"until ({until}) must not be before now ({self._now})")
            # Hot dispatch loop: equivalent to repeated step() calls, but
            # with the heap, pool, and bookkeeping bound to locals so the
            # per-event cost is a handful of bytecode ops.  The event
            # counter accumulates locally and is flushed in the finally
            # block (exceptions included), keeping step()'s accounting.
            heap = self._heap
            heappop = heapq.heappop
            pool = self._timeout_pool
            horizon = float("inf") if until is None else until
            processed = 0
            try:
                while heap:
                    if heap[0][0] > horizon:
                        break
                    time, _prio, _seq, event = heappop(heap)
                    self._now = time
                    processed += 1
                    try:
                        event._process()
                    except StopSimulation as stop:
                        return stop.value
                    if type(event) is _PooledTimeout and len(pool) < _POOL_MAX:
                        event._value = PENDING
                        pool.append(event)
            finally:
                self.events_processed += processed
            if until is not None:
                self._now = max(self._now, until)
            return None
        finally:
            self._active = False
            if _TRACE.enabled:
                _TRACE.instant("sim.run.end", ts=self._now, cat="sim",
                               track="sim",
                               events_processed=self.events_processed)

    def stop(self, value: Any = None) -> None:
        """Stop the run loop from inside a callback/process."""
        ev = Event(self)
        def _raise(_e: Event) -> None:
            raise StopSimulation(value)
        ev.add_callback(_raise)
        ev._ok = True
        ev._value = None
        self._enqueue(0.0, URGENT, ev)
