"""Time-series recording for experiment output.

Experiments record staircase series (cores allocated vs time), rate
series (delivered frames per interval) and scalar samples.  Recording is
append-only Python lists in the hot path; conversion to numpy happens
once, at analysis time, per the HPC guideline of keeping per-event work
minimal and vectorizing the post-processing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Timeline", "StepSeries", "RateCounter"]


class Timeline:
    """Append-only record of ``(time, value)`` samples."""

    __slots__ = ("times", "values", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return float(np.mean(self.values))

    def percentile(self, q: float) -> float:
        if not self.values:
            return float("nan")
        return float(np.percentile(self.values, q))

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else float("nan")

    def min(self) -> float:
        return float(np.min(self.values)) if self.values else float("nan")


class StepSeries(Timeline):
    """A piecewise-constant series (e.g. #cores allocated over time).

    ``value_at(t)`` and ``time_average`` interpret the samples as a step
    function that holds each value until the next sample.
    """

    def value_at(self, t: float) -> float:
        if not self.times or t < self.times[0]:
            raise ValueError(f"no sample at or before t={t}")
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return self.values[idx]

    def time_average(self, t_start: float, t_end: float) -> float:
        """Time-weighted mean of the step function over ``[t_start, t_end]``."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        times, values = self.as_arrays()
        if times.size == 0:
            return float("nan")
        # Clip the step function to the window.
        edges = np.concatenate(([t_start], times[(times > t_start) & (times < t_end)], [t_end]))
        # Value in effect at each left edge:
        idx = np.searchsorted(times, edges[:-1], side="right") - 1
        idx = np.clip(idx, 0, len(values) - 1)
        widths = np.diff(edges)
        return float(np.sum(values[idx] * widths) / (t_end - t_start))


class RateCounter:
    """Counts discrete arrivals and reports rates over fixed bins."""

    __slots__ = ("bin_width", "counts", "t0")

    def __init__(self, bin_width: float, t0: float = 0.0):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.t0 = t0
        self.counts: List[int] = []

    def record(self, time: float, n: int = 1) -> None:
        idx = int((time - self.t0) / self.bin_width)
        if idx < 0:
            raise ValueError(f"sample at {time} precedes t0={self.t0}")
        while len(self.counts) <= idx:
            self.counts.append(0)
        self.counts[idx] += n

    def rates(self) -> np.ndarray:
        """Per-bin rates (events/second)."""
        return np.asarray(self.counts, dtype=float) / self.bin_width

    def bin_centers(self) -> np.ndarray:
        n = len(self.counts)
        return self.t0 + (np.arange(n) + 0.5) * self.bin_width

    def total(self) -> int:
        return int(sum(self.counts))
