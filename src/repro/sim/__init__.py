"""Discrete-event simulation engine.

A small, self-contained, generator-process DES kernel in the style of
SimPy, built from scratch for this reproduction.  All of the paper's
testbed components (cores, NICs, links, queues, routers) are modelled as
:class:`~repro.sim.process.Process` coroutines scheduled by a single
:class:`~repro.sim.engine.Simulator`.

Design notes
------------
* The event loop is a binary heap keyed by ``(time, priority, seq)``.
  ``seq`` is a monotone counter so simultaneous events run in
  deterministic FIFO order — determinism is a hard requirement because
  the experiment harness asserts exact qualitative shapes.
* Processes are plain Python generators that ``yield`` events.  This
  keeps the per-event overhead low (one ``send`` per resumption), which
  matters: Experiment 1c pushes millions of frames through the pipeline.
* No wall-clock access anywhere; randomness comes only from seeded
  streams in :mod:`repro.sim.rng`.
"""

from repro.sim.engine import Simulator, Event, Timeout, StopSimulation
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Store, Resource
from repro.sim.conditions import any_of, all_of
from repro.sim.timeline import Timeline, StepSeries
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "StopSimulation",
    "Process",
    "Interrupt",
    "Store",
    "Resource",
    "any_of",
    "all_of",
    "Timeline",
    "StepSeries",
    "RngRegistry",
]
