"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` must produce
an :class:`~repro.sim.engine.Event`; the process is resumed with the
event's value when it fires (or the event's exception is thrown in).

Processes are themselves events: they trigger when the generator returns
(with the generator's return value) or raises.  This allows
``yield other_process`` for join semantics, which the LVRM monitor uses
to wait for VRI teardown.

Interrupts
----------
``process.interrupt(cause)`` throws :class:`Interrupt` into the generator
at its current yield point — the mechanism used to model ``kill()`` of a
VRI by the VRI monitor.  Interrupting a process that already terminated
is a silent no-op, matching POSIX ``kill`` of a reaped pid in spirit.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Event, Simulator, URGENT

__all__ = ["Process", "Interrupt", "ProcessCrash"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class ProcessCrash(RuntimeError):
    """Raised by the engine when a process dies with an unhandled error."""


class Process(Event):
    """A running simulation process (also an event: fires at termination)."""

    __slots__ = ("generator", "_target", "name", "_send", "_throw")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        # Bound methods cached once: _step runs per event, and the
        # attribute chain generator.send/.throw is measurable there.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if just born
        #: or already dead).
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot._ok = True
        boot._value = None
        sim._enqueue(0.0, URGENT, boot)

    # -- lifecycle ----------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        if not self.is_alive:
            return  # interrupting the dead is a no-op
        ev = Event(self.sim)
        def _throw(_e: Event) -> None:
            if not self.is_alive:
                return
            # Detach from whatever the process was waiting on.
            target, self._target = self._target, None
            if target is not None and not target.processed:
                if target.callbacks is not None and self._resume in target.callbacks:
                    target.callbacks.remove(self._resume)
                # Resource-like events (queued store gets/puts, resource
                # requests) must also leave their wait queues, or a later
                # fulfilment is silently lost on a dead process.
                abandon = getattr(target, "_abandon", None)
                if abandon is not None and not target.triggered:
                    abandon()
            self._step(Interrupt(cause), throw=True)
        ev.add_callback(_throw)
        ev._ok = True
        ev._value = None
        self.sim._enqueue(0.0, URGENT, ev)

    # -- resumption machinery --------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # The process died (e.g. was interrupted) between this event's
            # trigger and its processing; nothing to resume.
            if not event.ok:
                event.defuse()
            return
        self._target = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event.defuse()
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._throw(value)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-handled interrupt terminates the process "killed".
            self.succeed(exc.cause)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            crash = ProcessCrash(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances")
            self.generator.close()
            self.fail(crash)
            return
        self._target = target
        target.add_callback(self._resume)
