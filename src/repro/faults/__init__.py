"""Deterministic fault injection for the LVRM stack.

The reliability companion of :mod:`repro.obs` (see docs/RELIABILITY.md):
a declarative, seed-stable *fault schedule* — kill or hang a VRI,
slow it down, drop or corrupt a ring slot, delay the control path —
applied to the DES by an :class:`~repro.faults.injector.FaultInjector`,
plus canned scenarios that run a schedule against either backend
(:mod:`repro.faults.scenario`).

Determinism contract: the same seed and the same schedule produce the
same simulation, event for event.  Faults are scheduled as *urgent*
events (:data:`repro.sim.engine.URGENT`), so an injected fault at time
``t`` observably precedes every normal event at ``t`` regardless of
heap insertion order.
"""

from repro.faults.schedule import (FAULT_KINDS, RUNTIME_KINDS, FaultSpec,
                                   FaultSchedule)
from repro.faults.injector import FaultInjector

__all__ = ["FAULT_KINDS", "RUNTIME_KINDS", "FaultSpec", "FaultSchedule",
           "FaultInjector"]
