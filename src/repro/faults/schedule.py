"""Declarative fault schedules (docs/RELIABILITY.md, "Schedule files").

A schedule is an ordered list of :class:`FaultSpec` entries, each firing
at an absolute simulation time.  The JSON form::

    {
      "description": "kill VRI 1 at t=2s",
      "faults": [
        {"t": 2.0,  "kind": "kill",         "vri": 1},
        {"t": 2.5,  "kind": "hang",         "vri": 0},
        {"t": 3.0,  "kind": "slow",         "vri": 2, "factor": 4.0},
        {"t": 3.5,  "kind": "drop_slot",    "vri": 0, "count": 8},
        {"t": 4.0,  "kind": "corrupt_slot", "vri": 0, "count": 2},
        {"t": 4.5,  "kind": "delay_ctrl",   "delay": 0.01, "count": 3}
      ]
    }

``vri`` is a **spawn-order index** (0 = the first VRI the gateway
created), not a raw ``vri_id``: ids are process-global counters, so a
schedule keyed on them would silently mistarget when two runs share a
process.  Index-at-fire-time keys the schedule to the run's own
topology, which is what makes schedules portable across runs — the
determinism contract depends on it.

Kinds ``kill`` and ``hang`` also run against the real-process backend
(SIGKILL / SIGSTOP); the slot- and timing-level kinds are DES-only, as
no portable user-space mechanism tears a specific shm slot on cue.

``kill_instance`` is cluster-level: it takes a whole LVRM member down
(``instance`` is a federation member index, not a VRI slot) and is
injected by the :mod:`repro.cluster` scenarios, never by the per-monitor
:class:`repro.faults.FaultInjector` — a single monitor has no notion of
"instance 1".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["FAULT_KINDS", "RUNTIME_KINDS", "CLUSTER_KINDS", "FaultSpec",
           "FaultSchedule"]

#: Every fault kind a schedule file may carry.
FAULT_KINDS = ("kill", "hang", "slow", "drop_slot", "corrupt_slot",
               "delay_ctrl", "kill_instance")
#: The subset the real-process backend can inject (signal-level only).
RUNTIME_KINDS = ("kill", "hang")
#: The subset only the federation scenarios (repro.cluster) understand.
CLUSTER_KINDS = ("kill_instance",)

#: Which optional parameters each kind accepts (beyond t/kind/vri).
_PARAMS = {
    "kill": (),
    "hang": (),
    "slow": ("factor",),
    "drop_slot": ("count",),
    "corrupt_slot": ("count",),
    "delay_ctrl": ("delay", "count"),
    "kill_instance": ("instance",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    #: Absolute injection time (simulation seconds; wall-clock seconds
    #: since scenario start for the runtime backend).
    t: float
    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Target VRI as a spawn-order index (None only for ``delay_ctrl``,
    #: which targets the monitor's control path, not a VRI).
    vri: Optional[int] = None
    #: Service-time multiplier (``slow``).
    factor: float = 1.0
    #: How many slots / events the fault covers (``drop_slot``,
    #: ``corrupt_slot``, ``delay_ctrl``).
    count: int = 1
    #: Extra per-event control-relay latency (``delay_ctrl``), seconds.
    delay: float = 0.0
    #: Target federation member index (``kill_instance`` only).
    instance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.t < 0:
            raise ConfigError(f"fault time cannot be negative: {self.t}")
        if self.kind == "delay_ctrl":
            if self.vri is not None:
                raise ConfigError("delay_ctrl targets the monitor, not a VRI")
            if self.delay < 0:
                raise ConfigError("delay_ctrl needs delay >= 0")
        elif self.kind == "kill_instance":
            if self.vri is not None:
                raise ConfigError(
                    "kill_instance targets a federation member, not a VRI")
            if self.instance is None or self.instance < 0:
                raise ConfigError(
                    "kill_instance needs a non-negative 'instance' index")
        else:
            if self.vri is None or self.vri < 0:
                raise ConfigError(
                    f"{self.kind} needs a non-negative 'vri' index")
        if self.kind != "kill_instance" and self.instance is not None:
            raise ConfigError(f"{self.kind} does not accept 'instance'")
        if self.kind == "slow" and self.factor < 0:
            raise ConfigError("slow needs factor >= 0")
        if self.count < 1:
            raise ConfigError("count must be >= 1")

    @property
    def runtime_ok(self) -> bool:
        """Whether the real-process backend can inject this fault."""
        return self.kind in RUNTIME_KINDS

    def to_dict(self) -> dict:
        out = {"t": self.t, "kind": self.kind}
        if self.vri is not None:
            out["vri"] = self.vri
        for param in _PARAMS[self.kind]:
            out[param] = getattr(self, param)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"fault entry must be an object, got {data!r}")
        kind = data.get("kind")
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        allowed = {"t", "kind", "vri"} | set(_PARAMS[kind])
        unknown = set(data) - allowed
        if unknown:
            raise ConfigError(
                f"{kind} fault does not accept {sorted(unknown)}")
        if "t" not in data:
            raise ConfigError("fault entry needs a 't' (injection time)")
        kwargs = {"t": float(data["t"]), "kind": kind}
        if "vri" in data:
            kwargs["vri"] = int(data["vri"])
        if "factor" in data:
            kwargs["factor"] = float(data["factor"])
        if "count" in data:
            kwargs["count"] = int(data["count"])
        if "delay" in data:
            kwargs["delay"] = float(data["delay"])
        if "instance" in data:
            kwargs["instance"] = int(data["instance"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults plus a human-readable description."""

    faults: Tuple[FaultSpec, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults",
                           tuple(sorted(self.faults, key=lambda f: f.t)))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    @property
    def runtime_subset(self) -> "FaultSchedule":
        """Only the faults the real-process backend can inject."""
        return FaultSchedule(tuple(f for f in self.faults if f.runtime_ok),
                             self.description)

    # -- (de)serialization ---------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        return json.dumps({
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault schedule JSON: {exc}") from exc
        if not isinstance(data, dict) or "faults" not in data:
            raise ConfigError(
                "fault schedule must be an object with a 'faults' list")
        entries = data["faults"]
        if not isinstance(entries, list):
            raise ConfigError("'faults' must be a list")
        return cls(tuple(FaultSpec.from_dict(e) for e in entries),
                   str(data.get("description", "")))

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
