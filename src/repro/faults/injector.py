"""The DES fault injector (docs/RELIABILITY.md, "Determinism contract").

Arms a :class:`~repro.faults.schedule.FaultSchedule` against a running
:class:`~repro.core.lvrm.Lvrm`: each fault becomes one *urgent* callback
(:meth:`Simulator.call_at` with ``urgent=True``), so at its timestamp it
runs before every normal event — frame arrivals, queue pops, supervision
sweeps — making the interleaving independent of heap insertion order.

Targets are resolved *at fire time* by spawn order: ``vri: 1`` is the
second VRI the gateway has ever created that is still alive when the
fault fires.  A fault whose index no longer resolves (the target died
first) is counted in :attr:`skipped` rather than raised — schedules
outlive the instances they name, exactly like a real chaos harness.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.lvrm import Lvrm
from repro.core.vri import VriRuntime
from repro.errors import ConfigError
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.obs.recorder import RECORDER
from repro.obs.registry import default_registry
from repro.obs.trace import TRACER as _TRACE

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a fault plan onto a DES gateway."""

    def __init__(self, lvrm: Lvrm, schedule: FaultSchedule):
        self.lvrm = lvrm
        self.schedule = schedule
        self.injected = 0
        self.skipped = 0
        #: Log of (t, kind, vri_id-or-None) actually applied.
        self.applied: List[tuple] = []
        self._armed = False
        self._c_injected = default_registry().counter(
            "faults_injected_total",
            "faults the injector actually applied",
            **lvrm.obs_labels)

    # -- arming ----------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every fault as an urgent callback; idempotent-safe."""
        if self._armed:
            raise RuntimeError("fault schedule already armed")
        for spec in self.schedule:
            if spec.kind == "kill_instance":
                raise ConfigError(
                    "kill_instance is a cluster-level fault; run it through "
                    "a repro.cluster scenario, not a per-monitor injector")
        self._armed = True
        for spec in self.schedule:
            self.lvrm.sim.call_at(spec.t, lambda s=spec: self._fire(s),
                                  urgent=True)
        return self

    # -- firing ----------------------------------------------------------------
    def _resolve(self, index: int) -> Optional[VriRuntime]:
        """Spawn-order target resolution over the *live* VRI list.

        ``all_vris()`` lists VRIs in creation order (per-monitor append,
        monitors in registration order), so index ``k`` is "the k-th
        oldest instance still alive" — stable across identical runs.
        """
        vris = self.lvrm.all_vris()
        if 0 <= index < len(vris):
            return vris[index]
        return None

    def _fire(self, spec: FaultSpec) -> None:
        now = self.lvrm.sim.now
        if spec.kind == "delay_ctrl":
            self.lvrm.inject_ctrl_delay(spec.delay, spec.count)
            self._record(spec, None, now)
            return
        vri = self._resolve(spec.vri)
        if vri is None or not vri.alive:
            self.skipped += 1
            RECORDER.note("fault.skip", ts=now, kind=spec.kind,
                          index=spec.vri)
            return
        if spec.kind == "kill":
            vri.fail("crash")
        elif spec.kind == "hang":
            vri.hang()
        elif spec.kind == "slow":
            vri.set_slow(spec.factor)
        elif spec.kind == "drop_slot":
            vri.channels.data_in.inject_drop(spec.count)
        elif spec.kind == "corrupt_slot":
            vri.channels.data_in.inject_corrupt(spec.count)
        else:  # pragma: no cover - schedule validation forbids this
            raise AssertionError(f"unhandled fault kind {spec.kind!r}")
        self._record(spec, vri, now)

    def _record(self, spec: FaultSpec, vri: Optional[VriRuntime],
                now: float) -> None:
        self.injected += 1
        self._c_injected.inc()
        vri_id = vri.vri_id if vri is not None else None
        self.applied.append((now, spec.kind, vri_id))
        RECORDER.note("fault.inject", ts=now, kind=spec.kind,
                      index=spec.vri, vri=vri_id)
        if _TRACE.enabled:
            _TRACE.instant("fault.inject", ts=now, cat="fault",
                           track="faults", kind=spec.kind,
                           index=spec.vri, vri=vri_id)
