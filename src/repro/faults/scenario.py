"""Canned fault scenarios against either backend.

:func:`run_des_scenario` stands LVRM up on the Figure 4.1 gateway with
supervision enabled, offers a fixed set of CBR UDP flows, arms a fault
schedule, and returns a structured report — per-flow delivery before and
after each kill (the "zero lost flows" check of docs/RELIABILITY.md),
per-slot VRI frame counts, and the supervisor's ledger.  Every field in
the report is simulation-deterministic: two runs with the same seed and
schedule return identical reports (asserted in tests/test_determinism.py).

:func:`run_runtime_scenario` does the real-process equivalent for the
signal-level subset of the schedule (kill -> SIGKILL, hang -> SIGSTOP),
driving dispatch/drain/supervision from one loop and reporting whether
forwarding resumed after the last restart.

Both are what ``lvrm-exp faults`` runs (docs/EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional

from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec, make_socket_adapter
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.traffic import FrameSink, UdpSender

__all__ = ["run_des_scenario", "run_runtime_scenario",
           "SCENARIO_SLO_RULES", "OVERLOAD_DST_PORTS"]

#: Default objectives armed by both scenario runners: any frame lost to
#: a fault breaches the loss budget, and a worker that stops heartbeating
#: for half a second breaches the liveness budget.  Scenario reports
#: carry the per-rule breach counts, so ``lvrm-exp faults`` shows an SLO
#: verdict next to the supervisor ledger.
SCENARIO_SLO_RULES = (
    {"name": "no-drops", "kind": "drop_rate", "threshold": 0.0},
    {"name": "fresh-heartbeats", "kind": "stale_heartbeat",
     "threshold": 0.5},
)

#: Destination ports used by the overload drills to spread traffic
#: across the default priority classes (control / interactive / bulk —
#: see repro.overload.classify).
OVERLOAD_DST_PORTS = (179, 5000, 40000)


def _overload_report(policy: str, offered_x: float, controller,
                     plane_state: Optional[Dict] = None) -> Dict:
    """The ``overload`` section shared by both scenario reports.

    Under the sharded dispatch plane the monitor holds no controller
    (each shard runs its own, coupled through the shared verdict); the
    plane's folded per-shard view — snapshotted before teardown —
    stands in."""
    out: Dict = {"policy": policy, "offered_x": offered_x}
    if controller is not None:
        out["state"] = controller.state()
    elif plane_state is not None and policy != "none":
        out["state"] = plane_state
    return out


def _slo_report(watchdog) -> Dict:
    """The deterministic SLO section of a scenario report."""
    if watchdog is None:
        return {"rules": [], "breaches": {}, "breaching": []}
    return {
        "rules": [r.to_dict() for r in watchdog.rules],
        "breaches": dict(watchdog.breach_counts),
        "breaching": watchdog.breaching(),
    }


def run_des_scenario(schedule: FaultSchedule, duration: float = 6.0,
                     n_vris: int = 3, n_flows: int = 8,
                     rate_fps: float = 20_000.0,
                     seed: int = 2011,
                     config: Optional[LvrmConfig] = None,
                     slo_rules=SCENARIO_SLO_RULES,
                     postmortem_dir: Optional[str] = None,
                     data_plane: str = "copy",
                     kernel: Optional[str] = None,
                     overload_policy: str = "none",
                     overload_x: float = 1.0,
                     overload_opts: Optional[Dict] = None,
                     dispatch_shards: Optional[int] = None) -> Dict:
    """Run a fault schedule on the simulated gateway; return the report.

    ``n_flows`` CBR UDP flows (half from each sender host, distinct
    source ports) cross one VR spread over ``n_vris`` flow-pinned VRIs.
    The report's ``flows_ok`` is the acceptance check: every flow that
    had delivered frames before a kill/hang fault keeps delivering after
    the failover.

    The overload drill (docs/OVERLOAD.md): ``overload_x`` multiplies
    the offered rate, and a policy other than ``none`` arms the
    admission stage.  When the drill is engaged the flows spread over
    :data:`OVERLOAD_DST_PORTS` so all three default priority classes
    see traffic; the vanilla scenario keeps its legacy single-port
    flows, byte-identical to earlier releases.
    """
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim, costs=DEFAULT_COSTS)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    cfg = config or LvrmConfig(record_latency=False, balancer="jsq",
                               flow_based=True, supervise=True,
                               slo_rules=tuple(slo_rules or ()),
                               postmortem_dir=postmortem_dir,
                               data_plane=data_plane, kernel=kernel,
                               overload_policy=overload_policy,
                               overload_opts=overload_opts,
                               dispatch_shards=dispatch_shards)
    lvrm = Lvrm(sim, machine, adapter, costs=DEFAULT_COSTS, config=cfg,
                rng=RngRegistry(seed))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(n_vris))
    lvrm.start()

    sinks = {name: FrameSink(sim, testbed.hosts[name], record_latency=False)
             for name in ("r1", "r2")}
    drill = overload_policy != "none" or overload_x != 1.0
    offered_fps = rate_fps * overload_x
    senders: List[UdpSender] = []
    for i in range(n_flows):
        src = "s1" if i % 2 == 0 else "s2"
        dst = "r1" if i % 2 == 0 else "r2"
        kwargs = {}
        if drill:
            kwargs["dst_port"] = OVERLOAD_DST_PORTS[
                i % len(OVERLOAD_DST_PORTS)]
        senders.append(UdpSender(
            sim, testbed.hosts[src], testbed.host_ip(dst),
            offered_fps / n_flows, src_port=10_000 + i,
            phase=i * 1.3e-6, t_stop=duration, **kwargs))

    injector = FaultInjector(lvrm, schedule).arm()

    # Snapshot per-flow delivery right when each kill/hang fires (normal
    # priority: runs after the urgent fault at the same timestamp, which
    # is exactly the "world as the fault saw it" view we want).
    flow_marks: List[Dict] = []

    def _mark(t: float, kind: str) -> None:
        counts: Dict = {}
        for sink in sinks.values():
            counts.update(sink.by_flow)
        flow_marks.append({"t": t, "kind": kind, "counts": counts})

    for spec in schedule:
        if spec.kind in ("kill", "hang"):
            sim.call_at(spec.t, lambda t=spec.t, k=spec.kind: _mark(t, k))

    sim.run(until=duration)

    received_total = sum(s.received for s in sinks.values())
    final_counts: Dict = {}
    for sink in sinks.values():
        final_counts.update(sink.by_flow)

    # Zero lost *flows*: every flow alive at a kill keeps delivering.
    lost_flows: List[str] = []
    for mark in flow_marks:
        for flow, n_at_mark in mark["counts"].items():
            if final_counts.get(flow, 0) <= n_at_mark:
                lost_flows.append(f"{flow} (stalled after "
                                  f"{mark['kind']}@{mark['t']})")
    flows_ok = not lost_flows

    stats = lvrm.stats
    report = {
        "backend": "des",
        "duration": duration,
        "seed": seed,
        "data_plane": data_plane,
        "kernel": cfg.kernel,
        "dispatch_shards": cfg.dispatch_shards,
        "sent": sum(s.sent for s in senders),
        "captured": stats.captured,
        "dispatched": stats.dispatched,
        "forwarded": stats.forwarded,
        "received": received_total,
        "flows_total": len(final_counts),
        "flows_ok": flows_ok,
        "lost_flows": lost_flows,
        "per_flow": {str(k): v for k, v in sorted(final_counts.items())},
        # Per-slot counts keyed by live spawn order, NOT raw vri_id (ids
        # are process-global, so they differ across runs in one process).
        "per_vri": [{"slot": i, "processed": v.processed,
                     "queue": v.channels.data_in.data_count}
                    for i, v in enumerate(lvrm.all_vris())],
        "n_vris_end": len(lvrm.all_vris()),
        "supervisor": {
            "failovers": stats.failovers.value,
            "restarts": stats.restarts.value,
            "degraded": stats.degraded.value,
            "flows_reassigned": stats.flows_reassigned.value,
        },
        "faults": {
            "injected": injector.injected,
            "skipped": injector.skipped,
            # (t, kind) only: the applied log's vri_id is process-global.
            "applied": [(t, kind) for t, kind, _vid in injector.applied],
        },
        "spans": lvrm.spans.percentiles(),
        "slo": _slo_report(lvrm.watchdog),
        "overload": _overload_report(cfg.overload_policy, overload_x,
                                     lvrm.overload),
        "events_processed": sim.events_processed,
    }
    return report


def _runtime_counters(lvrm, supervisor, injected: int) -> Dict:
    """The record-time counter snapshot a replay must reproduce.

    Every field comes from the runtime's *own* ledgers (handle counters,
    teardown stats, the supervisor's registry counters, the admission
    controller) — never from the trace — so the replay comparison is a
    real cross-check, not a tautology.
    """
    per_vri: Dict[str, Dict[str, int]] = {}
    for entry in lvrm.teardown_stats:
        d = per_vri.setdefault(str(entry["vri_id"]),
                               {"dispatched": 0, "drained": 0})
        d["dispatched"] += entry["dispatched"]
        d["drained"] += entry["drained"]
    for v in lvrm.vris:
        d = per_vri.setdefault(str(v.vri_id),
                               {"dispatched": 0, "drained": 0})
        d["dispatched"] += v.dispatched
        d["drained"] += v.drained
    per_class: Dict[str, int] = {}
    shed = 0
    if lvrm.overload is not None:
        names = lvrm.overload.classifier.classes
        for c, n in enumerate(lvrm.overload.shed):
            shed += n
            if n:
                per_class[names[c]] = n
    return {
        "per_vri": per_vri,
        "totals": {
            "dispatched": sum(d["dispatched"] for d in per_vri.values()),
            "drained": sum(d["drained"] for d in per_vri.values()),
            "shed": shed,
            "reclaimed": lvrm.stranded_reclaimed,
        },
        "supervisor": {
            "failovers": supervisor.failovers,
            "restarts": supervisor.restarts,
            "degraded": supervisor.degraded,
        },
        "faults": injected,
        "per_class": per_class,
        "spans": lvrm.spans.recorded,
    }


def run_runtime_scenario(schedule: FaultSchedule, duration: float = 5.0,
                         n_vris: int = 2,
                         heartbeat_interval: float = 0.05,
                         poll_interval: float = 0.02,
                         stats_interval: float = 0.1,
                         span_sample_every: int = 16,
                         slo_rules=SCENARIO_SLO_RULES,
                         admin_port: Optional[int] = None,
                         postmortem_dir: Optional[str] = None,
                         data_plane: str = "copy",
                         wait_strategy: str = "sleep",
                         kernel: Optional[str] = None,
                         overload_policy: str = "none",
                         overload_x: float = 1.0,
                         overload_opts: Optional[Dict] = None,
                         record_trace: Optional[str] = None,
                         dispatch_shards: Optional[int] = None,
                         profile_out: Optional[str] = None) -> Dict:
    """Run the signal-level subset of a schedule on real workers.

    Fault times are wall-clock offsets from scenario start.  The driving
    loop interleaves dispatch, drain, and supervision — the runtime twin
    of the DES main loop — and the report's ``resumed_ok`` asserts that
    frames were forwarded *after* the last restart completed.  The full
    telemetry plane is armed: worker registries merge via the stats
    channel, 1-in-N frames carry latency probes, the supervisor sweeps
    the SLO rules, and ``admin_port`` (0 = ephemeral) serves /metrics,
    /healthz, /topology, and /spans over loopback HTTP for the whole
    scenario — the CI fault-smoke job curls it mid-fault.

    ``record_trace`` arms the deterministic record plane
    (:mod:`repro.replay`): every ring op, control message, supervisor
    decision, and fault injection is captured into a sequenced JSONL
    trace at that path, finalized with the run's counter summary so
    ``lvrm-exp replay`` can verify it bit-identically through the DES.
    Recording requires a single dispatcher (``dispatch_shards == 1``):
    shard processes interleave ring ops the monitor-side tracer cannot
    sequence, so a sharded trace would be structurally incomplete.

    ``dispatch_shards > 1`` runs the drill through the sharded dispatch
    plane (:mod:`repro.dispatch`); ``profile_out`` cProfiles the
    monitor's driving loop (and, when sharded, each shard process) and
    dumps one merged pstats file at that path.
    """
    from repro.dispatch import resolve_dispatch_shards
    from repro.net.addresses import ip_to_int
    from repro.net.packet import build_udp_frame
    from repro.obs.slo import parse_rules
    from repro.obs.trace import TRACER as _TRACE
    from repro.runtime import RuntimeLvrm, Supervisor, SupervisorPolicy

    if record_trace is not None and resolve_dispatch_shards(
            dispatch_shards) > 1:
        raise ValueError(
            "record_trace requires dispatch_shards=1: shard processes "
            "interleave ring ops the monitor-side tracer cannot sequence")
    profile = None
    if profile_out is not None:
        import cProfile
        profile = cProfile.Profile()

    recorder = None
    if record_trace is not None:
        from repro.replay import ReplayRecorder
        # Attach before the monitor exists so worker.spawn events are
        # part of the trace (the HB checker's fork edges need them).
        recorder = ReplayRecorder().start()

    runnable = schedule.runtime_subset
    drill = overload_policy != "none"
    if drill:
        # One frame per default priority class (ports spread across
        # OVERLOAD_DST_PORTS), cycled so the admission stage sees all
        # classes; overload_x scales how many are offered per loop turn.
        frames = tuple(build_udp_frame(
            0x02, 0x03, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
            10_000 + i, port, b"overload-drill")
            for i, port in enumerate(OVERLOAD_DST_PORTS))
    else:
        frames = (build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                                  ip_to_int("10.2.1.2"), 1, 2,
                                  b"fault-smoke"),)
    burst = max(1, int(round(overload_x)))
    try:
        lvrm = RuntimeLvrm(n_vris=n_vris,
                           worker_lifetime=max(60.0, duration * 4),
                           heartbeat_interval=heartbeat_interval,
                           stats_interval=stats_interval,
                           span_sample_every=span_sample_every,
                           data_plane=data_plane,
                           wait_strategy=wait_strategy,
                           kernel=kernel,
                           overload_policy=overload_policy,
                           overload_opts=overload_opts,
                           dispatch_shards=dispatch_shards,
                           dispatch_profile_base=profile_out)
    except BaseException:
        if recorder is not None:
            recorder.stop()
        raise
    policy = SupervisorPolicy(heartbeat_timeout=max(4 * heartbeat_interval,
                                                    0.5),
                              restart_backoff=0.05,
                              restart_backoff_max=1.0,
                              restart_budget=3,
                              postmortem_dir=postmortem_dir)
    supervisor = Supervisor(lvrm, policy,
                            slo_rules=parse_rules(list(slo_rules or ())))
    admin_url = None
    if admin_port is not None:
        admin_url = lvrm.start_admin(port=admin_port).url
    pending = sorted(runnable, key=lambda f: f.t)
    dispatched = drained = offered = 0
    drained_after_restart = 0
    plane_overload: Optional[Dict] = None
    try:
        if profile is not None:
            profile.enable()
        t0 = time.monotonic()
        next_poll = t0
        while time.monotonic() - t0 < duration:
            now = time.monotonic() - t0
            while pending and pending[0].t <= now:
                spec = pending.pop(0)
                victims = [v for v in lvrm.vris]
                if spec.vri is not None and spec.vri < len(victims):
                    victim = victims[spec.vri]
                    if spec.kind == "kill":
                        victim.process.kill()
                    elif spec.kind == "hang" and victim.process.pid:
                        os.kill(victim.process.pid, signal.SIGSTOP)
                    lvrm.recorder.note("fault.inject", ts=time.monotonic(),
                                       kind=spec.kind, vri=victim.vri_id)
                    if _TRACE.enabled:
                        # Track "lvrm", not "faults": the signal is sent
                        # from this same driving loop, so it is program-
                        # ordered with the ring ops around it — a
                        # separate track would (correctly but uselessly)
                        # read as concurrent with everything.
                        _TRACE.instant("fault.inject", ts=time.monotonic(),
                                       cat="fault", track="lvrm",
                                       kind=spec.kind, vri=victim.vri_id)
            if lvrm.vris:
                for _ in range(burst):
                    frame = frames[offered % len(frames)]
                    offered += 1
                    if lvrm.dispatch(frame):
                        dispatched += 1
            got = len(lvrm.drain())
            drained += got
            if supervisor.restarts > 0:
                drained_after_restart += got
            if time.monotonic() >= next_poll:
                supervisor.poll()
                next_poll = time.monotonic() + poll_interval
            time.sleep(500e-6)
        # Final settle: let in-flight frames drain.
        settle = time.monotonic() + 1.0
        while time.monotonic() < settle:
            supervisor.poll()
            got = len(lvrm.drain())
            drained += got
            if supervisor.restarts > 0:
                drained_after_restart += got
            time.sleep(1e-3)
        if profile is not None:
            profile.disable()
        plane = getattr(lvrm, "_plane", None)
        if plane is not None and not plane.stopped:
            plane.pump()  # absorb the shards' latest overload telemetry
            plane_overload = plane.overload_state()
        if recorder is not None:
            # Finalize while the monitor is still up (before stop()'s
            # retire events), from the runtime's own counters — the
            # replayer recomputes this snapshot from the trace alone.
            lvrm.flush_trace()  # coalesced ring.push events
            recorder.finalize(_runtime_counters(
                lvrm, supervisor, len(runnable) - len(pending)))
            recorder.stop()
            recorder.save(record_trace)
    finally:
        try:
            if recorder is not None:
                recorder.stop()  # no-op when already detached above
            # A SIGSTOPped straggler would hang the cooperative stop's
            # join; resume it first so teardown stays bounded.
            for vri in lvrm.vris:
                if vri.process.pid and vri.process.is_alive():
                    try:
                        os.kill(vri.process.pid, signal.SIGCONT)
                    except ProcessLookupError:
                        pass
            lvrm.stop()
        except Exception:
            pass
        if profile is not None:
            profile.disable()  # no-op when already stopped above

    profile_files = 0
    if profile is not None:
        # Merge the monitor-side profile with every shard dump (the
        # shards write ``PATH.shardN`` pstats files as they exit, which
        # lvrm.stop() above guarantees has happened).
        import pstats
        stats = pstats.Stats(profile)
        profile_files = 1
        for sid in range(lvrm.dispatch_shards):
            shard_path = f"{profile_out}.shard{sid}"
            if os.path.exists(shard_path):
                stats.add(shard_path)
                profile_files += 1
        stats.dump_stats(profile_out)

    injected = len(runnable) - len(pending)
    from repro.obs.registry import default_registry
    merged_ids = sorted({dict(inst.labels).get("vri_id")
                         for inst in default_registry().find(
                             "vri_frames_total")
                         if "vri_id" in dict(inst.labels)})
    return {
        "backend": "runtime",
        "duration": duration,
        "data_plane": data_plane,
        "wait_strategy": wait_strategy,
        "kernel": lvrm.kernel,
        "dispatch_shards": lvrm.dispatch_shards,
        "offered": offered,
        "dispatched": dispatched,
        "forwarded": drained,
        "forwarded_after_restart": drained_after_restart,
        "supervisor": {
            "failovers": supervisor.failovers,
            "restarts": supervisor.restarts,
            "degraded": supervisor.degraded,
            "states": dict(supervisor.state),
        },
        "faults": {"injected": injected,
                   "skipped_unsupported": len(schedule) - len(runnable)},
        "spans": lvrm.spans.percentiles(),
        "slo": _slo_report(supervisor.watchdog),
        "overload": _overload_report(overload_policy, overload_x,
                                     lvrm.overload,
                                     plane_state=plane_overload),
        "telemetry": {"merged_vri_ids": merged_ids},
        "admin_url": admin_url,
        **({"profile": profile_out, "profile_files": profile_files}
           if profile_out is not None else {}),
        "resumed_ok": (supervisor.restarts == 0
                       or drained_after_restart > 0),
        **({"trace": record_trace,
            "trace_events": len(recorder.events)}
           if recorder is not None else {}),
    }
