"""CPU topology: sockets, cores, and sibling relations.

The paper's gateway has two physical CPUs ("sockets") with four cores
each.  LVRM's core-allocation heuristic prefers *sibling* cores — cores
in the same socket as the core LVRM itself runs on — to minimize
inter-socket communication (thesis §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import TopologyError

__all__ = ["CpuTopology"]


@dataclass(frozen=True)
class CpuTopology:
    """Static description of a multi-socket, multi-core machine.

    Core ids are dense: socket ``s`` owns cores
    ``[s * cores_per_socket, (s+1) * cores_per_socket)``.
    """

    n_sockets: int = 2
    cores_per_socket: int = 4

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise TopologyError(f"need >=1 socket, got {self.n_sockets}")
        if self.cores_per_socket < 1:
            raise TopologyError(
                f"need >=1 core per socket, got {self.cores_per_socket}")

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    def validate_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.n_cores:
            raise TopologyError(
                f"core {core_id} out of range [0, {self.n_cores})")

    def socket_of(self, core_id: int) -> int:
        """Socket index owning ``core_id``."""
        self.validate_core(core_id)
        return core_id // self.cores_per_socket

    def cores_of_socket(self, socket: int) -> List[int]:
        if not 0 <= socket < self.n_sockets:
            raise TopologyError(f"socket {socket} out of range")
        base = socket * self.cores_per_socket
        return list(range(base, base + self.cores_per_socket))

    def siblings(self, core_id: int) -> List[int]:
        """Other cores in the same socket as ``core_id``."""
        return [c for c in self.cores_of_socket(self.socket_of(core_id))
                if c != core_id]

    def non_siblings(self, core_id: int) -> List[int]:
        """Cores in sockets other than ``core_id``'s, in id order."""
        own = self.socket_of(core_id)
        out: List[int] = []
        for s in range(self.n_sockets):
            if s != own:
                out.extend(self.cores_of_socket(s))
        return out

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def allocation_order(self, home_core: int) -> Tuple[int, ...]:
        """Cores ordered by LVRM's preference: siblings of ``home_core``
        first, then remote-socket cores, ``home_core`` itself excluded and
        appended last (used only when every other core is taken)."""
        order = self.siblings(home_core) + self.non_siblings(home_core)
        return tuple(order + [home_core])
