"""Multi-core hardware substrate.

Models the paper's gateway machine: two quad-core Intel Xeon E5530 CPUs
(eight cores total).  The model captures exactly the effects Chapter 4
measures:

* per-core serialization — a core runs one job at a time; co-located
  processes contend (the "same" affinity mode of Experiment 2a);
* context-switch cost when a core changes owner;
* the sibling / non-sibling distinction — IPC between cores on different
  sockets pays a cache-coherence penalty per queue operation;
* the "default" (kernel-scheduled) mode — an amortized cache-affinity
  penalty standing in for the migrations the paper blames for the lower
  throughput of kernel-assigned cores.

All unit costs live in :class:`~repro.hardware.costs.CostModel`, a single
frozen dataclass calibrated against the measured anchors quoted in the
paper's text (see DESIGN.md §5).
"""

from repro.hardware.topology import CpuTopology
from repro.hardware.costs import CostModel, DEFAULT_COSTS
from repro.hardware.machine import Machine, Core
from repro.hardware.affinity import AffinityPolicy, AffinityMode

__all__ = [
    "CpuTopology",
    "CostModel",
    "DEFAULT_COSTS",
    "Machine",
    "Core",
    "AffinityPolicy",
    "AffinityMode",
]
