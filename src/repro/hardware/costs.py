"""The calibrated cost model.

Every per-frame / per-operation cost in the simulation comes from this
one frozen dataclass, so the whole calibration is auditable in a single
place.  Values are chosen to satisfy the measured anchors the paper's
*text* reports (not pixel-read from figures); see DESIGN.md §5:

=========================================  ==========================================
Anchor (paper, Chapter 4)                  Constraint satisfied here
=========================================  ==========================================
gateway input ceiling 448 Kfps             sender hosts: 224 Kfps each (net.testbed)
native kernel forwarding ≈ sender-limited  ``kernel_forward_fixed`` ≈ 1.9 µs
LVRM-only 3.7 Mfps @ 84 B (Exp 1c)         LVRM stage ≈ 230 ns + 0.55 ns/B
LVRM-only ≈ 922 Kfps / 11 Gbps @ 1538 B    same per-byte slope
PF_RING ≈ native, raw-socket −1/3 @ 84 B   ``pfring_rx/tx`` ≈ 0.9 µs vs raw ≈ 1.7 µs
LVRM-only latency ≤ 15 µs (C++)            stage costs + queue hand-offs
Click VR 25–35 µs latency, lower tput      ``click_element_cost`` × pipeline length
control message 5–7 µs no-load (Exp 1e)    control-queue op costs
alloc ≤ 900 µs / dealloc ≤ 700 µs          ``vfork_cost`` / ``kill_cost``
RTT 70–120 µs (Exp 1b)                     host/wire terms in net.link / net.host
hypervisors far worse (Exp 1a/1b)          VMware / QEMU-KVM presets
=========================================  ==========================================

The *shapes* of all figures (crossovers, staircases, saturation, fairness)
emerge from queueing and contention in the simulation; only these unit
costs are calibrated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS"]

_US = 1e-6  # one microsecond, in seconds
_NS = 1e-9  # one nanosecond, in seconds


@dataclass(frozen=True)
class CostModel:
    """Unit costs (seconds unless noted) for the gateway simulation."""

    # -- socket adapter: per-frame capture / transmit cost by backend -------
    #: PF_RING zero-copy poll, receive side.
    pfring_rx: float = 0.90 * _US
    #: PF_RING ``pfring_send()``, transmit side (LVRM >= 1.1).
    pfring_tx: float = 0.88 * _US
    #: Raw BSD socket ``recvfrom()`` non-blocking poll (syscall + copy).
    rawsock_rx: float = 1.70 * _US
    #: Raw socket ``send()``.
    rawsock_tx: float = 1.45 * _US
    #: Extra copy cost per byte through the kernel socket path.
    rawsock_per_byte: float = 0.30 * _NS
    #: Main-memory trace read (Experiment 1c/1d input device).
    memory_rx: float = 0.060 * _US
    #: Per byte streamed from main memory.
    memory_rx_per_byte: float = 0.10 * _NS
    #: Discarding an outgoing frame (Experiment 1c/1d output device).
    discard_tx: float = 0.010 * _US

    # -- LVRM dispatch path ---------------------------------------------------
    #: Source-IP inspection to pick the owning VR.
    classify_cost: float = 0.040 * _US
    #: Frame-based balancing decision, fixed part (RR / random).
    balance_fixed: float = 0.015 * _US
    #: Additional JSQ cost per VRI scanned (reads one load estimate).
    balance_jsq_per_vri: float = 0.008 * _US
    #: Flow-table lookup + timestamp update for flow-based balancing
    #: (hash + ``times()`` syscall the paper blames in Experiment 3c).
    balance_flow_lookup: float = 0.30 * _US

    # -- IPC queues (lock-free SPSC rings in shared memory) -----------------
    #: One enqueue or dequeue on a data queue (same socket).
    ipc_op: float = 0.055 * _US
    #: Per-byte cost of staging the frame payload through the ring.
    ipc_per_byte: float = 0.20 * _NS
    #: Extra cost per queue op when producer/consumer cores sit in
    #: different sockets (cache-line ownership transfer).
    ipc_cross_socket: float = 0.18 * _US
    #: One enqueue or dequeue on a *control* queue (these carry small
    #: events and take the slow-but-simple path).
    ipc_ctrl_op: float = 1.20 * _US
    #: Per-byte cost for control event payloads.
    ipc_ctrl_per_byte: float = 2.0 * _NS
    #: One enqueue or dequeue on a *descriptor* data queue (arena data
    #: plane): a fixed 24-byte slot copy with no per-byte payload term,
    #: so it undercuts ``ipc_op`` and is size-independent.
    ipc_desc_op: float = 0.035 * _US
    #: Arena chunk allocation (free-list pop + refcount store) plus the
    #: matching owner-side free, amortized per frame.
    arena_alloc_cost: float = 0.045 * _US

    # -- sharded dispatch plane (repro.dispatch) ----------------------------
    #: How many dispatcher shards run the classify→admit→balance→stage
    #: pipeline (1 = the paper's single monitor process).
    dispatch_shards: int = 1
    #: Monitor-side cost of the RSS-style splitter per frame when
    #: sharding is on: the 5-tuple hash, the shard bucket append, and
    #: the amortized jumbo-record pack/push onto the ingest ring
    #: (calibrated against BENCH_dispatch.json ``split_hash_steer``).
    dispatch_split_cost: float = 0.075 * _US

    # -- burst kernels (repro.kernels) -------------------------------------------
    #: Per-frame VR service cost multiplier of the vectorized numpy
    #: kernel relative to the scalar reference: whole-burst header
    #: gathers + interval-table LPM amortize the interpreter away
    #: (calibrated against BENCH_kernels.json ``kernel_hop_*``).
    kernel_numpy_factor: float = 0.40
    #: Same for the compiled cffi/ctypes burst loop.
    kernel_cffi_factor: float = 0.25
    #: Fixed per-burst overhead the batched kernels add (ndarray set-up
    #: or the FFI call), amortized per frame at typical burst sizes.
    kernel_batch_fixed: float = 0.004 * _US

    # -- hosted VR processing ---------------------------------------------------
    #: C++ VR: minimal forwarding decision per frame.
    cpp_vr_cost: float = 0.080 * _US
    #: Click VR: cost per element traversed in the configured pipeline.
    click_element_cost: float = 0.60 * _US
    #: Relative std-dev of per-frame service-time jitter (lognormal).
    service_jitter: float = 0.08

    # -- kernel baselines ---------------------------------------------------------
    #: Native Linux IP forwarding, fixed per-frame cost (softirq path).
    kernel_forward_fixed: float = 1.90 * _US
    #: Native forwarding per-byte cost.
    kernel_forward_per_byte: float = 0.10 * _NS

    # -- scheduling / process management ----------------------------------------
    #: Context switch when a core changes the process it is running.
    context_switch: float = 0.70 * _US
    #: Amortized per-frame penalty of letting the kernel place the VRI
    #: ("default" affinity of Experiment 2a): cache-affinity loss from
    #: periodic migrations.
    kernel_sched_penalty: float = 0.45 * _US
    #: ``vfork()`` + queue/shm setup when spawning a VRI.
    vfork_cost: float = 820.0 * _US
    #: ``kill()`` + teardown when destroying a VRI.
    kill_cost: float = 620.0 * _US
    #: VR-monitor bookkeeping per VRI examined during an allocation pass
    #: (load-estimate retrieval + threshold comparison).
    alloc_scan_per_vri: float = 9.0 * _US
    #: Fixed part of one allocation pass.
    alloc_scan_fixed: float = 12.0 * _US

    # -- general-purpose hypervisor baselines -------------------------------------
    #: VMware Server: per-frame bridged-NIC + world-switch overhead.
    vmware_per_frame: float = 6.0 * _US
    #: VMware extra one-way latency (emulation queues).
    vmware_latency: float = 140.0 * _US
    #: QEMU-KVM with the paper's (pathological) emulated-NIC setup.
    qemu_per_frame: float = 25.0 * _US
    #: QEMU-KVM extra one-way latency.
    qemu_latency: float = 420.0 * _US

    # -- host protocol stacks (senders / receivers) -----------------------------
    #: One-way fixed latency through a host's user+kernel stack and NIC.
    host_stack_latency: float = 14.0 * _US
    #: Per-frame CPU cost of generating a frame at a sender (sets the
    #: 224 Kfps per-host ceiling together with the traffic generator).
    sender_per_frame: float = 4.4 * _US

    def replace(self, **kw: float) -> "CostModel":
        """Return a copy with selected fields overridden."""
        return dataclasses.replace(self, **kw)

    def validate(self) -> None:
        """Sanity-check that every cost is finite and non-negative."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not (isinstance(value, (int, float)) and value >= 0.0):
                raise ValueError(f"cost {field.name}={value!r} must be >= 0")

    # Convenience aggregates used by several components -------------------------
    def ipc_data_cost(self, nbytes: int, cross_socket: bool) -> float:
        """Cost of one data-queue operation for an ``nbytes`` frame."""
        cost = self.ipc_op + self.ipc_per_byte * nbytes
        if cross_socket:
            cost += self.ipc_cross_socket
        return cost

    def ipc_ctrl_cost(self, nbytes: int, cross_socket: bool) -> float:
        """Cost of one control-queue operation for an ``nbytes`` event."""
        cost = self.ipc_ctrl_op + self.ipc_ctrl_per_byte * nbytes
        if cross_socket:
            cost += self.ipc_cross_socket
        return cost

    def arena_variant(self) -> "CostModel":
        """The cost model with the zero-copy arena data plane enabled.

        Data-queue operations become descriptor ops: fixed 24-byte cost
        (``ipc_desc_op``) and *no per-byte term*, because the payload no
        longer moves through the ring.  The payload's single staging
        copy into the arena is charged separately at dispatch
        (``arena_alloc_cost`` plus the original per-byte cost, see
        ``Lvrm._capture_one``).  Control queues are untouched.
        """
        return self.replace(ipc_op=self.ipc_desc_op, ipc_per_byte=0.0)

    def kernel_variant(self, kind: str) -> "CostModel":
        """The cost model under a non-scalar burst kernel
        (:mod:`repro.kernels`), priced like :meth:`arena_variant`.

        The kernels batch the *service* work — header parse, LPM,
        checksum rewrite — so the C++ VR's per-frame decision cost
        shrinks by the calibrated factor while gaining the (tiny)
        amortized per-frame share of the batch set-up.  Ring and
        staging costs are untouched: those belong to ``data_plane``.
        ``scalar`` (or ``None``) returns ``self`` unchanged.
        """
        if kind in (None, "scalar"):
            return self
        factors = {"numpy": self.kernel_numpy_factor,
                   "cffi": self.kernel_cffi_factor}
        if kind not in factors:
            raise ValueError(f"unknown kernel kind {kind!r}; "
                             f"expected scalar/numpy/cffi")
        return self.replace(
            cpp_vr_cost=(self.cpp_vr_cost * factors[kind]
                         + self.kernel_batch_fixed))

    def dispatch_variant(self, shards: int) -> "CostModel":
        """The cost model under the sharded dispatch plane
        (:mod:`repro.dispatch`), composing like the two variants above.

        Only the ``dispatch_shards`` knob changes; the charge sites in
        ``Lvrm._capture_one`` read it to split the monitor-side dispatch
        work across shards (serial splitter cost plus ``1/shards`` of
        the pipeline cost), so the DES twin stays bit-reproducible for
        any shard count.  ``shards <= 1`` returns ``self`` unchanged.
        """
        if shards is None or shards <= 1:
            return self
        return self.replace(dispatch_shards=int(shards))


#: The calibration used by every experiment unless explicitly overridden.
DEFAULT_COSTS = CostModel()
DEFAULT_COSTS.validate()
