"""Core-affinity policies for placing VRIs (Experiment 2a).

The paper compares four ways LVRM can pick the core for a new VRI:

* ``SIBLING`` — a free core in LVRM's own socket (the default heuristic);
* ``NON_SIBLING`` — a free core in a different socket;
* ``DEFAULT`` — let the kernel place (and occasionally migrate) the VRI;
* ``SAME`` — the very core LVRM runs on (two processes contend).

Policies return a core id plus the per-frame penalty the placement
implies (cross-socket IPC surcharge, kernel-scheduler cache-affinity
loss).  The penalty plumbing keeps the placement decision and its cost
in one place so the allocator stays oblivious.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Set

from repro.errors import AllocationError
from repro.hardware.costs import CostModel
from repro.hardware.topology import CpuTopology

__all__ = ["AffinityMode", "Placement", "AffinityPolicy"]


class AffinityMode(enum.Enum):
    """The four placement strategies of Experiment 2a."""

    SIBLING = "sibling"
    NON_SIBLING = "non-sibling"
    DEFAULT = "default"
    SAME = "same"
    #: Sibling-first, falling back to non-sibling — LVRM's production
    #: heuristic (thesis §3.2), used by all dynamic-allocation experiments.
    SIBLING_FIRST = "sibling-first"


@dataclass(frozen=True)
class Placement:
    """Outcome of a placement decision."""

    core_id: int
    #: Extra per-frame processing cost implied by the placement (kernel
    #: scheduler cache-affinity loss in DEFAULT mode; zero otherwise —
    #: cross-socket IPC costs are charged at the queue ops themselves).
    per_frame_penalty: float
    #: Whether the VRI shares the core with another process (SAME mode).
    shared_core: bool
    #: True when the kernel, not LVRM, owns the placement (DEFAULT
    #: mode): the VRI migrates, so IPC behaves cross-socket on average
    #: and the producer (LVRM) side pays the cache-migration penalty
    #: too — the effect Experiment 2a blames for "default" trailing
    #: even the non-sibling pinning.
    kernel_managed: bool = False


class AffinityPolicy:
    """Chooses a core for each new VRI given the current occupancy."""

    def __init__(self, topology: CpuTopology, costs: CostModel,
                 lvrm_core: int, mode: AffinityMode = AffinityMode.SIBLING_FIRST):
        topology.validate_core(lvrm_core)
        self.topology = topology
        self.costs = costs
        self.lvrm_core = lvrm_core
        self.mode = mode

    # -- helpers -------------------------------------------------------------
    def _first_free(self, candidates: Sequence[int], occupied: Set[int]) -> Optional[int]:
        for c in candidates:
            if c not in occupied and c != self.lvrm_core:
                return c
        return None

    # -- main entry point -------------------------------------------------------
    def place(self, occupied: Set[int]) -> Placement:
        """Pick a core for a new VRI.

        ``occupied`` is the set of cores already dedicated to VRIs.  The
        LVRM core is never handed out except in SAME mode (or as a last
        resort when every core is taken, which models the over-allocation
        contention of Experiment 2b).
        """
        mode = self.mode
        if mode is AffinityMode.SAME:
            return Placement(self.lvrm_core, 0.0, shared_core=True)

        if mode is AffinityMode.SIBLING:
            core = self._first_free(self.topology.siblings(self.lvrm_core), occupied)
            if core is None:
                raise AllocationError("no free sibling core available")
            return Placement(core, 0.0, shared_core=False)

        if mode is AffinityMode.NON_SIBLING:
            core = self._first_free(self.topology.non_siblings(self.lvrm_core), occupied)
            if core is None:
                raise AllocationError("no free non-sibling core available")
            return Placement(core, 0.0, shared_core=False)

        if mode is AffinityMode.DEFAULT:
            # The kernel picks an arbitrary free core and keeps migrating
            # the process; we charge the amortized cache-affinity penalty.
            order = self.topology.allocation_order(self.lvrm_core)
            core = self._first_free(order, occupied)
            if core is None:
                core = self.lvrm_core
            return Placement(core, self.costs.kernel_sched_penalty,
                             shared_core=(core == self.lvrm_core),
                             kernel_managed=True)

        if mode is AffinityMode.SIBLING_FIRST:
            order = self.topology.allocation_order(self.lvrm_core)
            core = self._first_free(order, occupied)
            if core is not None:
                return Placement(core, 0.0, shared_core=False)
            # Every non-LVRM core is taken: double up on the least-loaded
            # occupied core (Experiment 2b's past-capacity regime).  We
            # double up on the lowest-id occupied core deterministically.
            fallback = min(occupied) if occupied else self.lvrm_core
            return Placement(fallback, 0.0, shared_core=True)

        raise AllocationError(f"unhandled affinity mode {mode!r}")
