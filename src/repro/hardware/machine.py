"""The gateway machine: cores as serializing executors.

A :class:`Core` runs one job at a time.  Simulation processes "compute"
by yielding from :meth:`Core.execute`, which serializes co-located
processes (FIFO) and charges a context-switch cost whenever the core's
current owner changes — this is what collapses throughput in the "same"
affinity mode of Experiment 2a.

Per-core busy-time accounting feeds the CPU-usage breakdown of
Experiment 1a (Figure 4.3): callers tag each execution with a CPU-time
class (``us``/``sy``/``si``), and :meth:`Machine.cpu_usage` reports the
per-class utilization over a window.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import TopologyError
from repro.hardware.costs import CostModel, DEFAULT_COSTS
from repro.hardware.topology import CpuTopology
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["Core", "Machine", "CPU_TIME_CLASSES"]

#: CPU-time classes mirroring `top`: user space, system (kernel on behalf
#: of a process), and software interrupts.
CPU_TIME_CLASSES = ("us", "sy", "si")


class Core:
    """One CPU core: a FIFO-serializing execution resource."""

    def __init__(self, sim: Simulator, core_id: int, socket: int,
                 costs: CostModel):
        self.sim = sim
        self.core_id = core_id
        self.socket = socket
        self.costs = costs
        self._resource = Resource(sim, capacity=1)
        self._last_owner: Optional[object] = None
        #: Busy seconds per CPU-time class since construction.
        self.busy: Dict[str, float] = {c: 0.0 for c in CPU_TIME_CLASSES}
        #: Number of context switches charged.
        self.context_switches = 0

    @property
    def queue_depth(self) -> int:
        """Number of jobs currently holding or waiting for this core."""
        return self._resource.count + len(self._resource._waiters)

    def execute(self, duration: float, owner: object = None,
                time_class: str = "us") -> Generator:
        """Occupy this core for ``duration`` seconds (plus contention).

        ``owner`` identifies the logical process for context-switch
        accounting; ``time_class`` tags the busy time (``us``/``sy``/``si``).
        Usage: ``yield from core.execute(cost, owner=self)``.
        """
        if duration < 0:
            raise ValueError(f"negative execution duration: {duration}")
        if time_class not in CPU_TIME_CLASSES:
            raise ValueError(f"unknown CPU time class {time_class!r}")
        token = self._resource.acquire_nowait()
        if token is not None:
            # Uncontended fast path: one timer event instead of three.
            try:
                total = duration
                if owner is not None and self._last_owner is not None \
                        and owner is not self._last_owner:
                    total += self.costs.context_switch
                    self.context_switches += 1
                if owner is not None:
                    self._last_owner = owner
                if total > 0.0:
                    yield self.sim.sleep(total)
                self.busy[time_class] += total
            finally:
                self._resource.release_nowait(token)
            return
        req = self._resource.request()
        yield req
        try:
            total = duration
            if owner is not None and self._last_owner is not None \
                    and owner is not self._last_owner:
                total += self.costs.context_switch
                self.context_switches += 1
            if owner is not None:
                self._last_owner = owner
            if total > 0.0:
                yield self.sim.sleep(total)
            self.busy[time_class] += total
        finally:
            req.release()

    def charge(self, duration: float, time_class: str = "us") -> None:
        """Account busy time without simulating occupancy.

        Used by closed-form fast paths (e.g. the kernel-forwarding
        baseline under saturation) where the queueing is computed
        analytically but utilization must still be reported.
        """
        if time_class not in CPU_TIME_CLASSES:
            raise ValueError(f"unknown CPU time class {time_class!r}")
        self.busy[time_class] += duration

    def utilization(self, window: float) -> Dict[str, float]:
        """Busy fraction per class over a ``window`` of seconds."""
        if window <= 0:
            raise ValueError("window must be positive")
        return {c: min(1.0, b / window) for c, b in self.busy.items()}


class Machine:
    """A multi-core machine (the Figure 4.1 gateway by default)."""

    def __init__(self, sim: Simulator, topology: Optional[CpuTopology] = None,
                 costs: CostModel = DEFAULT_COSTS):
        self.sim = sim
        self.topology = topology or CpuTopology()
        self.costs = costs
        self.cores = [
            Core(sim, cid, self.topology.socket_of(cid), costs)
            for cid in range(self.topology.n_cores)
        ]

    def core(self, core_id: int) -> Core:
        self.topology.validate_core(core_id)
        return self.cores[core_id]

    def cross_socket(self, core_a: int, core_b: int) -> bool:
        """True when the two cores live in different sockets."""
        return not self.topology.same_socket(core_a, core_b)

    def cpu_usage(self, window: float) -> Dict[int, Dict[str, float]]:
        """Per-core, per-class utilization over ``window`` seconds."""
        return {c.core_id: c.utilization(window) for c in self.cores}

    def busiest_core(self) -> Core:
        return max(self.cores, key=lambda c: sum(c.busy.values()))

    def free_cores(self, occupied: set) -> list:
        """Core ids not present in ``occupied``."""
        bad = [c for c in occupied if not 0 <= c < self.topology.n_cores]
        if bad:
            raise TopologyError(f"occupied set has invalid cores: {bad}")
        return [c.core_id for c in self.cores if c.core_id not in occupied]
