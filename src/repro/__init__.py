"""repro — a reproduction of "An Extensible Design of a Load-Aware
Virtual Router Monitor in User Space" (Choi & Lee, SRMPDS/ICPP 2011).

The package provides:

* :mod:`repro.core` — LVRM itself: the hierarchical monitor, core
  allocation, load balancing, load estimation, IPC wiring, and the two
  hosted VR types (C++-style forwarder and a mini-Click);
* the substrates it needs — a from-scratch DES engine (:mod:`repro.sim`),
  a multi-core hardware model (:mod:`repro.hardware`), a network testbed
  (:mod:`repro.net`), routing (:mod:`repro.routing`), real and simulated
  lock-free IPC queues (:mod:`repro.ipc`), traffic models including TCP
  Reno and FTP (:mod:`repro.traffic`), and the paper's baselines
  (:mod:`repro.baselines`);
* :mod:`repro.runtime` — a real-OS-process LVRM backend on shared-memory
  rings with CPU pinning;
* :mod:`repro.experiments` — one function per figure of the paper's
  Chapter 4, plus the ``lvrm-exp`` CLI.

Quick start::

    from repro import quickstart
    result = quickstart()          # forward a small trace through LVRM
    print(result.forwarded)
"""

from repro.core import (Lvrm, LvrmConfig, VrSpec, VrType,
                        FixedAllocation, DynamicFixedThresholds,
                        DynamicDynamicThresholds)
from repro.hardware import CostModel, DEFAULT_COSTS, Machine, CpuTopology
from repro.sim import Simulator
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Lvrm",
    "LvrmConfig",
    "VrSpec",
    "VrType",
    "FixedAllocation",
    "DynamicFixedThresholds",
    "DynamicDynamicThresholds",
    "CostModel",
    "DEFAULT_COSTS",
    "Machine",
    "CpuTopology",
    "Simulator",
    "ReproError",
    "quickstart",
    "__version__",
]


def quickstart(n_frames: int = 10_000, frame_size: int = 84):
    """Run the smallest meaningful LVRM scenario and return its stats.

    Hosts one C++ VR on a two-socket machine, streams ``n_frames``
    minimum-size frames from a main-memory trace through the monitor
    (the Experiment 1c configuration), and returns the
    :class:`~repro.core.lvrm.LvrmStats`.
    """
    from repro.core.socket_adapter import make_socket_adapter
    from repro.routing.prefix import Prefix
    from repro.traffic.trace import synthetic_trace

    sim = Simulator()
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(n_frames, frame_size))
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                allocator=FixedAllocation(1))
    lvrm.start()
    sim.run(until=120.0)
    return lvrm.stats
