"""The real-process LVRM monitor.

Owns the shared-memory segments, spawns VRI worker processes, balances
frames across them, drains their output, relays control events, and
tears everything down — the runtime twin of the DES
:class:`~repro.core.lvrm.Lvrm`, restricted to one VR (enough to prove
the mechanism; the DES handles the multi-VR experiments).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import struct
import time
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.vr import DEFAULT_MAP_LINES
from repro.dispatch import resolve_dispatch_shards
from repro.dispatch.stage import DispatchPipeline
from repro.errors import (ArenaError, ConfigError, KernelError,
                          RuntimeBackendError)
from repro.kernels import resolve_kernel_kind
from repro.ipc.arena import FrameArena, arena_bytes_needed

from repro.ipc.desc import DESC_SLOT
from repro.ipc.factory import RING_KINDS, make_ring, ring_bytes_for
from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT,
                                KIND_SERVICE_RATE, KIND_STATS, KIND_STOP,
                                StatsAssembler, decode_event, encode_event)
from repro.ipc.ring import SpscRing
from repro.ipc.shm import SharedSegment
from repro.ipc.wait import WAIT_STRATEGIES, AimdBatcher, WaitPolicy
from repro.obs.admin import AdminServer, AdminState
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import default_registry
from repro.obs.spans import SpanRecorder
from repro.obs.trace import TRACER as _TRACE
from repro.runtime.worker import WorkerArgs, vri_worker_main

__all__ = ["RuntimeLvrm", "RuntimeVriHandle"]

_DATA_SLOT = 2048   # fits a max-size Ethernet frame + the iface header
_CTRL_SLOT = 512

_RING_TAGS = ("data_in", "data_out", "ctrl_in", "ctrl_out")
_rt_ids = itertools.count(1)


def _ring_fill(ring, capacity: int) -> float:
    """Pull-gauge helper: live fill ratio, 0.0 once the ring closed
    (a scrape can outlive the worker the gauge was bound to)."""
    try:
        return len(ring) / capacity if capacity else 0.0
    except TypeError:
        return 0.0


@dataclass
class RuntimeVriHandle:
    """LVRM-side view of one live worker."""

    vri_id: int
    core_id: Optional[int]
    process: mp.process.BaseProcess
    segments: List[SharedSegment]
    data_in: SpscRing    # LVRM pushes here (worker's incoming)
    data_out: SpscRing   # LVRM pops here (worker's outgoing)
    ctrl_in: SpscRing
    ctrl_out: SpscRing
    dispatched: int = 0
    drained: int = 0
    reported_rate: float = 0.0
    #: ``time.monotonic()`` of the last heartbeat absorbed from this
    #: worker (seeded with the spawn time so a fresh worker is never
    #: instantly declared hung).  Meaningful only when the monitor runs
    #: with ``heartbeat_interval > 0``.
    last_heartbeat: float = 0.0

    def rings(self) -> Tuple[SpscRing, ...]:
        return (self.data_in, self.data_out, self.ctrl_in, self.ctrl_out)


class RuntimeLvrm(DispatchPipeline):
    """Spawn, feed, drain, and stop real VRI workers.

    The RX→classify→admit→steer pipeline itself lives in
    :class:`~repro.dispatch.stage.DispatchPipeline`, shared verbatim
    with the dispatcher shards; with ``dispatch_shards > 1`` this class
    delegates the data plane to a :class:`~repro.dispatch.plane.\
DispatchPlane` and keeps only the worker control plane.
    """

    def __init__(self, n_vris: int = 1, ring_capacity: int = 1024,
                 map_lines: Tuple[str, ...] = DEFAULT_MAP_LINES,
                 cores: Optional[List[int]] = None,
                 balancer: str = "rr",
                 worker_lifetime: float = 60.0,
                 ring_impl: str = "lamport",
                 report_service_rate: bool = False,
                 heartbeat_interval: float = 0.0,
                 stats_interval: float = 0.0,
                 span_sample_every: int = 0,
                 data_plane: str = "copy",
                 wait_strategy: str = "sleep",
                 arena_chunks_per_class: Optional[int] = None,
                 kernel: Optional[str] = None,
                 kernel_rewrite: bool = False,
                 overload_policy: str = "none",
                 overload_opts: Optional[Dict] = None,
                 dispatch_shards: Optional[int] = None,
                 dispatch_egress_counts: bool = False,
                 dispatch_profile_base: Optional[str] = None):
        if n_vris < 1:
            raise RuntimeBackendError("need at least one VRI")
        if balancer not in ("rr", "jsq"):
            raise RuntimeBackendError(f"unknown runtime balancer {balancer!r}")
        if ring_impl not in RING_KINDS:
            raise RuntimeBackendError(
                f"unknown ring implementation {ring_impl!r}")
        if heartbeat_interval < 0:
            raise RuntimeBackendError("heartbeat_interval cannot be negative")
        if stats_interval < 0:
            raise RuntimeBackendError("stats_interval cannot be negative")
        if span_sample_every < 0:
            raise RuntimeBackendError("span_sample_every cannot be negative")
        if data_plane not in ("copy", "arena"):
            raise RuntimeBackendError(
                f"data_plane must be 'copy' or 'arena', got {data_plane!r}")
        if wait_strategy not in WAIT_STRATEGIES:
            raise RuntimeBackendError(
                f"wait_strategy must be one of {WAIT_STRATEGIES}, "
                f"got {wait_strategy!r}")
        try:
            dispatch_shards = resolve_dispatch_shards(dispatch_shards)
        except ValueError as exc:
            raise RuntimeBackendError(str(exc)) from exc
        shards_requested = dispatch_shards
        if dispatch_shards > n_vris:
            # VRIs are partitioned (vri_id - 1) % shards, so a shard
            # beyond n_vris would own zero VRIs and black-hole every
            # flow the splitter steers to it.  Clamp rather than raise:
            # REPRO_DISPATCH_SHARDS is a fleet-wide knob (CI parity
            # sweeps set it globally) and small topologies should
            # degrade to fewer shards, not refuse to start.
            dispatch_shards = n_vris
        if dispatch_shards > 1 and ring_impl != "lamport":
            raise RuntimeBackendError(
                "dispatch_shards > 1 requires ring_impl='lamport': only "
                "its fully shared indices let a restarted shard "
                "re-attach its rings mid-stream")
        try:
            kernel = resolve_kernel_kind(kernel)
        except KernelError as exc:
            raise RuntimeBackendError(str(exc)) from exc
        self.balancer = balancer
        self.ring_impl = ring_impl
        #: Which burst kernel the workers run (``scalar``/``numpy``/
        #: ``cffi``); resolved here so forked children inherit one
        #: compiled ringops library instead of racing to build it.
        self.kernel = kernel
        #: Arm the kernels' RFC 1812 forwarding rewrite (TTL decrement +
        #: RFC 1624 checksum update, TTL-expiry drops) on both data
        #: planes: the arena plane rewrites headers in the shared
        #: buffer, the copy plane rewrites into private frame copies
        #: (``route_frames_rewrite``) since ring records are borrowed
        #: views.  Off by default: the echo contract — drained frames
        #: byte-identical to dispatched ones — is what the test suite
        #: and the DES twin assume.
        self.kernel_rewrite = bool(kernel_rewrite)
        #: ``copy`` stages frames through ring slots (legacy); ``arena``
        #: carries 24-byte descriptors into the shared frame arena.
        self.data_plane = data_plane
        self.wait_strategy = wait_strategy
        self.report_service_rate = report_service_rate
        #: Workers send a KIND_HEARTBEAT control event this often
        #: (0 = disabled); :meth:`pump_control` absorbs them into each
        #: handle's ``last_heartbeat``, the supervisor's liveness input.
        self.heartbeat_interval = heartbeat_interval
        #: Workers ship chunked registry snapshots (KIND_STATS) this
        #: often (0 = disabled); :meth:`pump_control` reassembles and
        #: merges them into the monitor's registry labeled by vri_id.
        self.stats_interval = stats_interval
        self.respawned = 0
        #: Distinguishes metrics of multiple monitors in one process.
        self.obs_id = str(next(_rt_ids))
        #: Always-on lifecycle post-mortem buffer (spawn / retire / kill
        #: events only — never per-frame, so the data plane pays nothing).
        self.recorder = FlightRecorder(256)
        if kernel == "cffi":
            # Warm the compiled backend before forking so every worker
            # inherits one loaded library (or one degrade decision)
            # instead of racing the compiler per child.
            from repro.kernels.ringops import ringops_unavailable_reason
            reason = ringops_unavailable_reason()
            if reason is not None:
                self.recorder.note("monitor.kernel_degraded",
                                   ts=time.monotonic(), requested="cffi",
                                   substitute="numpy", reason=reason)
        if dispatch_shards != shards_requested:
            self.recorder.note("monitor.shards_clamped",
                               ts=time.monotonic(),
                               requested=shards_requested,
                               effective=dispatch_shards,
                               n_vris=n_vris)
        #: How many dispatcher-shard processes run the pipeline (1 =
        #: classic inline dispatch; resolved from REPRO_DISPATCH_SHARDS
        #: when the argument is None, clamped to ``n_vris`` so no shard
        #: owns an empty VRI subset).
        self.dispatch_shards = dispatch_shards
        self._plane = None
        if dispatch_shards > 1 and span_sample_every:
            # Probe spans need the dispatcher and the drain in one
            # process to stamp both ends; with dispatch sharded the
            # monitor touches neither, so sampling is forced off rather
            # than silently recording nothing.
            self.recorder.note("monitor.spans_disabled",
                               ts=time.monotonic(),
                               reason="dispatch_shards",
                               shards=dispatch_shards)
            span_sample_every = 0
        #: Frame-latency spans, wall-clock, 1-in-N sampled via ring-record
        #: probes (0 = off: dispatch pays one compare, drain one slice).
        self.spans = SpanRecorder(
            default_registry(), sample_every=span_sample_every,
            clock=time.monotonic, backend="runtime",
            labels={"rt": self.obs_id})
        self._stats_assembler = StatsAssembler()
        #: Lost/out-of-order sequence detection, one counter family with
        #: a ``plane`` label: ``ctrl`` (control-event seq stamps),
        #: ``stats`` (telemetry snapshot generations), ``spans`` (probe
        #: records whose stamp block failed to decode).  Counted, never
        #: silently skipped.
        registry = default_registry()
        self._c_seq_gap_ctrl = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="ctrl")
        self._c_seq_gap_stats = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="stats")
        self._c_seq_gap_spans = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="spans")
        self._stats_assembler.gap_hook = self._c_seq_gap_stats.inc
        # vri_id -> last control seq stamp absorbed (reset on respawn:
        # a fresh worker restarts its stamp counter at 1).
        self._ctrl_last_seq: Dict[int, int] = {}
        # Monitor-side control stamping, one lane per destination.
        self._ctrl_send_seq: Dict[int, int] = {}
        #: Arena chunks freed by :meth:`_reclaim_stranded` at failovers
        #: (summed into replay summaries; 0 on the copy plane).
        self.stranded_reclaimed = 0
        # Record mode: scalar dispatches coalesce their ring.push trace
        # events here (vri_id -> records) instead of paying a Tracer
        # emit per frame; flushed by :meth:`flush_trace` before any
        # event whose replay semantics observe ring occupancy.
        self._push_pending: Dict[int, int] = {}
        self._c_dispatched = default_registry().counter(
            "lvrm_dispatched_total",
            "frames the monitor balanced onto a worker ring",
            rt=self.obs_id)
        self._c_merged = default_registry().counter(
            "telemetry_snapshots_merged_total",
            "worker registry snapshots merged into the cluster view",
            rt=self.obs_id)
        #: Admission stage fronting dispatch (None for policy "none";
        #: see repro.overload and docs/OVERLOAD.md).  Shares the DES
        #: controller implementation — same classifier, same AIMD, same
        #: deterministic stride sampler — over real ring occupancy.
        try:
            from repro.overload import build_controller
            controller = build_controller(
                overload_policy, overload_opts, default_registry(),
                scope_labels={"rt": self.obs_id})
            # Sharded mode moves admission inside the shards (each runs
            # its own AIMD controller, coupled through the shared
            # verdict): a monitor-side controller would double-shed.
            # Building it anyway validates the spec before any process
            # spawns; it is simply not retained.
            self.overload = controller if dispatch_shards == 1 else None
        except ConfigError as exc:
            raise RuntimeBackendError(str(exc)) from exc
        #: Set by an attached Supervisor; /healthz reads its slot states.
        self.supervisor = None
        self._admin: Optional[AdminServer] = None
        #: Per-worker summary captured at retirement, while the rings are
        #: still attached: dispatch/drain counts and occupancy HWMs.
        self.teardown_stats: List[Dict[str, object]] = []
        self.map_lines = tuple(map_lines)
        self.ring_capacity = ring_capacity
        self.worker_lifetime = worker_lifetime
        #: Zero-copy plane state: one shared arena segment owned here,
        #: workers attach by name.  Reclaim rings are indexed by vri_id
        #: (each worker frees through its own SPSC ring), with slack so
        #: the supervisor can add replacement workers.
        self.arena: Optional[FrameArena] = None
        self._arena_segment: Optional[SharedSegment] = None
        self._arena_prod = None
        if data_plane == "arena":
            # Worst case every data slot of every worker holds a live
            # frame of one size class, plus bursts in flight.
            cpc = (arena_chunks_per_class if arena_chunks_per_class
                   else 2 * ring_capacity * n_vris + 512)
            self._arena_n_reclaim = n_vris + 9
            self._arena_segment = SharedSegment.create(arena_bytes_needed(
                chunks_per_class=cpc, n_reclaim=self._arena_n_reclaim))
            self.arena = FrameArena(self._arena_segment.buf,
                                    chunks_per_class=cpc,
                                    n_reclaim=self._arena_n_reclaim)
            # Sharded mode: each shard owns a disjoint producer over
            # its chunk partition; the monitor stages nothing itself.
            self._arena_prod = (self.arena.producer()
                                if dispatch_shards == 1 else None)
            registry = default_registry()
            registry.gauge(
                "arena_inuse_bytes",
                "bytes of live frame chunks in the shared arena",
                rt=self.obs_id).set_fn(self.arena.inuse_bytes)
            self._c_arena_alloc = registry.counter(
                "arena_alloc_total", "arena chunk allocations served",
                rt=self.obs_id)
            self._c_arena_exhausted = registry.counter(
                "arena_exhausted_total",
                "dispatch attempts refused because the arena ran dry",
                rt=self.obs_id)
        self._h_batch = default_registry().histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=self.obs_id, side="dispatch")
        self._h_batch_drain = default_registry().histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=self.obs_id, side="drain")
        self._c_wait_sleeps = default_registry().counter(
            "wait_sleeps_total",
            "idle sleeps taken by the monitor's drain wait policy",
            rt=self.obs_id)
        #: Drain-side adaptive burst: bounds how many records one ring
        #: transaction moves, growing under load so the shared-index
        #: synchronization amortizes, decaying when idle.  The ceiling
        #: scales with ring depth (256 at the default 1024) so deep
        #: rings keep amortizing instead of capping at 256.
        self._drain_batcher = AimdBatcher(
            hi=max(256, min(1024, ring_capacity // 8)))
        self._wait = WaitPolicy(wait_strategy)
        self._wait_sleeps_seen = 0
        # fork avoids re-importing __main__ (which breaks REPL/stdin use)
        # and is safe here: the parent holds no threads or locks the
        # workers could inherit mid-flight.
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = mp.get_context("spawn")
        self._rr = 0
        self.vris: List[RuntimeVriHandle] = []
        available = sorted(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else [None]
        try:
            for i in range(n_vris):
                core = (cores[i] if cores is not None and i < len(cores)
                        else available[i % len(available)])
                self.vris.append(self._spawn(i + 1, core))
            if dispatch_shards > 1:
                from repro.dispatch.plane import DispatchPlane
                try:
                    self._plane = DispatchPlane(
                        self, dispatch_shards,
                        overload_policy=overload_policy,
                        overload_opts=overload_opts,
                        egress_counts=dispatch_egress_counts,
                        profile_base=dispatch_profile_base)
                except ConfigError as exc:
                    raise RuntimeBackendError(str(exc)) from exc
        except BaseException:
            # A later spawn failed: without this, the earlier workers'
            # segments (and the arena segment) would outlive the
            # constructor in /dev/shm (the caller never gets a handle
            # to stop()).
            if self._plane is not None:
                self._plane._teardown(kill=True)
                self._plane = None
            for vri in self.vris:
                if vri.process.is_alive():
                    vri.process.kill()
                    vri.process.join(1.0)
                self._release(vri)
            self.vris = []
            self._release_arena()
            raise

    # -- lifecycle ------------------------------------------------------------------
    def _make_ring(self, capacity: int, slot: int):
        segment = SharedSegment.create(
            ring_bytes_for(self.ring_impl, capacity, slot))
        return segment, make_ring(self.ring_impl, segment.buf, capacity, slot)

    def _spawn(self, vri_id: int, core_id: Optional[int]) -> RuntimeVriHandle:
        segs, rings = [], []
        arena_mode = self.data_plane == "arena"
        # Descriptor rings carry fixed 24-byte slots; the payload lives
        # in the arena, so the 2 KiB frame slot disappears.
        data_slot = DESC_SLOT if arena_mode else _DATA_SLOT
        try:
            for slot in (data_slot, data_slot, _CTRL_SLOT, _CTRL_SLOT):
                segment, ring = self._make_ring(self.ring_capacity, slot)
                segs.append(segment)
                rings.append(ring)
            args = WorkerArgs(
                vri_id=vri_id, core_id=core_id,
                data_in=segs[0].name, data_out=segs[1].name,
                ctrl_in=segs[2].name, ctrl_out=segs[3].name,
                map_lines=self.map_lines, max_lifetime=self.worker_lifetime,
                ring_impl=self.ring_impl,
                report_service_rate=self.report_service_rate,
                heartbeat_interval=self.heartbeat_interval,
                stats_interval=self.stats_interval,
                arena=(self._arena_segment.name if arena_mode else None),
                arena_reclaim=(vri_id if arena_mode else 0),
                wait_strategy=self.wait_strategy,
                kernel=self.kernel,
                kernel_rewrite=self.kernel_rewrite,
                probe_frames=bool(self.spans.sample_every))
            process = self._ctx.Process(target=vri_worker_main, args=(args,),
                                        daemon=True)
            process.start()
        except BaseException:
            # The worker never came up (fork failure, ring allocation
            # error): this side owns the segments, so unlink them now —
            # no child will, and the handle is never returned to anyone
            # who could.
            for ring in rings:
                ring.close()
            for segment in segs:
                segment.close()
            raise
        registry = default_registry()
        for ring, tag in zip(rings, _RING_TAGS):
            # Pull-mode gauge over the ring's bare hwm attribute: the
            # data plane never touches the registry.  A respawn rebinds
            # the same gauge to the replacement ring.
            registry.gauge(
                "ring_occupancy_hwm",
                "highest occupancy a runtime shm ring reached (LVRM side)",
                rt=self.obs_id, vri=str(vri_id), ring=tag,
            ).set_fn(lambda r=ring: r.hwm)
        # Per-VRI *live* fill (not just the max across workers): the
        # shard-aware shedding signal — each shard's AIMD controller
        # reads only its own VRIs — and the /overload occupancy map.
        registry.gauge(
            "ring_occupancy_ratio",
            "current data-ring fill of one worker, normalized to capacity",
            rt=self.obs_id, vri=str(vri_id),
        ).set_fn(lambda r=rings[0], c=self.ring_capacity: _ring_fill(r, c))
        self.recorder.note("worker.spawn", ts=time.monotonic(),
                           vri=vri_id, core=core_id, pid=process.pid)
        if _TRACE.enabled:
            _TRACE.instant("worker.spawn", ts=time.monotonic(),
                           cat="runtime", track="lvrm", vri=vri_id,
                           pid=process.pid)
        return RuntimeVriHandle(vri_id, core_id, process, segs,
                                data_in=rings[0], data_out=rings[1],
                                ctrl_in=rings[2], ctrl_out=rings[3],
                                last_heartbeat=time.monotonic())

    def _retire(self, vri: RuntimeVriHandle, reason: str) -> None:
        """Capture final ring stats, then release rings and segments.

        Runs while the rings are still attached: a last
        ``probe_occupancy()`` folds any stranded records into the HWM
        (LVRM is the consumer of the ``*_out`` rings, so their
        producer-side exact HWM lives in the worker process — the probe
        is the best view this side has).
        """
        if self._plane is not None and not self._plane.stopped:
            # The owning shard is the retiring worker's data-ring
            # producer/consumer: it drains the residue and frees the
            # arena chunks when the detach event lands.  This side only
            # counts the stranding below.
            self._plane.detach_vri(vri.vri_id)
        hwm: Dict[str, int] = {}
        for ring, tag in zip(vri.rings(), _RING_TAGS):
            ring.probe_occupancy()
            hwm[tag] = ring.hwm
        if reason != "stop":
            # Failure path: whatever still sits in the data rings died
            # with the worker.  Counting it on the registry is what lets
            # the SLO watchdog's drop_rate rule see a kill as a breach
            # (same family the DES failover path uses).
            stranded = len(vri.data_in) + len(vri.data_out)
            if stranded:
                default_registry().counter(
                    "vri_dropped_fault_total",
                    "frames stranded in a failed worker's rings at "
                    "failover", rt=self.obs_id,
                    vri=str(vri.vri_id)).inc(stranded)
        if self.arena is not None:
            self._reclaim_stranded(vri)
        # A replacement worker restarts its control stamps at 1.
        self._ctrl_last_seq.pop(vri.vri_id, None)
        self.teardown_stats.append({
            "vri_id": vri.vri_id, "reason": reason,
            "dispatched": vri.dispatched, "drained": vri.drained,
            "ring_hwm": hwm})
        self.recorder.note("worker.retire", ts=time.monotonic(),
                           vri=vri.vri_id, reason=reason,
                           dispatched=vri.dispatched, drained=vri.drained,
                           **{f"hwm_{k}": v for k, v in hwm.items()})
        if _TRACE.enabled:
            _TRACE.instant("worker.retire", ts=time.monotonic(),
                           cat="runtime", track="lvrm", vri=vri.vri_id,
                           reason=reason, **{f"hwm_{k}": v
                                             for k, v in hwm.items()})
        self._release(vri)

    def _reclaim_stranded(self, vri: RuntimeVriHandle) -> None:
        """Arena mode: free the chunks of descriptors stranded in a
        retiring worker's data rings, so failovers do not bleed arena
        capacity.

        ``data_out`` is always drainable (this side is its consumer).
        ``data_in``'s consumer cursor lives in the dead worker for the
        flag/batched ring kinds, so only the Lamport ring — whose
        indices are fully shared — can be drained from here; for the
        others the stranded input chunks are leaked until teardown
        (bounded by ring capacity per failover).
        """
        if self._arena_prod is None:
            # Sharded dispatch: the owning shard reclaims through its
            # detach path while the plane runs; once the plane has
            # stopped the whole arena is about to be released, so
            # there is nothing left worth salvaging here.
            return
        free = self._arena_prod.free_local
        freed = 0
        try:
            for desc in vri.data_out.try_pop_desc_many():
                free(desc[0])
                freed += 1
            if self.ring_impl == "lamport":
                for desc in vri.data_in.try_pop_desc_many():
                    free(desc[0])
                    freed += 1
        except ArenaError:
            # A torn descriptor (worker died mid-publish on a non-atomic
            # path) must not take the monitor down with it.
            pass
        if freed:
            self.stranded_reclaimed += freed
            if _TRACE.enabled:
                self.flush_trace()
                _TRACE.instant("arena.reclaim", ts=time.monotonic(),
                               cat="replay", track="lvrm",
                               vri=vri.vri_id, n=freed)
        # Chunks freed by workers through their reclaim rings come home
        # here too, so a retired worker leaves no pending frees behind.
        self._drain_reclaim()

    def _drain_reclaim(self) -> None:
        """Fold worker-freed chunks back into the owner's free lists."""
        if self._arena_prod is not None:
            self._arena_prod._refill()

    def _release_arena(self) -> None:
        if self.arena is not None:
            self.arena.close()
            self.arena = None
            self._arena_prod = None
        if self._arena_segment is not None:
            self._arena_segment.close()
            self._arena_segment = None

    @staticmethod
    def _release(vri: RuntimeVriHandle) -> None:
        """Close rings and unlink this side's (owned) shm segments."""
        for ring in vri.rings():
            ring.close()
        for segment in vri.segments:
            segment.close()

    def stop(self, timeout: float = 5.0) -> None:
        """Cooperative stop, escalating to ``kill()`` like the thesis."""
        if self._plane is not None:
            # Shards quiesce first: they are the live producers and
            # consumers of the worker data rings, so stopping them
            # before the workers is what makes the workers' own
            # cooperative drain (and this side's reclaim) race-free.
            self._plane.stop(timeout)
        for vri in self.vris:
            vri.ctrl_in.try_push(encode_event(
                ControlEvent(KIND_STOP, 0, vri.vri_id)))
            self._flush(vri.ctrl_in)
        deadline = time.monotonic() + timeout
        for vri in self.vris:
            vri.process.join(max(0.0, deadline - time.monotonic()))
            if vri.process.is_alive():
                vri.process.kill()
                vri.process.join(1.0)
                self.recorder.note("worker.kill", ts=time.monotonic(),
                                   vri=vri.vri_id)
        for vri in self.vris:
            self._retire(vri, "stop")
        self.vris = []
        self._release_arena()
        self.stop_admin()

    def __enter__(self) -> "RuntimeLvrm":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- health ------------------------------------------------------------------------
    def dead_workers(self) -> List[RuntimeVriHandle]:
        """Workers whose process has exited (crash or lifetime expiry)."""
        return [v for v in self.vris if not v.process.is_alive()]

    def respawn_dead(self) -> int:
        """Replace dead workers in place: fresh process, fresh rings.

        The thesis' monitor owns the instances; a crashed VRI is just a
        destroy-then-create.  Frames stranded in a dead worker's rings
        are lost, exactly like the DES `destroy_vri` drain.
        """
        replaced = 0
        for idx, vri in enumerate(list(self.vris)):
            if vri.process.is_alive():
                continue
            vri.process.join(0.1)
            self._retire(vri, "respawn")
            handle = self._spawn(vri.vri_id, vri.core_id)
            self.vris[idx] = handle
            if self._plane is not None and not self._plane.stopped:
                self._plane.attach_vri(handle.vri_id,
                                       handle.segments[0].name,
                                       handle.segments[1].name)
            replaced += 1
        self.respawned += replaced
        return replaced

    def remove_worker(self, vri: RuntimeVriHandle,
                      reason: str = "failover") -> None:
        """Take one worker out of service: kill if needed, retire, drop.

        The supervisor's failover primitive — unlike :meth:`respawn_dead`
        the slot is *not* refilled here; the supervisor decides whether
        (and when, under backoff) to call :meth:`add_worker`.
        """
        if vri not in self.vris:
            raise RuntimeBackendError(
                f"no such worker handle: vri {vri.vri_id}")
        if vri.process.is_alive():
            vri.process.kill()
        vri.process.join(1.0)
        self.vris.remove(vri)
        self._retire(vri, reason)

    def add_worker(self, vri_id: int,
                   core_id: Optional[int] = None) -> RuntimeVriHandle:
        """Spawn a worker into the pool (the supervisor's restart half)."""
        if any(v.vri_id == vri_id for v in self.vris):
            raise RuntimeBackendError(f"vri {vri_id} already exists")
        if self.arena is not None and not 1 <= vri_id < self._arena_n_reclaim:
            raise RuntimeBackendError(
                f"vri_id {vri_id} outside the arena's reclaim-ring range "
                f"[1, {self._arena_n_reclaim})")
        handle = self._spawn(vri_id, core_id)
        self.vris.append(handle)
        if self._plane is not None and not self._plane.stopped:
            self._plane.attach_vri(handle.vri_id,
                                   handle.segments[0].name,
                                   handle.segments[1].name)
        self.respawned += 1
        return handle

    # -- data plane --------------------------------------------------------------------
    # The pipeline itself (classify -> admit -> balance -> stage ->
    # push -> drain) is inherited from DispatchPipeline, shared
    # verbatim with the dispatcher shards.  With a dispatch plane
    # attached, the monitor keeps only the split: flow-hash, steer,
    # jumbo-push; everything downstream runs inside the shards.

    def dispatch(self, frame: bytes, t_capture: float = 0.0) -> bool:
        if self._plane is not None:
            if not self.vris:
                raise RuntimeBackendError("monitor is stopped")
            return self._plane.dispatch(frame)
        return DispatchPipeline.dispatch(self, frame, t_capture)

    def dispatch_many(self, frames: List[bytes]) -> int:
        if self._plane is not None:
            if not self.vris:
                raise RuntimeBackendError("monitor is stopped")
            return self._plane.split(frames)
        return DispatchPipeline.dispatch_many(self, frames)

    def drain(self) -> List[Tuple[int, int, bytes]]:
        if self._plane is not None:
            return self._plane.drain()
        return DispatchPipeline.drain(self)

    # -- control plane -------------------------------------------------------------------
    def pump_control(self) -> List[ControlEvent]:
        """Relay inter-VRI control events; absorb service-rate reports."""
        if self._plane is not None and not self._plane.stopped:
            # Shard telemetry first: heartbeats, delta-folded stats,
            # per-shard overload state.
            self._plane.pump()
        absorbed: List[ControlEvent] = []
        by_id: Dict[int, RuntimeVriHandle] = {v.vri_id: v for v in self.vris}
        for vri in self.vris:
            while True:
                record = vri.ctrl_out.try_pop()
                if record is None:
                    break
                event = decode_event(record)
                if event.seq:
                    last = self._ctrl_last_seq.get(vri.vri_id)
                    if last is not None:
                        expected = (last % 0xFFFF) + 1
                        if event.seq != expected:
                            # Stamps are dense per sender, so any jump
                            # is that many lost/reordered events.
                            self._c_seq_gap_ctrl.inc(
                                (event.seq - expected) % 0xFFFF)
                    self._ctrl_last_seq[vri.vri_id] = event.seq
                if _TRACE.enabled:
                    _TRACE.instant("ctrl.recv", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   kind=event.kind, src=event.src_vri,
                                   dst=event.dst_vri, seq=event.seq)
                if event.kind == KIND_SERVICE_RATE:
                    (rate,) = struct.unpack("<d", event.payload)
                    vri.reported_rate = rate
                    absorbed.append(event)
                    continue
                if event.kind == KIND_HEARTBEAT:
                    # Liveness beacon: receipt time, not the payload's
                    # send time — a beacon stuck in a wedged ring must
                    # not count as fresh when it finally drains.
                    vri.last_heartbeat = time.monotonic()
                    absorbed.append(event)
                    continue
                if event.kind == KIND_STATS:
                    # Telemetry plane: reassemble the chunked registry
                    # snapshot and fold it into the cluster-wide view,
                    # scoped by the sending worker's id.
                    snapshot = self._stats_assembler.feed(
                        event.src_vri, event.payload)
                    if snapshot is not None:
                        default_registry().merge(
                            snapshot, extra_labels={
                                "rt": self.obs_id,
                                "vri_id": str(event.src_vri)})
                        self._c_merged.inc()
                    absorbed.append(event)
                    continue
                dst = by_id.get(event.dst_vri)
                if dst is not None:
                    dst.ctrl_in.try_push(record)
                    self._flush(dst.ctrl_in)
                absorbed.append(event)
        return absorbed

    def send_control(self, event: ControlEvent) -> bool:
        """Inject a control event towards ``event.dst_vri``."""
        for vri in self.vris:
            if vri.vri_id == event.dst_vri:
                if event.seq == 0:
                    seq = (self._ctrl_send_seq.get(event.dst_vri, 0)
                           % 0xFFFF) + 1
                    self._ctrl_send_seq[event.dst_vri] = seq
                    event = dataclasses.replace(event, seq=seq)
                ok = vri.ctrl_in.try_push(encode_event(event))
                if ok:
                    self._flush(vri.ctrl_in)
                    if _TRACE.enabled:
                        _TRACE.instant("ctrl.send", ts=time.monotonic(),
                                       cat="replay", track="lvrm",
                                       kind=event.kind, src=event.src_vri,
                                       dst=event.dst_vri, seq=event.seq)
                return ok
        raise RuntimeBackendError(f"no such VRI: {event.dst_vri}")

    # -- the admin plane ---------------------------------------------------------------
    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each live worker's last absorbed heartbeat."""
        now = time.monotonic()
        return {v.vri_id: now - v.last_heartbeat for v in self.vris}

    def slot_states(self) -> Dict[str, str]:
        """Per-slot health for ``/healthz``: the attached supervisor's
        state machine when one is driving, else raw process liveness.
        Dispatcher shards report alongside the worker slots."""
        if self.supervisor is not None:
            states = {f"vri{slot}": state.upper()
                      for slot, state in self.supervisor.state.items()}
        else:
            states = {f"vri{v.vri_id}":
                      ("RUNNING" if v.process.is_alive() else "DEAD")
                      for v in self.vris}
        if self._plane is not None and not self._plane.stopped:
            for shard in self._plane.shards:
                states[f"shard{shard.shard_id}"] = (
                    "RUNNING" if shard.process.is_alive() else "DEAD")
        return states

    def topology(self) -> Dict:
        """The VR → VRI → core map ``/topology`` serves (runtime
        monitors host a single VR)."""
        return {"backend": "runtime", "rt": self.obs_id,
                "balancer": self.balancer, "ring_impl": self.ring_impl,
                "dispatch_shards": self.dispatch_shards,
                "vrs": {"vr0": [
                    {"vri": v.vri_id, "core": v.core_id,
                     "pid": v.process.pid, "alive": v.process.is_alive()}
                    for v in self.vris]}}

    def _slo_state(self) -> Dict:
        """The attached supervisor's watchdog view (empty when no
        supervisor or no rules are driving this monitor)."""
        sup = self.supervisor
        if sup is None or getattr(sup, "watchdog", None) is None:
            return {}
        return sup.watchdog.state()

    @staticmethod
    def _replay_state() -> Dict:
        """The live trace recorder's view, resolved at request time so
        the route tracks recorder attach/detach."""
        recorder = _TRACE.replay
        if recorder is None:
            return {}
        return recorder.state()

    def _overload_view(self) -> Dict:
        """What ``/overload`` serves: the admission state (per-shard
        states plus the shared verdict when dispatch is sharded) with
        the per-VRI occupancy map the shedding decisions read."""
        if self._plane is not None and not self._plane.stopped:
            state = self._plane.overload_state()
        elif self.overload is not None:
            state = self.overload.state()
        else:
            return {}
        state["occupancy"] = {str(k): round(v, 4)
                              for k, v in self.occupancies().items()}
        return state

    def admin_state(self) -> AdminState:
        """A poll-based admin view over this monitor (no sockets)."""
        has_overload = (self.overload is not None
                        or self._plane is not None)
        return AdminState(default_registry(),
                          health_fn=self.slot_states,
                          topology_fn=self.topology,
                          spans_fn=self.spans.jsonl,
                          overload_fn=(self._overload_view
                                       if has_overload else None),
                          slo_fn=self._slo_state,
                          replay_fn=self._replay_state)

    def start_admin(self, port: int = 0,
                    host: str = "127.0.0.1") -> AdminServer:
        """Opt-in: serve the admin view over loopback HTTP (daemon
        thread); idempotent, stopped automatically by :meth:`stop`."""
        if self._admin is None:
            self._admin = AdminServer(self.admin_state(),
                                      port=port, host=host).start()
        return self._admin

    def stop_admin(self) -> None:
        if self._admin is not None:
            self._admin.stop()
            self._admin = None
