"""The real-process LVRM monitor.

Owns the shared-memory segments, spawns VRI worker processes, balances
frames across them, drains their output, relays control events, and
tears everything down — the runtime twin of the DES
:class:`~repro.core.lvrm.Lvrm`, restricted to one VR (enough to prove
the mechanism; the DES handles the multi-VR experiments).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import struct
import time
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.vr import DEFAULT_MAP_LINES
from repro.errors import (ArenaError, ConfigError, KernelError,
                          RuntimeBackendError)
from repro.kernels import resolve_kernel_kind
from repro.ipc.arena import FrameArena, arena_bytes_needed
import numpy as np

from repro.ipc.desc import (DESC_SLOT, FLAG_PROBE, PROBE_HEADROOM,
                            pack_desc_block)
from repro.ipc.factory import RING_KINDS, make_ring, ring_bytes_for
from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT,
                                KIND_SERVICE_RATE, KIND_STATS, KIND_STOP,
                                StatsAssembler, decode_event, encode_event)
from repro.ipc.ring import SpscRing
from repro.ipc.shm import SharedSegment
from repro.ipc.wait import WAIT_STRATEGIES, AimdBatcher, WaitPolicy
from repro.obs.admin import AdminServer, AdminState
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import default_registry
from repro.obs.spans import (PROBE_MAGIC_BYTES, SpanRecorder,
                             decode_out_probe, encode_in_probe)
from repro.obs.trace import TRACER as _TRACE
from repro.runtime.api import VriSideApi
from repro.runtime.worker import WorkerArgs, vri_worker_main

__all__ = ["RuntimeLvrm", "RuntimeVriHandle"]

_DATA_SLOT = 2048   # fits a max-size Ethernet frame + the iface header
_CTRL_SLOT = 512

_RING_TAGS = ("data_in", "data_out", "ctrl_in", "ctrl_out")
_rt_ids = itertools.count(1)


@dataclass
class RuntimeVriHandle:
    """LVRM-side view of one live worker."""

    vri_id: int
    core_id: Optional[int]
    process: mp.process.BaseProcess
    segments: List[SharedSegment]
    data_in: SpscRing    # LVRM pushes here (worker's incoming)
    data_out: SpscRing   # LVRM pops here (worker's outgoing)
    ctrl_in: SpscRing
    ctrl_out: SpscRing
    dispatched: int = 0
    drained: int = 0
    reported_rate: float = 0.0
    #: ``time.monotonic()`` of the last heartbeat absorbed from this
    #: worker (seeded with the spawn time so a fresh worker is never
    #: instantly declared hung).  Meaningful only when the monitor runs
    #: with ``heartbeat_interval > 0``.
    last_heartbeat: float = 0.0

    def rings(self) -> Tuple[SpscRing, ...]:
        return (self.data_in, self.data_out, self.ctrl_in, self.ctrl_out)


class RuntimeLvrm:
    """Spawn, feed, drain, and stop real VRI workers."""

    def __init__(self, n_vris: int = 1, ring_capacity: int = 1024,
                 map_lines: Tuple[str, ...] = DEFAULT_MAP_LINES,
                 cores: Optional[List[int]] = None,
                 balancer: str = "rr",
                 worker_lifetime: float = 60.0,
                 ring_impl: str = "lamport",
                 report_service_rate: bool = False,
                 heartbeat_interval: float = 0.0,
                 stats_interval: float = 0.0,
                 span_sample_every: int = 0,
                 data_plane: str = "copy",
                 wait_strategy: str = "sleep",
                 arena_chunks_per_class: Optional[int] = None,
                 kernel: Optional[str] = None,
                 kernel_rewrite: bool = False,
                 overload_policy: str = "none",
                 overload_opts: Optional[Dict] = None):
        if n_vris < 1:
            raise RuntimeBackendError("need at least one VRI")
        if balancer not in ("rr", "jsq"):
            raise RuntimeBackendError(f"unknown runtime balancer {balancer!r}")
        if ring_impl not in RING_KINDS:
            raise RuntimeBackendError(
                f"unknown ring implementation {ring_impl!r}")
        if heartbeat_interval < 0:
            raise RuntimeBackendError("heartbeat_interval cannot be negative")
        if stats_interval < 0:
            raise RuntimeBackendError("stats_interval cannot be negative")
        if span_sample_every < 0:
            raise RuntimeBackendError("span_sample_every cannot be negative")
        if data_plane not in ("copy", "arena"):
            raise RuntimeBackendError(
                f"data_plane must be 'copy' or 'arena', got {data_plane!r}")
        if wait_strategy not in WAIT_STRATEGIES:
            raise RuntimeBackendError(
                f"wait_strategy must be one of {WAIT_STRATEGIES}, "
                f"got {wait_strategy!r}")
        try:
            kernel = resolve_kernel_kind(kernel)
        except KernelError as exc:
            raise RuntimeBackendError(str(exc)) from exc
        self.balancer = balancer
        self.ring_impl = ring_impl
        #: Which burst kernel the workers run (``scalar``/``numpy``/
        #: ``cffi``); resolved here so forked children inherit one
        #: compiled ringops library instead of racing to build it.
        self.kernel = kernel
        #: Arm the kernels' RFC 1812 forwarding rewrite (TTL decrement +
        #: RFC 1624 checksum update, TTL-expiry drops) on the arena
        #: plane.  Off by default: the echo contract — drained frames
        #: byte-identical to dispatched ones — is what the test suite
        #: and the DES twin assume.  Copy-plane kernels never rewrite
        #: (their frames are immutable ring records), so this only
        #: changes behaviour with ``data_plane="arena"``.
        self.kernel_rewrite = bool(kernel_rewrite)
        #: ``copy`` stages frames through ring slots (legacy); ``arena``
        #: carries 24-byte descriptors into the shared frame arena.
        self.data_plane = data_plane
        self.wait_strategy = wait_strategy
        self.report_service_rate = report_service_rate
        #: Workers send a KIND_HEARTBEAT control event this often
        #: (0 = disabled); :meth:`pump_control` absorbs them into each
        #: handle's ``last_heartbeat``, the supervisor's liveness input.
        self.heartbeat_interval = heartbeat_interval
        #: Workers ship chunked registry snapshots (KIND_STATS) this
        #: often (0 = disabled); :meth:`pump_control` reassembles and
        #: merges them into the monitor's registry labeled by vri_id.
        self.stats_interval = stats_interval
        self.respawned = 0
        #: Distinguishes metrics of multiple monitors in one process.
        self.obs_id = str(next(_rt_ids))
        #: Always-on lifecycle post-mortem buffer (spawn / retire / kill
        #: events only — never per-frame, so the data plane pays nothing).
        self.recorder = FlightRecorder(256)
        if kernel == "cffi":
            # Warm the compiled backend before forking so every worker
            # inherits one loaded library (or one degrade decision)
            # instead of racing the compiler per child.
            from repro.kernels.ringops import ringops_unavailable_reason
            reason = ringops_unavailable_reason()
            if reason is not None:
                self.recorder.note("monitor.kernel_degraded",
                                   ts=time.monotonic(), requested="cffi",
                                   substitute="numpy", reason=reason)
        #: Frame-latency spans, wall-clock, 1-in-N sampled via ring-record
        #: probes (0 = off: dispatch pays one compare, drain one slice).
        self.spans = SpanRecorder(
            default_registry(), sample_every=span_sample_every,
            clock=time.monotonic, backend="runtime",
            labels={"rt": self.obs_id})
        self._stats_assembler = StatsAssembler()
        #: Lost/out-of-order sequence detection, one counter family with
        #: a ``plane`` label: ``ctrl`` (control-event seq stamps),
        #: ``stats`` (telemetry snapshot generations), ``spans`` (probe
        #: records whose stamp block failed to decode).  Counted, never
        #: silently skipped.
        registry = default_registry()
        self._c_seq_gap_ctrl = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="ctrl")
        self._c_seq_gap_stats = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="stats")
        self._c_seq_gap_spans = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=self.obs_id, plane="spans")
        self._stats_assembler.gap_hook = self._c_seq_gap_stats.inc
        # vri_id -> last control seq stamp absorbed (reset on respawn:
        # a fresh worker restarts its stamp counter at 1).
        self._ctrl_last_seq: Dict[int, int] = {}
        # Monitor-side control stamping, one lane per destination.
        self._ctrl_send_seq: Dict[int, int] = {}
        #: Arena chunks freed by :meth:`_reclaim_stranded` at failovers
        #: (summed into replay summaries; 0 on the copy plane).
        self.stranded_reclaimed = 0
        # Record mode: scalar dispatches coalesce their ring.push trace
        # events here (vri_id -> records) instead of paying a Tracer
        # emit per frame; flushed by :meth:`flush_trace` before any
        # event whose replay semantics observe ring occupancy.
        self._push_pending: Dict[int, int] = {}
        self._c_dispatched = default_registry().counter(
            "lvrm_dispatched_total",
            "frames the monitor balanced onto a worker ring",
            rt=self.obs_id)
        self._c_merged = default_registry().counter(
            "telemetry_snapshots_merged_total",
            "worker registry snapshots merged into the cluster view",
            rt=self.obs_id)
        #: Admission stage fronting dispatch (None for policy "none";
        #: see repro.overload and docs/OVERLOAD.md).  Shares the DES
        #: controller implementation — same classifier, same AIMD, same
        #: deterministic stride sampler — over real ring occupancy.
        try:
            from repro.overload import build_controller
            self.overload = build_controller(
                overload_policy, overload_opts, default_registry(),
                scope_labels={"rt": self.obs_id})
        except ConfigError as exc:
            raise RuntimeBackendError(str(exc)) from exc
        #: Set by an attached Supervisor; /healthz reads its slot states.
        self.supervisor = None
        self._admin: Optional[AdminServer] = None
        #: Per-worker summary captured at retirement, while the rings are
        #: still attached: dispatch/drain counts and occupancy HWMs.
        self.teardown_stats: List[Dict[str, object]] = []
        self.map_lines = tuple(map_lines)
        self.ring_capacity = ring_capacity
        self.worker_lifetime = worker_lifetime
        #: Zero-copy plane state: one shared arena segment owned here,
        #: workers attach by name.  Reclaim rings are indexed by vri_id
        #: (each worker frees through its own SPSC ring), with slack so
        #: the supervisor can add replacement workers.
        self.arena: Optional[FrameArena] = None
        self._arena_segment: Optional[SharedSegment] = None
        self._arena_prod = None
        if data_plane == "arena":
            # Worst case every data slot of every worker holds a live
            # frame of one size class, plus bursts in flight.
            cpc = (arena_chunks_per_class if arena_chunks_per_class
                   else 2 * ring_capacity * n_vris + 512)
            self._arena_n_reclaim = n_vris + 9
            self._arena_segment = SharedSegment.create(arena_bytes_needed(
                chunks_per_class=cpc, n_reclaim=self._arena_n_reclaim))
            self.arena = FrameArena(self._arena_segment.buf,
                                    chunks_per_class=cpc,
                                    n_reclaim=self._arena_n_reclaim)
            self._arena_prod = self.arena.producer()
            registry = default_registry()
            registry.gauge(
                "arena_inuse_bytes",
                "bytes of live frame chunks in the shared arena",
                rt=self.obs_id).set_fn(self.arena.inuse_bytes)
            self._c_arena_alloc = registry.counter(
                "arena_alloc_total", "arena chunk allocations served",
                rt=self.obs_id)
            self._c_arena_exhausted = registry.counter(
                "arena_exhausted_total",
                "dispatch attempts refused because the arena ran dry",
                rt=self.obs_id)
        self._h_batch = default_registry().histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=self.obs_id, side="dispatch")
        self._h_batch_drain = default_registry().histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=self.obs_id, side="drain")
        self._c_wait_sleeps = default_registry().counter(
            "wait_sleeps_total",
            "idle sleeps taken by the monitor's drain wait policy",
            rt=self.obs_id)
        #: Drain-side adaptive burst: bounds how many records one ring
        #: transaction moves, growing under load so the shared-index
        #: synchronization amortizes, decaying when idle.  The ceiling
        #: scales with ring depth (256 at the default 1024) so deep
        #: rings keep amortizing instead of capping at 256.
        self._drain_batcher = AimdBatcher(
            hi=max(256, min(1024, ring_capacity // 8)))
        self._wait = WaitPolicy(wait_strategy)
        self._wait_sleeps_seen = 0
        # fork avoids re-importing __main__ (which breaks REPL/stdin use)
        # and is safe here: the parent holds no threads or locks the
        # workers could inherit mid-flight.
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = mp.get_context("spawn")
        self._rr = 0
        self.vris: List[RuntimeVriHandle] = []
        available = sorted(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else [None]
        try:
            for i in range(n_vris):
                core = (cores[i] if cores is not None and i < len(cores)
                        else available[i % len(available)])
                self.vris.append(self._spawn(i + 1, core))
        except BaseException:
            # A later spawn failed: without this, the earlier workers'
            # segments (and the arena segment) would outlive the
            # constructor in /dev/shm (the caller never gets a handle
            # to stop()).
            for vri in self.vris:
                if vri.process.is_alive():
                    vri.process.kill()
                    vri.process.join(1.0)
                self._release(vri)
            self.vris = []
            self._release_arena()
            raise

    # -- lifecycle ------------------------------------------------------------------
    def _make_ring(self, capacity: int, slot: int):
        segment = SharedSegment.create(
            ring_bytes_for(self.ring_impl, capacity, slot))
        return segment, make_ring(self.ring_impl, segment.buf, capacity, slot)

    def _spawn(self, vri_id: int, core_id: Optional[int]) -> RuntimeVriHandle:
        segs, rings = [], []
        arena_mode = self.data_plane == "arena"
        # Descriptor rings carry fixed 24-byte slots; the payload lives
        # in the arena, so the 2 KiB frame slot disappears.
        data_slot = DESC_SLOT if arena_mode else _DATA_SLOT
        try:
            for slot in (data_slot, data_slot, _CTRL_SLOT, _CTRL_SLOT):
                segment, ring = self._make_ring(self.ring_capacity, slot)
                segs.append(segment)
                rings.append(ring)
            args = WorkerArgs(
                vri_id=vri_id, core_id=core_id,
                data_in=segs[0].name, data_out=segs[1].name,
                ctrl_in=segs[2].name, ctrl_out=segs[3].name,
                map_lines=self.map_lines, max_lifetime=self.worker_lifetime,
                ring_impl=self.ring_impl,
                report_service_rate=self.report_service_rate,
                heartbeat_interval=self.heartbeat_interval,
                stats_interval=self.stats_interval,
                arena=(self._arena_segment.name if arena_mode else None),
                arena_reclaim=(vri_id if arena_mode else 0),
                wait_strategy=self.wait_strategy,
                kernel=self.kernel,
                kernel_rewrite=self.kernel_rewrite,
                probe_frames=bool(self.spans.sample_every))
            process = self._ctx.Process(target=vri_worker_main, args=(args,),
                                        daemon=True)
            process.start()
        except BaseException:
            # The worker never came up (fork failure, ring allocation
            # error): this side owns the segments, so unlink them now —
            # no child will, and the handle is never returned to anyone
            # who could.
            for ring in rings:
                ring.close()
            for segment in segs:
                segment.close()
            raise
        registry = default_registry()
        for ring, tag in zip(rings, _RING_TAGS):
            # Pull-mode gauge over the ring's bare hwm attribute: the
            # data plane never touches the registry.  A respawn rebinds
            # the same gauge to the replacement ring.
            registry.gauge(
                "ring_occupancy_hwm",
                "highest occupancy a runtime shm ring reached (LVRM side)",
                rt=self.obs_id, vri=str(vri_id), ring=tag,
            ).set_fn(lambda r=ring: r.hwm)
        self.recorder.note("worker.spawn", ts=time.monotonic(),
                           vri=vri_id, core=core_id, pid=process.pid)
        if _TRACE.enabled:
            _TRACE.instant("worker.spawn", ts=time.monotonic(),
                           cat="runtime", track="lvrm", vri=vri_id,
                           pid=process.pid)
        return RuntimeVriHandle(vri_id, core_id, process, segs,
                                data_in=rings[0], data_out=rings[1],
                                ctrl_in=rings[2], ctrl_out=rings[3],
                                last_heartbeat=time.monotonic())

    def _retire(self, vri: RuntimeVriHandle, reason: str) -> None:
        """Capture final ring stats, then release rings and segments.

        Runs while the rings are still attached: a last
        ``probe_occupancy()`` folds any stranded records into the HWM
        (LVRM is the consumer of the ``*_out`` rings, so their
        producer-side exact HWM lives in the worker process — the probe
        is the best view this side has).
        """
        hwm: Dict[str, int] = {}
        for ring, tag in zip(vri.rings(), _RING_TAGS):
            ring.probe_occupancy()
            hwm[tag] = ring.hwm
        if reason != "stop":
            # Failure path: whatever still sits in the data rings died
            # with the worker.  Counting it on the registry is what lets
            # the SLO watchdog's drop_rate rule see a kill as a breach
            # (same family the DES failover path uses).
            stranded = len(vri.data_in) + len(vri.data_out)
            if stranded:
                default_registry().counter(
                    "vri_dropped_fault_total",
                    "frames stranded in a failed worker's rings at "
                    "failover", rt=self.obs_id,
                    vri=str(vri.vri_id)).inc(stranded)
        if self.arena is not None:
            self._reclaim_stranded(vri)
        # A replacement worker restarts its control stamps at 1.
        self._ctrl_last_seq.pop(vri.vri_id, None)
        self.teardown_stats.append({
            "vri_id": vri.vri_id, "reason": reason,
            "dispatched": vri.dispatched, "drained": vri.drained,
            "ring_hwm": hwm})
        self.recorder.note("worker.retire", ts=time.monotonic(),
                           vri=vri.vri_id, reason=reason,
                           dispatched=vri.dispatched, drained=vri.drained,
                           **{f"hwm_{k}": v for k, v in hwm.items()})
        if _TRACE.enabled:
            _TRACE.instant("worker.retire", ts=time.monotonic(),
                           cat="runtime", track="lvrm", vri=vri.vri_id,
                           reason=reason, **{f"hwm_{k}": v
                                             for k, v in hwm.items()})
        self._release(vri)

    def _reclaim_stranded(self, vri: RuntimeVriHandle) -> None:
        """Arena mode: free the chunks of descriptors stranded in a
        retiring worker's data rings, so failovers do not bleed arena
        capacity.

        ``data_out`` is always drainable (this side is its consumer).
        ``data_in``'s consumer cursor lives in the dead worker for the
        flag/batched ring kinds, so only the Lamport ring — whose
        indices are fully shared — can be drained from here; for the
        others the stranded input chunks are leaked until teardown
        (bounded by ring capacity per failover).
        """
        free = self._arena_prod.free_local
        freed = 0
        try:
            for desc in vri.data_out.try_pop_desc_many():
                free(desc[0])
                freed += 1
            if self.ring_impl == "lamport":
                for desc in vri.data_in.try_pop_desc_many():
                    free(desc[0])
                    freed += 1
        except ArenaError:
            # A torn descriptor (worker died mid-publish on a non-atomic
            # path) must not take the monitor down with it.
            pass
        if freed:
            self.stranded_reclaimed += freed
            if _TRACE.enabled:
                self.flush_trace()
                _TRACE.instant("arena.reclaim", ts=time.monotonic(),
                               cat="replay", track="lvrm",
                               vri=vri.vri_id, n=freed)
        # Chunks freed by workers through their reclaim rings come home
        # here too, so a retired worker leaves no pending frees behind.
        self._drain_reclaim()

    def _drain_reclaim(self) -> None:
        """Fold worker-freed chunks back into the owner's free lists."""
        self._arena_prod._refill()

    def _release_arena(self) -> None:
        if self.arena is not None:
            self.arena.close()
            self.arena = None
            self._arena_prod = None
        if self._arena_segment is not None:
            self._arena_segment.close()
            self._arena_segment = None

    @staticmethod
    def _release(vri: RuntimeVriHandle) -> None:
        """Close rings and unlink this side's (owned) shm segments."""
        for ring in vri.rings():
            ring.close()
        for segment in vri.segments:
            segment.close()

    def stop(self, timeout: float = 5.0) -> None:
        """Cooperative stop, escalating to ``kill()`` like the thesis."""
        for vri in self.vris:
            vri.ctrl_in.try_push(encode_event(
                ControlEvent(KIND_STOP, 0, vri.vri_id)))
            self._flush(vri.ctrl_in)
        deadline = time.monotonic() + timeout
        for vri in self.vris:
            vri.process.join(max(0.0, deadline - time.monotonic()))
            if vri.process.is_alive():
                vri.process.kill()
                vri.process.join(1.0)
                self.recorder.note("worker.kill", ts=time.monotonic(),
                                   vri=vri.vri_id)
        for vri in self.vris:
            self._retire(vri, "stop")
        self.vris = []
        self._release_arena()
        self.stop_admin()

    def __enter__(self) -> "RuntimeLvrm":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- health ------------------------------------------------------------------------
    def dead_workers(self) -> List[RuntimeVriHandle]:
        """Workers whose process has exited (crash or lifetime expiry)."""
        return [v for v in self.vris if not v.process.is_alive()]

    def respawn_dead(self) -> int:
        """Replace dead workers in place: fresh process, fresh rings.

        The thesis' monitor owns the instances; a crashed VRI is just a
        destroy-then-create.  Frames stranded in a dead worker's rings
        are lost, exactly like the DES `destroy_vri` drain.
        """
        replaced = 0
        for idx, vri in enumerate(list(self.vris)):
            if vri.process.is_alive():
                continue
            vri.process.join(0.1)
            self._retire(vri, "respawn")
            self.vris[idx] = self._spawn(vri.vri_id, vri.core_id)
            replaced += 1
        self.respawned += replaced
        return replaced

    def remove_worker(self, vri: RuntimeVriHandle,
                      reason: str = "failover") -> None:
        """Take one worker out of service: kill if needed, retire, drop.

        The supervisor's failover primitive — unlike :meth:`respawn_dead`
        the slot is *not* refilled here; the supervisor decides whether
        (and when, under backoff) to call :meth:`add_worker`.
        """
        if vri not in self.vris:
            raise RuntimeBackendError(
                f"no such worker handle: vri {vri.vri_id}")
        if vri.process.is_alive():
            vri.process.kill()
        vri.process.join(1.0)
        self.vris.remove(vri)
        self._retire(vri, reason)

    def add_worker(self, vri_id: int,
                   core_id: Optional[int] = None) -> RuntimeVriHandle:
        """Spawn a worker into the pool (the supervisor's restart half)."""
        if any(v.vri_id == vri_id for v in self.vris):
            raise RuntimeBackendError(f"vri {vri_id} already exists")
        if self.arena is not None and not 1 <= vri_id < self._arena_n_reclaim:
            raise RuntimeBackendError(
                f"vri_id {vri_id} outside the arena's reclaim-ring range "
                f"[1, {self._arena_n_reclaim})")
        handle = self._spawn(vri_id, core_id)
        self.vris.append(handle)
        self.respawned += 1
        return handle

    # -- data plane --------------------------------------------------------------------
    def _pick(self) -> RuntimeVriHandle:
        if self.balancer == "jsq":
            return min(self.vris, key=lambda v: len(v.data_in))
        vri = self.vris[self._rr % len(self.vris)]
        self._rr += 1
        return vri

    def _overload_occupancy(self) -> float:
        """Admission-control load signal: max data-ring fill across
        workers, normalized to [0, 1]."""
        if not self.vris:
            return 0.0
        depth = max(len(v.data_in) for v in self.vris)
        return depth / self.ring_capacity if self.ring_capacity else 0.0

    @staticmethod
    def _flush(ring) -> None:
        flush = getattr(ring, "flush", None)
        if flush is not None:
            flush()

    def dispatch(self, frame: bytes, t_capture: float = 0.0) -> bool:
        """Balance one raw frame to a worker; False when its ring is full.

        ``t_capture`` (monotonic) marks when the frame entered the
        gateway; defaults to now, making the dispatch phase ~0 for
        callers that hand frames straight in.
        """
        if not self.vris:
            raise RuntimeBackendError("monitor is stopped")
        if self.overload is not None:
            self.overload.maybe_update(time.monotonic(),
                                       self._overload_occupancy)
            shed_before = (list(self.overload.shed) if _TRACE.enabled
                           else None)
            admitted = self.overload.admit_raw(frame)
            if shed_before is not None:
                self._trace_shed(shed_before)
            if not admitted:
                # Shed reads as "not accepted", same as backpressure —
                # callers already handle a False dispatch.
                return False
        vri = self._pick()
        if self.arena is not None:
            probe = bool(self.spans.sample_every
                         and self.spans.should_sample())
            return self._dispatch_arena_one(vri, frame, t_capture, probe)
        if self.spans.sample_every and self.spans.should_sample():
            now = time.monotonic()
            frame = encode_in_probe(t_capture or now, now, frame)
        ok = vri.data_in.try_push(frame)
        if ok:
            vri.dispatched += 1
            self._c_dispatched.inc()
            self._flush(vri.data_in)
            if _TRACE.enabled:
                self._push_pending[vri.vri_id] = (
                    self._push_pending.get(vri.vri_id, 0) + 1)
        return ok

    def flush_trace(self) -> None:
        """Emit the coalesced ``ring.push`` trace events (record mode).

        The scalar dispatch path only bumps a pending per-VRI count —
        a dict update, not a Tracer emit, keeping record-mode overhead
        inside its e2e budget.  This flushes the counts as one batched
        event per VRI, and must run before any event that *observes*
        ring occupancy in the replay twin: ring pops, stranded-arena
        reclaims, and the final summary.  Single-threaded monitor, so
        the deferral never reorders across a pop of the same records.
        """
        pend = self._push_pending
        if not pend:
            return
        now = time.monotonic()
        for vri_id, n in pend.items():
            _TRACE.instant("ring.push", ts=now, cat="replay",
                           track="lvrm", vri=vri_id, n=n)
        pend.clear()

    def _trace_shed(self, shed_before: List[int]) -> None:
        """Record per-class shed deltas since ``shed_before`` as
        ``frame.shed`` trace events (record mode only — the replayer
        recomputes per-class counters from these)."""
        ctl = self.overload
        names = ctl.classifier.classes
        now = time.monotonic()
        for c, before in enumerate(shed_before):
            delta = ctl.shed[c] - before
            if delta:
                _TRACE.instant("frame.shed", ts=now, cat="replay",
                               track="lvrm", cls=names[c], n=delta)

    def _dispatch_arena_one(self, vri: RuntimeVriHandle, frame: bytes,
                            t_capture: float, probe: bool) -> bool:
        """Arena mode: stage the payload once into its chunk, push a
        24-byte descriptor.  An exhausted arena reads as backpressure
        (False), same as a full ring."""
        prod = self._arena_prod
        got = prod.write(frame, headroom=PROBE_HEADROOM if probe else 0)
        if got is None:
            self._c_arena_exhausted.inc()
            return False
        off, length = got
        flags = 0
        if probe:
            now = time.monotonic()
            self.arena.write_stamps(off, length, 0, t_capture or now, now)
            flags = FLAG_PROBE
        ok = vri.data_in.try_push_desc_many(
            ((off, length, 0, flags, time.monotonic_ns()),)) == 1
        if ok:
            vri.dispatched += 1
            self._c_dispatched.inc()
            self._c_arena_alloc.inc()
            self._flush(vri.data_in)
            if _TRACE.enabled:
                self._push_pending[vri.vri_id] = (
                    self._push_pending.get(vri.vri_id, 0) + 1)
        else:
            prod.free_local(off)
        return ok

    def dispatch_many(self, frames: List[bytes]) -> int:
        """Balance a burst of frames with one ring transaction per worker.

        The balancing decision runs at batch granularity (one pick per
        burst, rotating to the next worker only for frames the first
        choice could not absorb) — the runtime twin of what the thesis
        calls amortizing the "balance" step.  Returns how many frames
        were accepted.
        """
        if not self.vris:
            raise RuntimeBackendError("monitor is stopped")
        if self.overload is not None:
            # Admission is decided per-block *before* staging so the
            # vectorized kernels (numpy/cffi write_block) still see one
            # contiguous burst — just a smaller one.
            self.overload.maybe_update(time.monotonic(),
                                       self._overload_occupancy)
            shed_before = (list(self.overload.shed) if _TRACE.enabled
                           else None)
            frames = self.overload.admit_block(frames)
            if shed_before is not None:
                self._trace_shed(shed_before)
            if not frames:
                return 0
        if self.arena is not None:
            return self._dispatch_arena_many(frames)
        probe_at = self.spans.sample_index(len(frames))
        if probe_at is not None:
            now = time.monotonic()
            frames = list(frames)
            frames[probe_at] = encode_in_probe(now, now, frames[probe_at])
        sent = 0
        remaining = frames
        # At worst every worker's ring is tried once.
        for _ in range(len(self.vris)):
            if not remaining:
                break
            vri = self._pick()
            n = vri.data_in.try_push_many(remaining)
            if n:
                vri.dispatched += n
                self._flush(vri.data_in)
                sent += n
                remaining = remaining[n:]
                if _TRACE.enabled:
                    _TRACE.instant("ring.push", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri.vri_id, n=n)
        if sent:
            self._c_dispatched.inc(sent)
            self._h_batch.observe(sent)
        return sent

    def _dispatch_arena_many(self, frames: List[bytes]) -> int:
        """Arena-mode burst dispatch: each payload staged once, the
        burst's descriptors pushed with one ring transaction per worker
        tried.  Frames that find neither a chunk nor ring space are
        rejected (their chunks freed), mirroring the copy path's
        partial-accept contract."""
        prod = self._arena_prod
        arena = self.arena
        n_frames = len(frames)
        probe_at = self.spans.sample_index(n_frames)
        stamp = time.monotonic_ns()
        probe_row: Optional[int] = None
        if probe_at is None:
            # Fused staging: one call writes the burst and returns its
            # descriptor block (no per-frame packing).
            block = prod.write_block(frames, stamp=stamp)
            staged = len(block)
            if staged < n_frames:
                self._c_arena_exhausted.inc(n_frames - staged)
                if not staged:
                    return 0
            return self._push_desc_block(block, staged)
        else:
            # The sampled frame alone needs stamp headroom, so it stages
            # through the scalar path between two bulk writes.
            offs, lens = prod.write_many(frames[:probe_at])
            if len(offs) == probe_at:
                got = prod.write(frames[probe_at], headroom=PROBE_HEADROOM)
                if got is not None:
                    off, length = got
                    now = time.monotonic()
                    arena.write_stamps(off, length, 0, now, now)
                    probe_row = len(offs)
                    offs.append(off)
                    lens.append(length)
                    tail_offs, tail_lens = prod.write_many(
                        frames[probe_at + 1:])
                    offs.extend(tail_offs)
                    lens.extend(tail_lens)
        staged = len(offs)
        if staged < n_frames:
            # Arena dry: staging stopped — descriptors later in the
            # burst would only deepen the shortage.
            self._c_arena_exhausted.inc(n_frames - staged)
            if not staged:
                return 0
        block = pack_desc_block(offs, lens, stamp=stamp)
        if probe_row is not None:
            block[probe_row, 1] |= np.uint64(FLAG_PROBE << 48)
        return self._push_desc_block(block, staged)

    def _push_desc_block(self, block, staged: int) -> int:
        """Push a staged descriptor block across worker rings (one
        transaction per worker tried), freeing any unsent tail."""
        sent = 0
        for _ in range(len(self.vris)):
            if sent >= staged:
                break
            vri = self._pick()
            n = vri.data_in.try_push_desc_block(block[sent:])
            if n:
                vri.dispatched += n
                self._flush(vri.data_in)
                sent += n
                if _TRACE.enabled:
                    _TRACE.instant("ring.push", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri.vri_id, n=n)
        if sent < staged:
            # Every ring full: give the staged chunks back.
            self._arena_prod.free_local_many(block[sent:, 0])
        if sent:
            self._c_dispatched.inc(sent)
            self._c_arena_alloc.inc(sent)
            self._h_batch.observe(sent)
        return sent

    def drain(self) -> List[Tuple[int, int, bytes]]:
        """Collect all available outputs: ``(vri_id, out_iface, frame)``."""
        if self.arena is not None:
            return self._drain_arena()
        out: List[Tuple[int, int, bytes]] = []
        split = VriSideApi.split_output
        magic = PROBE_MAGIC_BYTES
        batcher = self._drain_batcher
        for vri in self.vris:
            while True:
                records = vri.data_out.try_pop_many(batcher.size)
                got = len(records)
                batcher.update(got)
                if not got:
                    break
                self._h_batch_drain.observe(got)
                vri.drained += got
                vri_id = vri.vri_id
                if _TRACE.enabled:
                    # Covering pushes must hit the trace before the pop.
                    if self._push_pending:
                        self.flush_trace()
                    _TRACE.instant("ring.pop", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri_id, n=got)
                for record in records:
                    if record[:4] == magic:
                        # A probed record closes its latency span here.
                        stamps, record = decode_out_probe(record)
                        if stamps is not None:
                            self.spans.record_stamps(
                                *stamps, time.monotonic(), vri_id=vri_id)
                            if _TRACE.enabled:
                                _TRACE.instant(
                                    "span.close", ts=time.monotonic(),
                                    cat="replay", track="lvrm", vri=vri_id)
                        else:
                            # Magic matched but the stamp block did not
                            # decode: a lost/garbled probe sequence.
                            self._c_seq_gap_spans.inc()
                    iface, frame = split(record)
                    out.append((vri_id, iface, frame))
        return out

    def _drain_arena(self) -> List[Tuple[int, int, bytes]]:
        """Arena-mode drain: pop descriptors, copy each frame out of its
        chunk exactly once (the caller owns the result, so this copy is
        the round trip's second and last), then free the chunk straight
        onto the owner's shard free list."""
        out: List[Tuple[int, int, bytes]] = []
        arena = self.arena
        read_block = arena.read_block
        free_many = self._arena_prod.free_local_many
        record_stamps = self.spans.record_stamps
        batcher = self._drain_batcher
        probe_bits = np.uint64(FLAG_PROBE << 48)
        shift32 = np.uint64(32)
        mask16 = np.uint64(0xFFFF)
        # Probes only exist when dispatch samples spans; with sampling
        # off the per-block flag scan is pure overhead.
        check_probes = bool(self.spans.sample_every)
        for vri in self.vris:
            while True:
                block = vri.data_out.try_pop_desc_block(batcher.size)
                got = 0 if block is None else len(block)
                batcher.update(got)
                if not got:
                    break
                self._h_batch_drain.observe(got)
                vri.drained += got
                vri_id = vri.vri_id
                if _TRACE.enabled:
                    # Covering pushes must hit the trace before the pop.
                    if self._push_pending:
                        self.flush_trace()
                    _TRACE.instant("ring.pop", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri_id, n=got)
                word1 = block[:, 1]
                if check_probes and (word1 & probe_bits).any():
                    # Probed chunks carry all four span stamps in their
                    # headroom; close those spans before freeing.
                    now = time.monotonic()
                    for row in np.flatnonzero(
                            word1 & probe_bits).tolist():
                        off = int(block[row, 0])
                        length = int(word1[row]) & 0xFFFFFFFF
                        record_stamps(*arena.read_stamps(off, length),
                                      now, vri_id=vri_id)
                        if _TRACE.enabled:
                            _TRACE.instant("span.close", ts=now,
                                           cat="replay", track="lvrm",
                                           vri=vri_id)
                payloads = read_block(block)
                ifaces = ((word1 >> shift32) & mask16).tolist()
                out.extend(zip(itertools.repeat(vri_id), ifaces, payloads))
                free_many(block[:, 0])
        return out

    def drain_until(self, n_expected: int, timeout: float = 10.0) -> List[Tuple[int, int, bytes]]:
        """Drain until ``n_expected`` outputs arrive or timeout expires.

        Idle waits follow the configured wait strategy (spin / yield /
        escalating sleep); actual sleeps feed ``wait_sleeps_total``.
        """
        collected: List[Tuple[int, int, bytes]] = []
        deadline = time.monotonic() + timeout
        policy = self._wait
        while len(collected) < n_expected and time.monotonic() < deadline:
            batch = self.drain()
            if batch:
                collected.extend(batch)
                policy.reset()
            else:
                self.pump_control()
                policy.idle()
        taken = policy.sleeps - self._wait_sleeps_seen
        if taken:
            self._c_wait_sleeps.inc(taken)
            self._wait_sleeps_seen = policy.sleeps
        return collected

    # -- control plane -------------------------------------------------------------------
    def pump_control(self) -> List[ControlEvent]:
        """Relay inter-VRI control events; absorb service-rate reports."""
        absorbed: List[ControlEvent] = []
        by_id: Dict[int, RuntimeVriHandle] = {v.vri_id: v for v in self.vris}
        for vri in self.vris:
            while True:
                record = vri.ctrl_out.try_pop()
                if record is None:
                    break
                event = decode_event(record)
                if event.seq:
                    last = self._ctrl_last_seq.get(vri.vri_id)
                    if last is not None:
                        expected = (last % 0xFFFF) + 1
                        if event.seq != expected:
                            # Stamps are dense per sender, so any jump
                            # is that many lost/reordered events.
                            self._c_seq_gap_ctrl.inc(
                                (event.seq - expected) % 0xFFFF)
                    self._ctrl_last_seq[vri.vri_id] = event.seq
                if _TRACE.enabled:
                    _TRACE.instant("ctrl.recv", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   kind=event.kind, src=event.src_vri,
                                   dst=event.dst_vri, seq=event.seq)
                if event.kind == KIND_SERVICE_RATE:
                    (rate,) = struct.unpack("<d", event.payload)
                    vri.reported_rate = rate
                    absorbed.append(event)
                    continue
                if event.kind == KIND_HEARTBEAT:
                    # Liveness beacon: receipt time, not the payload's
                    # send time — a beacon stuck in a wedged ring must
                    # not count as fresh when it finally drains.
                    vri.last_heartbeat = time.monotonic()
                    absorbed.append(event)
                    continue
                if event.kind == KIND_STATS:
                    # Telemetry plane: reassemble the chunked registry
                    # snapshot and fold it into the cluster-wide view,
                    # scoped by the sending worker's id.
                    snapshot = self._stats_assembler.feed(
                        event.src_vri, event.payload)
                    if snapshot is not None:
                        default_registry().merge(
                            snapshot, extra_labels={
                                "rt": self.obs_id,
                                "vri_id": str(event.src_vri)})
                        self._c_merged.inc()
                    absorbed.append(event)
                    continue
                dst = by_id.get(event.dst_vri)
                if dst is not None:
                    dst.ctrl_in.try_push(record)
                    self._flush(dst.ctrl_in)
                absorbed.append(event)
        return absorbed

    def send_control(self, event: ControlEvent) -> bool:
        """Inject a control event towards ``event.dst_vri``."""
        for vri in self.vris:
            if vri.vri_id == event.dst_vri:
                if event.seq == 0:
                    seq = (self._ctrl_send_seq.get(event.dst_vri, 0)
                           % 0xFFFF) + 1
                    self._ctrl_send_seq[event.dst_vri] = seq
                    event = dataclasses.replace(event, seq=seq)
                ok = vri.ctrl_in.try_push(encode_event(event))
                if ok:
                    self._flush(vri.ctrl_in)
                    if _TRACE.enabled:
                        _TRACE.instant("ctrl.send", ts=time.monotonic(),
                                       cat="replay", track="lvrm",
                                       kind=event.kind, src=event.src_vri,
                                       dst=event.dst_vri, seq=event.seq)
                return ok
        raise RuntimeBackendError(f"no such VRI: {event.dst_vri}")

    # -- the admin plane ---------------------------------------------------------------
    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each live worker's last absorbed heartbeat."""
        now = time.monotonic()
        return {v.vri_id: now - v.last_heartbeat for v in self.vris}

    def slot_states(self) -> Dict[str, str]:
        """Per-slot health for ``/healthz``: the attached supervisor's
        state machine when one is driving, else raw process liveness."""
        if self.supervisor is not None:
            return {f"vri{slot}": state.upper()
                    for slot, state in self.supervisor.state.items()}
        return {f"vri{v.vri_id}":
                ("RUNNING" if v.process.is_alive() else "DEAD")
                for v in self.vris}

    def topology(self) -> Dict:
        """The VR → VRI → core map ``/topology`` serves (runtime
        monitors host a single VR)."""
        return {"backend": "runtime", "rt": self.obs_id,
                "balancer": self.balancer, "ring_impl": self.ring_impl,
                "vrs": {"vr0": [
                    {"vri": v.vri_id, "core": v.core_id,
                     "pid": v.process.pid, "alive": v.process.is_alive()}
                    for v in self.vris]}}

    def _slo_state(self) -> Dict:
        """The attached supervisor's watchdog view (empty when no
        supervisor or no rules are driving this monitor)."""
        sup = self.supervisor
        if sup is None or getattr(sup, "watchdog", None) is None:
            return {}
        return sup.watchdog.state()

    @staticmethod
    def _replay_state() -> Dict:
        """The live trace recorder's view, resolved at request time so
        the route tracks recorder attach/detach."""
        recorder = _TRACE.replay
        if recorder is None:
            return {}
        return recorder.state()

    def admin_state(self) -> AdminState:
        """A poll-based admin view over this monitor (no sockets)."""
        return AdminState(default_registry(),
                          health_fn=self.slot_states,
                          topology_fn=self.topology,
                          spans_fn=self.spans.jsonl,
                          overload_fn=(self.overload.state
                                       if self.overload is not None
                                       else None),
                          slo_fn=self._slo_state,
                          replay_fn=self._replay_state)

    def start_admin(self, port: int = 0,
                    host: str = "127.0.0.1") -> AdminServer:
        """Opt-in: serve the admin view over loopback HTTP (daemon
        thread); idempotent, stopped automatically by :meth:`stop`."""
        if self._admin is None:
            self._admin = AdminServer(self.admin_state(),
                                      port=port, host=host).start()
        return self._admin

    def stop_admin(self) -> None:
        if self._admin is not None:
            self._admin.stop()
            self._admin = None
