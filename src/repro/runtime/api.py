"""The VRI-side LVRM adapter for real processes (thesis §3.6).

The paper gives VRIs a tiny API — ``fromLVRM()`` and ``toLVRM()`` — so a
router implementation never touches the IPC queues directly.  This is
that API: it attaches to the four shared-memory rings by name (the
identifiers LVRM passes in the VRI's main arguments) and, as in the
thesis, measures the VRI's service rate as the gap between successive
``fromLVRM()`` completions, reporting it upstream over the control ring.
"""

from __future__ import annotations

import struct
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.estimation import ServiceRateEstimator
from repro.ipc.messages import ControlEvent, KIND_SERVICE_RATE, decode_event, encode_event
from repro.ipc.shm import SharedSegment

__all__ = ["VriSideApi"]

#: Outgoing data records are the forwarded frame prefixed by the chosen
#: output interface.
_OUT_HEADER = struct.Struct("<H")


class VriSideApi:
    """``fromLVRM()`` / ``toLVRM()`` over shared-memory rings."""

    def __init__(self, vri_id: int, data_in_name: str, data_out_name: str,
                 ctrl_in_name: str, ctrl_out_name: str,
                 report_service_rate: bool = False,
                 report_every: int = 256,
                 ring_impl: str = "lamport"):
        from repro.ipc.factory import attach_ring

        self.vri_id = vri_id
        self._segments = [SharedSegment.attach(n) for n in
                          (data_in_name, data_out_name,
                           ctrl_in_name, ctrl_out_name)]
        self.data_in = attach_ring(ring_impl, self._segments[0].buf)
        self.data_out = attach_ring(ring_impl, self._segments[1].buf)
        self.ctrl_in = attach_ring(ring_impl, self._segments[2].buf)
        self.ctrl_out = attach_ring(ring_impl, self._segments[3].buf)
        self._estimator = ServiceRateEstimator() if report_service_rate else None
        self._report_every = max(1, report_every)
        self._last_from: Optional[float] = None
        self.frames_in = 0
        self.frames_out = 0

    # -- the paper's two calls --------------------------------------------------
    def from_lvrm(self) -> Optional[bytes]:
        """Next raw frame from LVRM, or None (non-blocking poll)."""
        record = self.data_in.try_pop()
        if record is None:
            return None
        now = time.perf_counter()
        if self._estimator is not None and self._last_from is not None:
            gap = now - self._last_from
            if gap > 0:
                self._estimator.observe_service(gap)
            if self.frames_in % self._report_every == 0:
                self._report_rate()
        self._last_from = now
        self.frames_in += 1
        return record

    def to_lvrm(self, out_iface: int, frame: bytes) -> bool:
        """Hand a forwarded frame back; False when the ring is full."""
        if not 0 <= out_iface <= 0xFFFF:
            raise ValueError(f"out_iface out of range: {out_iface}")
        ok = self.data_out.try_push(_OUT_HEADER.pack(out_iface) + frame)
        if ok:
            self.frames_out += 1
            # Batched rings (MCRingBuffer) need an explicit publish so
            # LVRM sees the record promptly.
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return ok

    # -- batched variants ---------------------------------------------------
    def from_lvrm_many(self, max_frames: int = 64) -> List[bytes]:
        """Up to ``max_frames`` raw frames in one ring transaction.

        With the service-rate estimator enabled this falls back to the
        scalar path: the estimator's signal *is* the per-frame
        completion gap, which a batch pop would destroy.
        """
        if self._estimator is not None:
            out: List[bytes] = []
            while len(out) < max_frames:
                record = self.from_lvrm()
                if record is None:
                    break
                out.append(record)
            return out
        frames = self.data_in.try_pop_many(max_frames)
        self.frames_in += len(frames)
        return frames

    def to_lvrm_many(self, routed: Sequence[Tuple[int, bytes]]) -> int:
        """Hand back many (out_iface, frame) pairs with one publication.

        Returns how many were accepted (the ring may fill mid-batch).
        """
        pack = _OUT_HEADER.pack
        records = []
        for out_iface, frame in routed:
            if not 0 <= out_iface <= 0xFFFF:
                raise ValueError(f"out_iface out of range: {out_iface}")
            records.append(pack(out_iface) + frame)
        pushed = self.data_out.try_push_many(records)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    @staticmethod
    def pack_output(out_iface: int, frame: bytes) -> bytes:
        """Build the outgoing-record encoding of ``(iface, frame)``.

        For callers that need the raw record — e.g. to prepend a latency
        probe — before handing it to :meth:`push_records`.
        """
        if not 0 <= out_iface <= 0xFFFF:
            raise ValueError(f"out_iface out of range: {out_iface}")
        return _OUT_HEADER.pack(out_iface) + frame

    def push_records(self, records: Sequence[bytes]) -> int:
        """Push pre-built outgoing records in one publication."""
        pushed = self.data_out.try_push_many(records)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    @staticmethod
    def split_output(record: bytes) -> Tuple[int, bytes]:
        """LVRM-side: split an outgoing record into (iface, frame)."""
        (iface,) = _OUT_HEADER.unpack_from(record)
        return iface, record[_OUT_HEADER.size:]

    # -- control plane -------------------------------------------------------------
    def recv_control(self) -> Optional[ControlEvent]:
        record = self.ctrl_in.try_pop()
        return None if record is None else decode_event(record)

    def send_control(self, event: ControlEvent) -> bool:
        ok = self.ctrl_out.try_push(encode_event(event))
        if ok:
            flush = getattr(self.ctrl_out, "flush", None)
            if flush is not None:
                flush()
        return ok

    def _report_rate(self) -> None:
        rate = self._estimator.rate()
        payload = struct.pack("<d", rate)
        self.send_control(ControlEvent(KIND_SERVICE_RATE, self.vri_id, 0,
                                       payload))

    def close(self) -> None:
        for ring in (self.data_in, self.data_out, self.ctrl_in, self.ctrl_out):
            ring.close()
        for segment in self._segments:
            # Attached (non-owner) segments: detach only.
            segment.close()
