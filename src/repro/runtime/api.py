"""The VRI-side LVRM adapter for real processes (thesis §3.6).

The paper gives VRIs a tiny API — ``fromLVRM()`` and ``toLVRM()`` — so a
router implementation never touches the IPC queues directly.  This is
that API: it attaches to the four shared-memory rings by name (the
identifiers LVRM passes in the VRI's main arguments) and, as in the
thesis, measures the VRI's service rate as the gap between successive
``fromLVRM()`` completions, reporting it upstream over the control ring.
"""

from __future__ import annotations

import struct
import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.core.estimation import ServiceRateEstimator
from repro.ipc.messages import ControlEvent, KIND_SERVICE_RATE, decode_event, encode_event
from repro.ipc.shm import SharedSegment

__all__ = ["VriSideApi"]

#: Outgoing data records are the forwarded frame prefixed by the chosen
#: output interface.
_OUT_HEADER = struct.Struct("<H")


class VriSideApi:
    """``fromLVRM()`` / ``toLVRM()`` over shared-memory rings."""

    def __init__(self, vri_id: int, data_in_name: str, data_out_name: str,
                 ctrl_in_name: str, ctrl_out_name: str,
                 report_service_rate: bool = False,
                 report_every: int = 256,
                 ring_impl: str = "lamport",
                 arena_name: Optional[str] = None,
                 arena_reclaim: int = 0):
        from repro.ipc.factory import attach_ring

        self.vri_id = vri_id
        self._segments = [SharedSegment.attach(n) for n in
                          (data_in_name, data_out_name,
                           ctrl_in_name, ctrl_out_name)]
        self.data_in = attach_ring(ring_impl, self._segments[0].buf)
        self.data_out = attach_ring(ring_impl, self._segments[1].buf)
        self.ctrl_in = attach_ring(ring_impl, self._segments[2].buf)
        self.ctrl_out = attach_ring(ring_impl, self._segments[3].buf)
        #: Zero-copy mode: the data rings carry 24-byte descriptors into
        #: this shared frame arena instead of the frames themselves.
        self.arena = None
        self.arena_reclaim = arena_reclaim
        if arena_name is not None:
            from repro.ipc.arena import FrameArena
            self._segments.append(SharedSegment.attach(arena_name))
            self.arena = FrameArena.attach(self._segments[-1].buf)
        self._estimator = ServiceRateEstimator() if report_service_rate else None
        self._report_every = max(1, report_every)
        self._last_from: Optional[float] = None
        self.frames_in = 0
        self.frames_out = 0
        # Per-process control-plane sequence (1-based mod 2**16); the
        # monitor detects per-source gaps from these stamps.
        self._ctrl_seq = 0

    # -- the paper's two calls --------------------------------------------------
    def from_lvrm(self) -> Optional[bytes]:
        """Next raw frame from LVRM, or None (non-blocking poll)."""
        record = self.data_in.try_pop()
        if record is None:
            return None
        now = time.perf_counter()
        if self._estimator is not None and self._last_from is not None:
            gap = now - self._last_from
            if gap > 0:
                self._estimator.observe_service(gap)
            if self.frames_in % self._report_every == 0:
                self._report_rate()
        self._last_from = now
        self.frames_in += 1
        return record

    def to_lvrm(self, out_iface: int, frame: bytes) -> bool:
        """Hand a forwarded frame back; False when the ring is full."""
        if not 0 <= out_iface <= 0xFFFF:
            raise ValueError(f"out_iface out of range: {out_iface}")
        ok = self.data_out.try_push(_OUT_HEADER.pack(out_iface) + bytes(frame))
        if ok:
            self.frames_out += 1
            # Batched rings (MCRingBuffer) need an explicit publish so
            # LVRM sees the record promptly.
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return ok

    # -- batched variants ---------------------------------------------------
    def from_lvrm_many(self, max_frames: int = 64) -> List[bytes]:
        """Up to ``max_frames`` raw frames in one ring transaction.

        With the service-rate estimator enabled this falls back to the
        scalar path: the estimator's signal *is* the per-frame
        completion gap, which a batch pop would destroy.
        """
        if self._estimator is not None:
            out: List[bytes] = []
            while len(out) < max_frames:
                record = self.from_lvrm()
                if record is None:
                    break
                out.append(record)
            return out
        frames = self.data_in.try_pop_many(max_frames)
        self.frames_in += len(frames)
        return frames

    def from_lvrm_many_into(self, max_frames: int = 64) -> List[bytes]:
        """Like :meth:`from_lvrm_many` but the returned frames are
        *borrowed* memoryviews into the ring slots — no copy.  The views
        die at :meth:`release_input`, which the caller must invoke after
        decoding (and before the next poll would overrun the ring).

        With the service-rate estimator enabled this degrades to the
        owned-copy scalar path (same reason as :meth:`from_lvrm_many`);
        :meth:`release_input` is then a no-op, so callers need no branch.
        """
        if self._estimator is not None:
            return self.from_lvrm_many(max_frames)
        frames = self.data_in.try_pop_many_into(max_frames)
        self.frames_in += len(frames)
        return frames

    def release_input(self) -> None:
        """Release ring slots borrowed by :meth:`from_lvrm_many_into`."""
        release = getattr(self.data_in, "release_popped", None)
        if release is not None:
            release()

    # -- descriptor (arena) variants ----------------------------------------
    def from_lvrm_descs(self, max_frames: int = 64,
                        ) -> List[Tuple[int, int, int, int, int]]:
        """Up to ``max_frames`` frame descriptors (arena mode): tuples of
        ``(offset, length, iface, flags, stamp)``; frame bytes stay in
        the shared arena (``self.arena.view(offset, length)``).

        With the service-rate estimator enabled, descriptors pop one at
        a time so the per-frame completion gap — the estimator's signal
        — survives.
        """
        if self._estimator is not None:
            out: List[Tuple[int, int, int, int, int]] = []
            while len(out) < max_frames:
                descs = self.data_in.try_pop_desc_many(1)
                if not descs:
                    break
                now = time.perf_counter()
                if self._last_from is not None:
                    gap = now - self._last_from
                    if gap > 0:
                        self._estimator.observe_service(gap)
                    if self.frames_in % self._report_every == 0:
                        self._report_rate()
                self._last_from = now
                self.frames_in += 1
                out.extend(descs)
            return out
        descs = self.data_in.try_pop_desc_many(max_frames)
        self.frames_in += len(descs)
        return descs

    def to_lvrm_descs(self, descs: Sequence[Tuple[int, int, int, int, int]]
                      ) -> int:
        """Hand back routed descriptors (``iface`` field filled in) with
        one publication; returns how many the ring accepted."""
        pushed = self.data_out.try_push_desc_many(descs)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    def from_lvrm_desc_block(self, max_frames: int = 64):
        """Bulk sibling of :meth:`from_lvrm_descs`: up to ``max_frames``
        descriptors as an ``(n, 3)`` u64 block (``None`` when empty; see
        :func:`repro.ipc.desc.desc_block_rows` for the layout).  The
        service-rate estimator keeps the tuple-at-a-time path — its
        signal is the per-frame completion gap."""
        if self._estimator is not None:
            descs = self.from_lvrm_descs(max_frames)
            if not descs:
                return None
            from repro.ipc.desc import pack_desc_block
            block = pack_desc_block([d[0] for d in descs],
                                    [d[1] for d in descs])
            for i, d in enumerate(descs):
                block[i, 1] |= (d[2] & 0xFFFF) << 32 | (d[3] & 0xFFFF) << 48
                block[i, 2] = d[4]
            return block
        block = self.data_in.try_pop_desc_block(max_frames)
        if block is not None:
            self.frames_in += len(block)
        return block

    def to_lvrm_desc_block(self, block) -> int:
        """Hand back a routed ``(n, 3)`` descriptor block with one
        publication; returns how many the ring accepted."""
        pushed = self.data_out.try_push_desc_block(block)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    def free_frame(self, offset: int) -> None:
        """Release an arena chunk this VRI consumed but will not forward
        (no-route drop, overflow) back to the owner."""
        self.arena.free(offset, self.arena_reclaim)

    def to_lvrm_many(self, routed: Sequence[Tuple[int, bytes]]) -> int:
        """Hand back many (out_iface, frame) pairs with one publication.

        Returns how many were accepted (the ring may fill mid-batch).
        """
        pack = _OUT_HEADER.pack
        records = []
        for out_iface, frame in routed:
            if not 0 <= out_iface <= 0xFFFF:
                raise ValueError(f"out_iface out of range: {out_iface}")
            records.append(pack(out_iface) + bytes(frame))
        pushed = self.data_out.try_push_many(records)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    @staticmethod
    def pack_output(out_iface: int, frame) -> bytes:
        """Build the outgoing-record encoding of ``(iface, frame)``.

        For callers that need the raw record — e.g. to prepend a latency
        probe — before handing it to :meth:`push_records`.  Accepts any
        bytes-like frame; a borrowed ``memoryview`` is copied here (its
        one unavoidable copy — the record must outlive the ring slot).
        """
        if not 0 <= out_iface <= 0xFFFF:
            raise ValueError(f"out_iface out of range: {out_iface}")
        return _OUT_HEADER.pack(out_iface) + bytes(frame)

    def push_records(self, records: Sequence[bytes]) -> int:
        """Push pre-built outgoing records in one publication."""
        pushed = self.data_out.try_push_many(records)
        if pushed:
            self.frames_out += pushed
            flush = getattr(self.data_out, "flush", None)
            if flush is not None:
                flush()
        return pushed

    @staticmethod
    def split_output(record: bytes) -> Tuple[int, bytes]:
        """LVRM-side: split an outgoing record into (iface, frame)."""
        (iface,) = _OUT_HEADER.unpack_from(record)
        return iface, record[_OUT_HEADER.size:]

    # -- control plane -------------------------------------------------------------
    def recv_control(self) -> Optional[ControlEvent]:
        record = self.ctrl_in.try_pop()
        return None if record is None else decode_event(record)

    def send_control(self, event: ControlEvent) -> bool:
        if event.seq == 0:
            # Stamp 1-based so 0 keeps meaning "unstamped"; skip 0 on
            # wrap for the same reason.
            self._ctrl_seq = (self._ctrl_seq % 0xFFFF) + 1
            event = replace(event, seq=self._ctrl_seq)
        ok = self.ctrl_out.try_push(encode_event(event))
        if ok:
            flush = getattr(self.ctrl_out, "flush", None)
            if flush is not None:
                flush()
        return ok

    def _report_rate(self) -> None:
        rate = self._estimator.rate()
        payload = struct.pack("<d", rate)
        self.send_control(ControlEvent(KIND_SERVICE_RATE, self.vri_id, 0,
                                       payload))

    def close(self) -> None:
        for ring in (self.data_in, self.data_out, self.ctrl_in, self.ctrl_out):
            ring.close()
        if self.arena is not None:
            self.arena.close()
        for segment in self._segments:
            # Attached (non-owner) segments: detach only.
            segment.close()
