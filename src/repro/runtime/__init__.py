"""The real-OS-process LVRM backend.

Everything the DES models, made literal on the host this library runs
on: VRIs are genuine operating-system processes, the IPC queues are the
lock-free SPSC rings of :mod:`repro.ipc.ring` living in POSIX shared
memory, queue identifiers cross the process boundary in the child's
arguments (the paper's ``shmget()`` identifier passing), and VRIs are
pinned to CPU cores with ``os.sched_setaffinity`` where the host allows.

This backend will not forward a gigabit — Python per-frame costs are
three orders of magnitude above the C++ original's, which is exactly why
the figures are reproduced on the calibrated DES — but it proves the
*mechanism*: the monitor hierarchy, the shared-memory data plane, the
balancing and the control path all run for real, and the tests exercise
them cross-process.
"""

from repro.runtime.monitor import RuntimeLvrm, RuntimeVriHandle
from repro.runtime.api import VriSideApi
from repro.runtime.supervisor import Supervisor, SupervisorPolicy

__all__ = ["RuntimeLvrm", "RuntimeVriHandle", "VriSideApi",
           "Supervisor", "SupervisorPolicy"]
