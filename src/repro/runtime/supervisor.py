"""Supervised recovery for the runtime backend (docs/RELIABILITY.md).

The DES supervisor lives inside :class:`~repro.core.lvrm.Lvrm`; its
real-process twin is this class, layered on top of
:class:`~repro.runtime.monitor.RuntimeLvrm`.  One :meth:`poll` call is
one supervision sweep:

1. absorb heartbeats (``pump_control``);
2. declare workers **crashed** (process exited) or **hung** (alive but
   no heartbeat for longer than the timeout) and fail them over —
   retire the handle, unlink its rings, drop the slot;
3. within the per-slot restart budget, schedule a replacement under
   bounded exponential backoff; past the budget the slot is *degraded*
   and the monitor simply runs with fewer workers;
4. when the sharded dispatch plane is armed (``dispatch_shards > 1``),
   sweep the dispatcher shards too: a crashed or hung shard is
   restarted in place over its original rings (no budget — a dead
   shard strands 1/K of the VRIs, and the splitter's resteer only
   covers new traffic while it's down);
5. perform every scheduled respawn whose backoff has expired, and tell
   the fresh worker which attempt it is (``KIND_RESTART``).

The per-slot state machine (diagrammed in docs/RELIABILITY.md)::

    RUNNING --crash/hang--> RESTARTING --backoff expired--> RUNNING
       |                        |
       +--budget exhausted------+--> DEGRADED (terminal)

The class never starts threads: callers drive it from their own event
loop (or :meth:`run_for` for scripted scenarios), which keeps the
monitor single-threaded like the thesis' LVRM process.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeBackendError
from repro.ipc.messages import ControlEvent, KIND_RESTART
from repro.obs.registry import default_registry
from repro.obs.slo import SloRule, SloWatchdog
from repro.obs.trace import TRACER as _TRACE
from repro.runtime.monitor import RuntimeLvrm, RuntimeVriHandle

__all__ = ["Supervisor", "SupervisorPolicy",
           "RUNNING", "RESTARTING", "DEGRADED"]

#: Per-slot supervision states.
RUNNING = "running"
RESTARTING = "restarting"
DEGRADED = "degraded"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Recovery knobs (the runtime twins of ``LvrmConfig``'s)."""

    #: A worker whose last heartbeat is older than this is hung.  Only
    #: enforced when the monitor spawns workers with heartbeats enabled
    #: (``heartbeat_interval > 0``); otherwise hang detection is off and
    #: only crashes are caught.
    heartbeat_timeout: float = 2.0
    #: First restart delay; doubles per restart the slot already used,
    #: capped at ``restart_backoff_max``.
    restart_backoff: float = 0.1
    restart_backoff_max: float = 2.0
    #: Restarts each slot is entitled to before it degrades.
    restart_budget: int = 3
    #: Directory for flight-recorder post-mortem dumps on failover;
    #: ``None`` disables dumping (the recorder still retains context).
    postmortem_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.heartbeat_timeout <= 0:
            raise RuntimeBackendError("heartbeat_timeout must be positive")
        if self.restart_backoff <= 0 or self.restart_backoff_max <= 0:
            raise RuntimeBackendError("restart backoffs must be positive")
        if self.restart_budget < 0:
            raise RuntimeBackendError("restart_budget cannot be negative")

    def backoff_for(self, restarts_used: int) -> float:
        """Bounded exponential backoff before restart N+1."""
        return min(self.restart_backoff * (2 ** restarts_used),
                   self.restart_backoff_max)


class Supervisor:
    """Crash/hang detection and budgeted restart for ``RuntimeLvrm``."""

    def __init__(self, lvrm: RuntimeLvrm,
                 policy: SupervisorPolicy = SupervisorPolicy(),
                 slo_rules: Sequence[SloRule] = ()):
        self.lvrm = lvrm
        self.policy = policy
        self.state: Dict[int, str] = {v.vri_id: RUNNING for v in lvrm.vris}
        self._restarts_used: Dict[int, int] = {}
        #: Scheduled respawns: (vri_id, core_id, not_before, attempt).
        self._pending: List[Tuple[int, Optional[int], float, int]] = []
        #: Quality objectives swept alongside liveness each poll().
        #: Breach edges auto-dump the monitor's flight recorder into the
        #: same post-mortem directory failovers use.
        self.watchdog = (SloWatchdog(slo_rules, default_registry(),
                                     clock=time.monotonic,
                                     track=f"slo-rt{lvrm.obs_id}",
                                     scope_labels={"rt": lvrm.obs_id},
                                     dump_dir=policy.postmortem_dir,
                                     recorder=lvrm.recorder)
                         if slo_rules else None)
        self._postmortems = 0
        #: Monotonic count of debounced worker deaths.  The cluster
        #: failure detector (repro.cluster.director) reads this instead
        #: of re-detecting the same corpse from process liveness: a
        #: death is counted cluster-wide only when this epoch advances,
        #: so a crash this supervisor already failed over is never
        #: double-counted.
        self.death_epoch = 0
        # /healthz reads the slot state machine through the monitor.
        lvrm.supervisor = self
        reg = default_registry()
        labels = {"rt": lvrm.obs_id}
        self.c_failovers = reg.counter(
            "supervisor_failovers_total",
            "worker failures (crash or hang) the supervisor failed over",
            **labels)
        self.c_restarts = reg.counter(
            "supervisor_restarts_total",
            "worker replacements the supervisor spawned after a failure",
            **labels)
        self.c_degraded = reg.counter(
            "supervisor_degraded_total",
            "failures absorbed without a replacement (budget exhausted)",
            **labels)
        self.c_shard_failovers = reg.counter(
            "supervisor_shard_failovers_total",
            "dispatcher-shard failures (crash or hang) restarted in place",
            **labels)

    # -- read-through counters ------------------------------------------------
    @property
    def failovers(self) -> int:
        return self.c_failovers.value

    @property
    def restarts(self) -> int:
        return self.c_restarts.value

    @property
    def degraded(self) -> int:
        return self.c_degraded.value

    # -- the sweep ------------------------------------------------------------
    def poll(self) -> int:
        """One supervision sweep; returns how many workers were failed
        over in this sweep (crash + hang)."""
        self.lvrm.pump_control()  # absorb heartbeats (and relay ctrl)
        now = time.monotonic()
        hb_enabled = (self.lvrm.heartbeat_interval > 0)
        failed = 0
        for vri in list(self.lvrm.vris):
            crashed = not vri.process.is_alive()
            hung = (not crashed and hb_enabled
                    and now - vri.last_heartbeat
                    > self.policy.heartbeat_timeout)
            if not (crashed or hung):
                continue
            failed += 1
            self._fail_over(vri, "crash" if crashed else "hang", now)
        failed += self._sweep_shards(now, hb_enabled)
        self._respawn_due(now)
        if self.watchdog is not None:
            breaches = self.watchdog.evaluate(
                now=now, heartbeat_ages=self.lvrm.heartbeat_ages())
            overload = getattr(self.lvrm, "overload", None)
            if overload is not None:
                # Latency breaches tighten low-priority admission before
                # queues overflow into supervisor-visible drops.
                overload.note_slo(any(b.get("kind") == "p99_latency_ms"
                                      for b in breaches))
        return failed

    def _sweep_shards(self, now: float, hb_enabled: bool) -> int:
        """Liveness sweep over the sharded dispatch plane (when armed).

        Dispatcher shards differ from worker slots: a dead shard
        strands 1/K of the VRIs (the splitter resteers its buckets to
        survivors meanwhile), so shards are restarted in place over
        their original Lamport rings — queued ingest survives — with
        no budget or backoff.  A shard that heartbeats but stopped
        draining is caught by the same heartbeat timeout as workers."""
        plane = getattr(self.lvrm, "_plane", None)
        if plane is None or plane.stopped:
            return 0
        failed = 0
        for sid in plane.dead_shards():
            failed += 1
            self.c_shard_failovers.inc()
            self.lvrm.recorder.note("supervisor.shard_failover", ts=now,
                                    shard=sid, reason="crash")
            if _TRACE.enabled:
                _TRACE.instant("supervisor.shard_failover", ts=now,
                               cat="replay", track="lvrm", shard=sid,
                               reason="crash")
            plane.restart_shard(sid)
        if hb_enabled:
            for sid, age in plane.heartbeat_ages().items():
                if age <= self.policy.heartbeat_timeout:
                    continue
                failed += 1
                self.c_shard_failovers.inc()
                self.lvrm.recorder.note("supervisor.shard_failover",
                                        ts=now, shard=sid, reason="hang")
                if _TRACE.enabled:
                    _TRACE.instant("supervisor.shard_failover", ts=now,
                                   cat="replay", track="lvrm", shard=sid,
                                   reason="hang")
                plane.restart_shard(sid)  # kills the hung process first
        return failed

    def _postmortem(self, slot: int, reason: str) -> Optional[str]:
        """Dump the monitor's flight recorder for this failure; returns
        the file path (None when dumping is off or the write failed)."""
        if self.policy.postmortem_dir is None:
            return None
        self._postmortems += 1
        path = os.path.join(
            self.policy.postmortem_dir,
            f"postmortem-rt{self.lvrm.obs_id}-vri{slot}"
            f"-{reason}-{self._postmortems}.txt")
        try:
            os.makedirs(self.policy.postmortem_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                self.lvrm.recorder.dump(
                    fh, reason=f"vri{slot} {reason} failover")
        except OSError:
            return None  # a failed dump must never block the failover
        return path

    def _fail_over(self, vri: RuntimeVriHandle, reason: str,
                   now: float) -> None:
        slot = vri.vri_id
        self.lvrm.remove_worker(vri, reason=reason)  # kills a hung one
        self.c_failovers.inc()
        self.death_epoch += 1
        postmortem = self._postmortem(slot, reason)
        note = {"vri": slot, "reason": reason,
                "survivors": len(self.lvrm.vris)}
        if postmortem is not None:
            note["postmortem"] = postmortem
        self.lvrm.recorder.note("supervisor.failover", ts=now, **note)
        if _TRACE.enabled:
            _TRACE.instant("supervisor.failover", ts=now, cat="replay",
                           track="lvrm", vri=slot, reason=reason)
        used = self._restarts_used.get(slot, 0)
        if used >= self.policy.restart_budget:
            self.state[slot] = DEGRADED
            self.c_degraded.inc()
            self.lvrm.recorder.note("supervisor.degraded", ts=now,
                                    vri=slot, restarts_used=used)
            if _TRACE.enabled:
                _TRACE.instant("supervisor.degraded", ts=now,
                               cat="replay", track="lvrm", vri=slot,
                               restarts_used=used)
            return
        self._restarts_used[slot] = used + 1
        backoff = self.policy.backoff_for(used)
        self.state[slot] = RESTARTING
        self._pending.append((slot, vri.core_id, now + backoff, used + 1))
        self.lvrm.recorder.note("supervisor.schedule_restart", ts=now,
                                vri=slot, attempt=used + 1,
                                backoff=backoff)
        if _TRACE.enabled:
            _TRACE.instant("supervisor.schedule_restart", ts=now,
                           cat="replay", track="lvrm", vri=slot,
                           attempt=used + 1, backoff=backoff)

    def _respawn_due(self, now: float) -> None:
        still: List[Tuple[int, Optional[int], float, int]] = []
        for slot, core_id, not_before, attempt in self._pending:
            if not_before > now:
                still.append((slot, core_id, not_before, attempt))
                continue
            handle = self.lvrm.add_worker(slot, core_id)
            self.state[slot] = RUNNING
            self.c_restarts.inc()
            self.lvrm.send_control(ControlEvent(
                KIND_RESTART, 0, slot, struct.pack("<I", attempt)))
            self.lvrm.recorder.note("supervisor.restart",
                                    ts=time.monotonic(), vri=slot,
                                    attempt=attempt,
                                    pid=handle.process.pid)
            if _TRACE.enabled:
                _TRACE.instant("supervisor.restart", ts=time.monotonic(),
                               cat="replay", track="lvrm", vri=slot,
                               attempt=attempt)
        self._pending = still

    # -- scripted driving loop --------------------------------------------------
    def run_for(self, duration: float, interval: float = 0.05) -> None:
        """Poll every ``interval`` seconds for ``duration`` seconds —
        the scripted-scenario convenience; real applications call
        :meth:`poll` from their own loop."""
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            self.poll()
            time.sleep(interval)
