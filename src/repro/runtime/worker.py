"""The VRI worker process entry point.

Runs inside a child OS process spawned by
:class:`~repro.runtime.monitor.RuntimeLvrm`.  The worker:

1. pins itself to its assigned CPU core (``os.sched_setaffinity``) when
   the host exposes that core;
2. attaches to its four shared-memory rings by name (the identifiers
   arrive in the worker's arguments, like the thesis' ``shmget()`` ids);
3. loops with control-before-data priority: control events first, then
   one data frame — parse Ethernet/IPv4 with the real codecs, LPM-route
   the destination, echo the frame back on the outgoing ring tagged with
   the chosen interface;
4. exits on a STOP control event (the cooperative sibling of the
   monitor's ``kill()`` hard path, which the monitor also implements).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import struct

import numpy as np

from repro.ipc.desc import FLAG_PROBE
from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT, KIND_PING,
                                KIND_RESTART, KIND_STATS, KIND_STOP,
                                encode_stats_chunks)
from repro.ipc.wait import AimdBatcher, WaitPolicy
from repro.kernels import make_kernel
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Registry
from repro.obs.spans import PROBE_MAGIC_BYTES, decode_in_probe, encode_out_probe
from repro.routing.mapfile import parse_map_lines
from repro.runtime.api import VriSideApi

__all__ = ["WorkerArgs", "vri_worker_main"]

#: Data-burst AIMD bounds: bursts grow toward ``_BURST_HI`` under load
#: (amortizing ring synchronization) and decay to ``_BURST_LO`` when
#: idle, which also bounds how long control events wait behind data
#: (control is still checked every pass).
_BURST_LO = 8
_BURST_HI = 256


@dataclass(frozen=True)
class WorkerArgs:
    """Everything a worker needs, picklable for spawn-style start."""

    vri_id: int
    core_id: Optional[int]
    data_in: str
    data_out: str
    ctrl_in: str
    ctrl_out: str
    map_lines: Tuple[str, ...]
    #: Stop after this many seconds even without a STOP event (a safety
    #: net so an orphaned worker cannot outlive a crashed test runner).
    max_lifetime: float = 60.0
    #: Which lock-free queue implementation the rings use.
    ring_impl: str = "lamport"
    #: Measure and report the service rate upstream (thesis §3.6, the
    #: input to dynamic thresholds).
    report_service_rate: bool = False
    #: Send a KIND_HEARTBEAT control event this often (seconds); 0
    #: disables.  The supervisor's liveness signal: heartbeats ride the
    #: control ring, so a worker that still emits them is by definition
    #: draining control — i.e. alive and scheduling.
    heartbeat_interval: float = 0.0
    #: Ship a snapshot of the worker-local metrics registry upstream
    #: this often (seconds) as chunked KIND_STATS events; 0 disables.
    #: Strictly best-effort and strictly behind heartbeats: the due
    #: heartbeat always goes first, and the snapshot is abandoned the
    #: moment the control ring fills (the next one carries cumulative
    #: state, so nothing is lost but freshness).
    stats_interval: float = 0.0
    #: Shared-memory name of the frame arena (zero-copy data plane);
    #: None selects the legacy copy plane.  With an arena, the data
    #: rings carry 24-byte descriptors and this worker routes frames
    #: straight out of the shared segment.
    arena: Optional[str] = None
    #: Index of this worker's SPSC reclaim ring in the arena (its
    #: private channel for handing dropped frames' chunks back).
    arena_reclaim: int = 0
    #: Idle-wait behaviour when the incoming ring is empty: ``spin`` |
    #: ``yield`` | ``sleep`` (:class:`repro.ipc.wait.WaitPolicy`).
    wait_strategy: str = "sleep"
    #: Which burst kernel routes the data bursts: ``scalar`` | ``numpy``
    #: | ``cffi`` (:mod:`repro.kernels`; ``cffi`` auto-degrades to numpy
    #: without a compiler).
    kernel: str = "scalar"
    #: Arm the kernel's RFC 1812 forwarding rewrite (TTL decrement +
    #: incremental checksum, TTL-expiry drops) on both data planes:
    #: in-place in the arena buffer, or into private frame copies on
    #: the legacy copy plane.
    kernel_rewrite: bool = False
    #: Whether the monitor may inject latency probes (span sampling on).
    #: When False the per-burst probe scans are skipped — probes only
    #: originate upstream, so the worker cannot miss one.
    probe_frames: bool = True


def _pin(core_id: Optional[int]) -> None:
    if core_id is None or not hasattr(os, "sched_setaffinity"):
        return
    try:
        available = os.sched_getaffinity(0)
        if core_id in available:
            os.sched_setaffinity(0, {core_id})
    except OSError:
        # Containers routinely forbid affinity changes; the worker still
        # functions, just unpinned.
        pass


def vri_worker_main(args: WorkerArgs) -> None:
    """Child-process main loop.

    Keeps a local flight recorder of lifecycle and control events (never
    per-frame).  If anything escapes the loop, the recorder dumps the
    last events to stderr before the exception propagates — the only
    post-mortem a crashed child can leave behind.
    """
    recorder = FlightRecorder(128)
    recorder.note("worker.start", ts=time.monotonic(), vri=args.vri_id,
                  core=args.core_id, pid=os.getpid(),
                  ring_impl=args.ring_impl)
    _pin(args.core_id)
    routes, _arp = parse_map_lines(args.map_lines)
    # The burst hot path lives behind the swappable kernel interface;
    # the scalar kernel keeps the memoized per-frame reference path.
    kernel = make_kernel(args.kernel, routes,
                         rewrite_ttl=args.kernel_rewrite)
    recorder.note("worker.kernel", ts=time.monotonic(), vri=args.vri_id,
                  kind=kernel.describe())
    api = VriSideApi(args.vri_id, args.data_in, args.data_out,
                     args.ctrl_in, args.ctrl_out,
                     ring_impl=args.ring_impl,
                     report_service_rate=args.report_service_rate,
                     report_every=64,
                     arena_name=args.arena,
                     arena_reclaim=args.arena_reclaim)
    # Worker-local telemetry: a *fresh* registry (never the process-wide
    # default — a forked child would inherit the monitor's instruments),
    # using the same family names as the DES VriRuntime so the merged
    # cluster view and a DES run expose identical metric names.
    registry = Registry()
    vri_label = str(args.vri_id)
    c_frames = registry.counter(
        "vri_frames_total", "frames the VRI popped from its incoming ring",
        vri=vri_label)
    c_forwarded = registry.counter(
        "vri_forwarded_total", "frames the VRI routed and handed back",
        vri=vri_label)
    c_no_route = registry.counter(
        "vri_dropped_no_route_total",
        "frames dropped because LPM found no route", vri=vri_label)
    c_stats_sent = registry.counter(
        "vri_stats_snapshots_total", "registry snapshots shipped upstream",
        vri=vri_label)
    c_stats_abandoned = registry.counter(
        "vri_stats_abandoned_total",
        "snapshots abandoned mid-send because the control ring filled",
        vri=vri_label)
    c_overflow = registry.counter(
        "vri_dropped_overflow_total",
        "routed frames dropped because the outgoing ring was full",
        vri=vri_label)
    c_wait_sleeps = registry.counter(
        "wait_sleeps_total",
        "idle sleeps taken by the worker's wait policy", vri=vri_label)
    c_lpm_hits = registry.counter(
        "lpm_cache_hit_total",
        "cached-LPM lookups answered from the route table's result cache",
        vri=vri_label)
    c_lpm_misses = registry.counter(
        "lpm_cache_miss_total",
        "cached-LPM lookups that had to walk the trie", vri=vri_label)
    h_batch = registry.histogram(
        "ring_batch_size", "records moved per ring transaction",
        buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        vri=vri_label, side="worker")
    policy = WaitPolicy(args.wait_strategy)
    sleeps_seen = 0
    lpm_hits_seen = lpm_misses_seen = 0
    # Burst ceiling scales with ring depth (256 at the default 1024):
    # deeper rings exist to amortize hand-offs further, so the batcher
    # must be allowed to follow them up.
    ring_cap = getattr(api.data_in, "capacity", 0)
    batcher = AimdBatcher(_BURST_LO,
                          max(_BURST_HI, min(1024, ring_cap // 8)))
    stats_gen = 0
    # Largest KIND_STATS payload one control slot carries.
    stats_budget = (api.ctrl_out.max_record
                    - ControlEvent(KIND_STATS, args.vri_id, 0).size)
    deadline = time.monotonic() + args.max_lifetime
    next_heartbeat = (time.monotonic() + args.heartbeat_interval
                      if args.heartbeat_interval > 0 else float("inf"))
    next_stats = (time.monotonic() + args.stats_interval
                  if args.stats_interval > 0 else float("inf"))
    try:
        with recorder.on_error(reason=f"vri{args.vri_id} worker crashed"):
            while time.monotonic() < deadline:
                now = time.monotonic()
                if now >= next_heartbeat:
                    # Liveness beacon to the monitor (dst 0 = LVRM).
                    api.send_control(ControlEvent(
                        KIND_HEARTBEAT, args.vri_id, 0,
                        struct.pack("<d", now)))
                    next_heartbeat = now + args.heartbeat_interval
                if now >= next_stats:
                    # Telemetry rides strictly behind the heartbeat
                    # (pushed above when due): ship the snapshot chunk
                    # by chunk, abandoning on the first full slot.
                    # Sync the LPM cache counters by delta first — the
                    # table keeps bare attributes so the hot path never
                    # touches an instrument (same trick as wait sleeps).
                    hits = getattr(routes, "cache_hits", 0)
                    misses = getattr(routes, "cache_misses", 0)
                    c_lpm_hits.inc(hits - lpm_hits_seen)
                    c_lpm_misses.inc(misses - lpm_misses_seen)
                    lpm_hits_seen, lpm_misses_seen = hits, misses
                    stats_gen += 1
                    chunks = encode_stats_chunks(registry.snapshot(),
                                                 stats_gen, stats_budget)
                    for chunk in chunks:
                        if not api.send_control(ControlEvent(
                                KIND_STATS, args.vri_id, 0, chunk)):
                            c_stats_abandoned.inc()
                            break
                    else:
                        c_stats_sent.inc()
                    next_stats = now + args.stats_interval
                event = api.recv_control()
                if event is not None:
                    recorder.note("worker.ctrl", ts=time.monotonic(),
                                  vri=args.vri_id, kind=event.kind,
                                  src=event.src_vri)
                    if event.kind == KIND_STOP:
                        return
                    if event.kind == KIND_RESTART:
                        # Informational: which restart attempt we are.
                        (attempt,) = struct.unpack("<I", event.payload)
                        recorder.note("worker.restarted",
                                      ts=time.monotonic(),
                                      vri=args.vri_id, attempt=attempt)
                        continue
                    if event.kind == KIND_PING:
                        # Bounce pings back to the requested VRI through
                        # LVRM.
                        api.send_control(ControlEvent(
                            KIND_PING, args.vri_id, event.src_vri,
                            event.payload))
                    continue

                # Control stayed first; now drain an adaptive burst of
                # data frames in one ring transaction each way.
                if api.arena is not None:
                    got = _serve_arena(api, kernel, batcher.size,
                                       c_frames, c_forwarded, c_no_route,
                                       c_overflow,
                                       probe_frames=args.probe_frames)
                else:
                    got = _serve_copy(api, kernel, batcher.size,
                                      c_frames, c_forwarded, c_no_route,
                                      probe_frames=args.probe_frames)
                batcher.update(got)
                if got:
                    h_batch.observe(got)
                    policy.reset()
                else:
                    policy.idle()
                    if policy.sleeps != sleeps_seen:
                        c_wait_sleeps.inc(policy.sleeps - sleeps_seen)
                        sleeps_seen = policy.sleeps
            recorder.note("worker.lifetime_expired", ts=time.monotonic(),
                          vri=args.vri_id)
    finally:
        api.close()


def _out_headroom(ring) -> int:
    """Free slots the worker can *prove* on its outgoing ring.

    The worker is the ring's only producer, so its tail is exact and a
    stale consumer index can only under-state the free space — popping
    no more than this many frames guarantees the echo push never
    overflows.  Without the clamp a worker that outruns the monitor for
    one scheduler timeslice (easy on a single-core host now the kernels
    route several bursts per slice) fills ``data_out`` and silently
    loses the overflow."""
    return ring.capacity - len(ring)


def _serve_copy(api: VriSideApi, kernel, burst: int,
                c_frames, c_forwarded, c_no_route,
                probe_frames: bool = True) -> int:
    """One legacy-plane burst: borrow the incoming records as zero-copy
    ring views (no ``.tobytes()`` on pop), route the whole burst through
    the kernel, and build the outgoing records — whose construction is
    the one copy — before the borrowed slots are released.  Returns how
    many frames were popped.
    """
    burst = min(burst, _out_headroom(api.data_out))
    if burst <= 0:
        return 0
    frames = api.from_lvrm_many_into(burst)
    if not frames:
        return 0
    t_pop = time.monotonic()
    c_frames.inc(len(frames))
    # Unwrap latency probes first so the kernel sees plain frames; the
    # kernel then routes probe and non-probe frames in one batch.
    stamps: List[Optional[Tuple[float, float]]] = [None] * len(frames)
    plain = list(frames)
    if probe_frames:
        for i, raw in enumerate(frames):
            if raw[:4] == PROBE_MAGIC_BYTES:
                # A sampled frame carries a latency probe: strip the
                # monitor's stamps, add ours around service.
                probe_stamps, frame = decode_in_probe(raw)
                stamps[i] = probe_stamps
                plain[i] = frame
    if kernel.rewrite_ttl:
        # Forwarding mode: surviving frames come back as private
        # rewritten copies (TTL-1, RFC 1624 checksum); drops keep the
        # borrowed view, which is fine — they are never repacked.
        ifaces, plain = kernel.route_frames_rewrite(plain)
    else:
        ifaces = kernel.route_frames(plain)
    records = []
    for frame, iface, probe in zip(plain, ifaces, stamps):
        if iface is None:
            c_no_route.inc()
            continue
        record = api.pack_output(iface, frame)
        if probe is not None:
            record = encode_out_probe(probe[0], probe[1], t_pop,
                                      time.monotonic(), record)
        records.append(record)
    # Every record now owns its bytes; the borrowed views can die.
    api.release_input()
    if records:
        c_forwarded.inc(api.push_records(records))
    return len(frames)


def _serve_arena(api: VriSideApi, kernel, burst: int,
                 c_frames, c_forwarded, c_no_route, c_overflow,
                 probe_frames: bool = True) -> int:
    """One arena-plane burst: pop descriptors and hand the whole block
    to the burst kernel — parse, LPM, and (if armed) header rewrite run
    over the shared segment in one batched pass, copying zero bytes —
    then echo the surviving descriptors back with the output interface
    filled in.  Dropped frames' chunks go home through this worker's
    reclaim ring.  Returns how many descriptors were popped."""
    burst = min(burst, _out_headroom(api.data_out))
    if burst <= 0:
        return 0
    block = api.from_lvrm_desc_block(burst)
    if block is None:
        return 0
    t_pop = time.monotonic()
    n = len(block)
    c_frames.inc(n)
    arena = api.arena
    word1 = block[:, 1]
    offsets = np.ascontiguousarray(block[:, 0])
    lengths = np.ascontiguousarray(word1 & np.uint64(0xFFFFFFFF))
    ifaces = kernel.route_block(arena.buffer, offsets, lengths)
    keep = ifaces >= 0
    n_keep = int(keep.sum())
    if n_keep < n:
        c_no_route.inc(n - n_keep)
        for off in offsets[~keep].tolist():
            api.free_frame(off)
    if probe_frames:
        probes = (word1 >> np.uint64(48)) & np.uint64(FLAG_PROBE)
        if probes.any():
            # Consumer half of the latency span, stamped into the probed
            # chunk's headroom next to the producer's pair.
            t_done = time.monotonic()
            for i in np.flatnonzero(keep & (probes != 0)).tolist():
                arena.write_stamps(int(offsets[i]), int(lengths[i]), 1,
                                   t_pop, t_done)
    if n_keep:
        if n_keep == n:
            out, out_ifaces = block, ifaces
        else:
            out, out_ifaces = block[keep], ifaces[keep]
        # Fill word 1's iface half-word (bits 32..47) for the whole run.
        kernel.fill_ifaces(out, out_ifaces)
        pushed = api.to_lvrm_desc_block(out)
        c_forwarded.inc(pushed)
        if pushed < len(out):
            # Outgoing ring full: the monitor will never see these —
            # free their chunks rather than leak them.
            dropped = out[pushed:, 0].tolist()
            c_overflow.inc(len(dropped))
            for off in dropped:
                api.free_frame(off)
    return n
