"""The VRI worker process entry point.

Runs inside a child OS process spawned by
:class:`~repro.runtime.monitor.RuntimeLvrm`.  The worker:

1. pins itself to its assigned CPU core (``os.sched_setaffinity``) when
   the host exposes that core;
2. attaches to its four shared-memory rings by name (the identifiers
   arrive in the worker's arguments, like the thesis' ``shmget()`` ids);
3. loops with control-before-data priority: control events first, then
   one data frame — parse Ethernet/IPv4 with the real codecs, LPM-route
   the destination, echo the frame back on the outgoing ring tagged with
   the chosen interface;
4. exits on a STOP control event (the cooperative sibling of the
   monitor's ``kill()`` hard path, which the monitor also implements).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import struct

from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT, KIND_PING,
                                KIND_RESTART, KIND_STATS, KIND_STOP,
                                encode_stats_chunks)
from repro.net.packet import parse_ethernet, parse_ipv4
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Registry
from repro.obs.spans import PROBE_MAGIC_BYTES, decode_in_probe, encode_out_probe
from repro.routing.mapfile import parse_map_lines
from repro.runtime.api import VriSideApi

__all__ = ["WorkerArgs", "vri_worker_main"]

#: Idle back-off: a real VRI busy-polls; a Python worker yields the GIL
#: and the CPU briefly so single-core test hosts make progress.
_IDLE_SLEEP = 100e-6

#: Max data frames handled per loop iteration; bounds how long control
#: events can wait behind data (control is still checked every pass).
_DATA_BURST = 64


@dataclass(frozen=True)
class WorkerArgs:
    """Everything a worker needs, picklable for spawn-style start."""

    vri_id: int
    core_id: Optional[int]
    data_in: str
    data_out: str
    ctrl_in: str
    ctrl_out: str
    map_lines: Tuple[str, ...]
    #: Stop after this many seconds even without a STOP event (a safety
    #: net so an orphaned worker cannot outlive a crashed test runner).
    max_lifetime: float = 60.0
    #: Which lock-free queue implementation the rings use.
    ring_impl: str = "lamport"
    #: Measure and report the service rate upstream (thesis §3.6, the
    #: input to dynamic thresholds).
    report_service_rate: bool = False
    #: Send a KIND_HEARTBEAT control event this often (seconds); 0
    #: disables.  The supervisor's liveness signal: heartbeats ride the
    #: control ring, so a worker that still emits them is by definition
    #: draining control — i.e. alive and scheduling.
    heartbeat_interval: float = 0.0
    #: Ship a snapshot of the worker-local metrics registry upstream
    #: this often (seconds) as chunked KIND_STATS events; 0 disables.
    #: Strictly best-effort and strictly behind heartbeats: the due
    #: heartbeat always goes first, and the snapshot is abandoned the
    #: moment the control ring fills (the next one carries cumulative
    #: state, so nothing is lost but freshness).
    stats_interval: float = 0.0


def _pin(core_id: Optional[int]) -> None:
    if core_id is None or not hasattr(os, "sched_setaffinity"):
        return
    try:
        available = os.sched_getaffinity(0)
        if core_id in available:
            os.sched_setaffinity(0, {core_id})
    except OSError:
        # Containers routinely forbid affinity changes; the worker still
        # functions, just unpinned.
        pass


def vri_worker_main(args: WorkerArgs) -> None:
    """Child-process main loop.

    Keeps a local flight recorder of lifecycle and control events (never
    per-frame).  If anything escapes the loop, the recorder dumps the
    last events to stderr before the exception propagates — the only
    post-mortem a crashed child can leave behind.
    """
    recorder = FlightRecorder(128)
    recorder.note("worker.start", ts=time.monotonic(), vri=args.vri_id,
                  core=args.core_id, pid=os.getpid(),
                  ring_impl=args.ring_impl)
    _pin(args.core_id)
    routes, _arp = parse_map_lines(args.map_lines)
    # Memoized LPM when the table offers it: a worker's steady-state
    # traffic revisits the same destinations frame after frame.
    route_get = getattr(routes, "get_cached", routes.get)
    api = VriSideApi(args.vri_id, args.data_in, args.data_out,
                     args.ctrl_in, args.ctrl_out,
                     ring_impl=args.ring_impl,
                     report_service_rate=args.report_service_rate,
                     report_every=64)
    # Worker-local telemetry: a *fresh* registry (never the process-wide
    # default — a forked child would inherit the monitor's instruments),
    # using the same family names as the DES VriRuntime so the merged
    # cluster view and a DES run expose identical metric names.
    registry = Registry()
    vri_label = str(args.vri_id)
    c_frames = registry.counter(
        "vri_frames_total", "frames the VRI popped from its incoming ring",
        vri=vri_label)
    c_forwarded = registry.counter(
        "vri_forwarded_total", "frames the VRI routed and handed back",
        vri=vri_label)
    c_no_route = registry.counter(
        "vri_dropped_no_route_total",
        "frames dropped because LPM found no route", vri=vri_label)
    c_stats_sent = registry.counter(
        "vri_stats_snapshots_total", "registry snapshots shipped upstream",
        vri=vri_label)
    c_stats_abandoned = registry.counter(
        "vri_stats_abandoned_total",
        "snapshots abandoned mid-send because the control ring filled",
        vri=vri_label)
    stats_gen = 0
    # Largest KIND_STATS payload one control slot carries.
    stats_budget = (api.ctrl_out.max_record
                    - ControlEvent(KIND_STATS, args.vri_id, 0).size)
    deadline = time.monotonic() + args.max_lifetime
    next_heartbeat = (time.monotonic() + args.heartbeat_interval
                      if args.heartbeat_interval > 0 else float("inf"))
    next_stats = (time.monotonic() + args.stats_interval
                  if args.stats_interval > 0 else float("inf"))
    try:
        with recorder.on_error(reason=f"vri{args.vri_id} worker crashed"):
            while time.monotonic() < deadline:
                now = time.monotonic()
                if now >= next_heartbeat:
                    # Liveness beacon to the monitor (dst 0 = LVRM).
                    api.send_control(ControlEvent(
                        KIND_HEARTBEAT, args.vri_id, 0,
                        struct.pack("<d", now)))
                    next_heartbeat = now + args.heartbeat_interval
                if now >= next_stats:
                    # Telemetry rides strictly behind the heartbeat
                    # (pushed above when due): ship the snapshot chunk
                    # by chunk, abandoning on the first full slot.
                    stats_gen += 1
                    chunks = encode_stats_chunks(registry.snapshot(),
                                                 stats_gen, stats_budget)
                    for chunk in chunks:
                        if not api.send_control(ControlEvent(
                                KIND_STATS, args.vri_id, 0, chunk)):
                            c_stats_abandoned.inc()
                            break
                    else:
                        c_stats_sent.inc()
                    next_stats = now + args.stats_interval
                event = api.recv_control()
                if event is not None:
                    recorder.note("worker.ctrl", ts=time.monotonic(),
                                  vri=args.vri_id, kind=event.kind,
                                  src=event.src_vri)
                    if event.kind == KIND_STOP:
                        return
                    if event.kind == KIND_RESTART:
                        # Informational: which restart attempt we are.
                        (attempt,) = struct.unpack("<I", event.payload)
                        recorder.note("worker.restarted",
                                      ts=time.monotonic(),
                                      vri=args.vri_id, attempt=attempt)
                        continue
                    if event.kind == KIND_PING:
                        # Bounce pings back to the requested VRI through
                        # LVRM.
                        api.send_control(ControlEvent(
                            KIND_PING, args.vri_id, event.src_vri,
                            event.payload))
                    continue

                # Control stayed first; now drain a bounded burst of data
                # frames in one ring transaction each way.
                frames = api.from_lvrm_many(_DATA_BURST)
                if not frames:
                    time.sleep(_IDLE_SLEEP)
                    continue
                t_pop = time.monotonic()
                c_frames.inc(len(frames))
                records = []
                for raw in frames:
                    if raw[:4] == PROBE_MAGIC_BYTES:
                        # A sampled frame carries a latency probe: strip
                        # the monitor's stamps, add ours around service.
                        stamps, frame = decode_in_probe(raw)
                        iface = _route(frame, route_get)
                        if iface is None:
                            c_no_route.inc()
                            continue
                        records.append(encode_out_probe(
                            stamps[0], stamps[1], t_pop, time.monotonic(),
                            api.pack_output(iface, frame)))
                    else:
                        iface = _route(raw, route_get)
                        if iface is None:
                            c_no_route.inc()
                            continue
                        records.append(api.pack_output(iface, raw))
                if records:
                    c_forwarded.inc(api.push_records(records))
            recorder.note("worker.lifetime_expired", ts=time.monotonic(),
                          vri=args.vri_id)
    finally:
        api.close()


def _route(frame: bytes, route_get) -> Optional[int]:
    """Minimal routing: parse headers, LPM on the destination IP."""
    try:
        _eth, ip_payload = parse_ethernet(frame)
        ip_hdr, _rest = parse_ipv4(ip_payload)
    except ValueError:
        return None  # not IPv4 / malformed: drop
    return route_get(ip_hdr.dst_ip)
