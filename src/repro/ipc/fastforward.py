"""FastForward-style SPSC queue (thesis §3.5, reference [17]).

Giacomoni et al.'s cache-optimized construction: instead of shared head
and tail indices (whose cache lines ping-pong between producer and
consumer), each *slot* carries its own full/empty flag.  The producer
and consumer keep private indices and communicate only through the slot
flags, so under steady flow each core touches a different cache line.

Layout per slot: ``[flag u32][len u32][payload]``; flag 0 = empty,
1 = full.  The flag store is the linearization point on both sides
(written after the payload by the producer, cleared after the copy by
the consumer).

Same record interface as :class:`~repro.ipc.ring.SpscRing`, so the
runtime backend can swap implementations (the extensibility the thesis
claims for its IPC component).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, QueueEmptyError, QueueFullError
from repro.ipc.desc import DESC, DESC_SIZE, DESC_WORDS

__all__ = ["FastForwardRing", "ff_bytes_needed"]

_HEADER = struct.Struct("<QQQQ")
_MAGIC = 0x4C56524D_46464F52  # "LVRMFFOR"
_LEN = struct.Struct("<I")

_HEADER_BYTES = 64
_DATA_OFF = 64
_FLAG_BYTES = 4

#: Scalar pops between consumer-side occupancy samples (the flag scan is
#: O(capacity), so the consumer amortizes it instead of paying per pop).
_POP_SAMPLE = 64


def ff_bytes_needed(capacity: int, slot_size: int) -> int:
    """Bytes required for a FastForward ring of this geometry.

    ``slot_size`` is the *payload* slot size (length prefix included),
    to match :func:`repro.ipc.ring.ring_bytes_needed` semantics.
    """
    if capacity < 1 or capacity & (capacity - 1):
        raise ConfigError(f"capacity must be a power of two, got {capacity}")
    if slot_size < _LEN.size + 1:
        raise ConfigError(f"slot_size too small: {slot_size}")
    if slot_size % 4:
        raise ConfigError(
            f"slot_size must be 4-byte aligned for the flag view, "
            f"got {slot_size}")
    return _DATA_OFF + capacity * (slot_size + _FLAG_BYTES)


class FastForwardRing:
    """Slot-flag SPSC queue over a shared buffer."""

    def __init__(self, buffer, capacity: int, slot_size: int,
                 create: bool = True):
        needed = ff_bytes_needed(capacity, slot_size)
        if len(buffer) < needed:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {needed}")
        self.capacity = capacity
        self.slot_size = slot_size
        #: Occupancy high-water mark.  FastForward deliberately has no
        #: shared indices, so occupancy is only observable by scanning
        #: slot flags — updated on :meth:`probe_occupancy`, when a push
        #: finds the ring full (occupancy == capacity), once per batched
        #: pop, and every :data:`_POP_SAMPLE` scalar pops (a full scan
        #: per pop would dominate the pop itself).
        self.hwm = 0
        self._pops_until_sample = _POP_SAMPLE
        self._stride = slot_size + _FLAG_BYTES
        #: Per-slot payload offsets into ``_data`` (skipping the flag).
        self._offsets = tuple(i * self._stride + _FLAG_BYTES
                              for i in range(capacity))
        self._buf = memoryview(buffer)
        self._data = self._buf[_DATA_OFF:_DATA_OFF + capacity * self._stride]
        #: One uint32 flag per slot, viewed with a stride.
        self._flags = np.frombuffer(
            self._data, dtype=np.uint32)[::self._stride // 4]
        # Private (per-process) cursors; never shared.
        self._push_idx = 0
        self._pop_idx = 0
        # Verified-slot credits, one per side.  A flag only ever goes
        # 0 -> 1 under the producer's pen and 1 -> 0 under the
        # consumer's, so a slot each side has *observed* in its own
        # favorable state stays that way until that side itself flips
        # it.  Each side can therefore bank the run length of one scan
        # and skip rescanning until the bank runs dry — turning the
        # per-call flag scan into an amortized one.
        self._free_credit = 0
        self._full_credit = 0
        #: Consumer scan-window hint: the last observed full-run length,
        #: so the steady-state scan covers one producer burst, not the
        #: whole flag array.
        self._scan_hint = 128
        #: Slots handed out as borrowed views but not yet released.
        self._pending_pop = 0
        #: Lazy ``(capacity, 7)`` u32 slot matrix (flag + six descriptor
        #: half-words) for block descriptor mode — the 28-byte stride
        #: rules out a u64 view, so blocks convert through u32.
        self._desc_matrix = None
        if create:
            _HEADER.pack_into(self._buf, 0, capacity, slot_size, _MAGIC, 0)
            for i in range(capacity):
                struct.pack_into("<I", self._data, i * self._stride, 0)
        else:
            cap, slot, magic, _ = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain a FastForwardRing")
            if (cap, slot) != (capacity, slot_size):
                raise ConfigError(
                    f"geometry mismatch: buffer has ({cap}, {slot}), "
                    f"caller expects ({capacity}, {slot_size})")

    @classmethod
    def attach(cls, buffer) -> "FastForwardRing":
        cap, slot, magic, _ = _HEADER.unpack_from(memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain a FastForwardRing")
        return cls(buffer, int(cap), int(slot), create=False)

    @property
    def max_record(self) -> int:
        return self.slot_size - _LEN.size

    def __len__(self) -> int:
        """Occupancy by scanning flags (O(capacity); diagnostics only —
        the FastForward design deliberately has no shared count)."""
        return int(np.count_nonzero(self._flags))

    @property
    def is_empty(self) -> bool:
        return self._flags[self._pop_idx] == 0

    @property
    def is_full(self) -> bool:
        return self._flags[self._push_idx] != 0

    # -- producer -----------------------------------------------------------
    def try_push(self, record: bytes) -> bool:
        if len(record) > self.max_record:
            raise ConfigError(
                f"record of {len(record)} bytes exceeds slot payload "
                f"{self.max_record}")
        idx = self._push_idx
        if self._flags[idx] != 0:
            # Consumer has not freed this slot yet: the ring is full
            # from the producer's point of view.
            if self.capacity > self.hwm:
                self.hwm = self.capacity
            return False
        off = idx * self._stride + _FLAG_BYTES
        _LEN.pack_into(self._data, off, len(record))
        self._data[off + _LEN.size:off + _LEN.size + len(record)] = record
        self._flags[idx] = 1  # publish
        self._push_idx = (idx + 1) & (self.capacity - 1)
        if self._free_credit:
            self._free_credit -= 1
        return True

    def _free_run(self, n_wanted: int) -> int:
        """Usable empty-slot run starting at the push cursor.

        Slots fill from ``_push_idx`` and drain from ``_pop_idx`` in
        order, so the empty slots always form one contiguous run (modulo
        capacity).  The producer banks the run it verified as
        ``_free_credit`` and only rescans (the whole remaining ring, at
        most two segments) when the bank can't cover the request.
        """
        credit = self._free_credit
        if credit >= n_wanted:
            return n_wanted
        flags = self._flags
        cap = self.capacity
        idx = (self._push_idx + credit) & (cap - 1)
        want = cap - credit
        run = 0
        while run < want:
            seg = min(want - run, cap - idx)
            used = np.flatnonzero(flags[idx:idx + seg])
            if used.size:
                run += int(used[0])
                break
            run += seg
            idx = 0
        self._free_credit = credit = credit + run
        return min(credit, n_wanted)

    def try_push_many(self, records: Sequence[bytes]) -> int:
        """Producer-only: push records until one doesn't fit.

        FastForward has no shared indices to amortize, so the batch win
        is in the flag traffic: the free run is found with one
        vectorized scan and published with one (or two, on wraparound)
        vectorized flag stores.  Publishing flags after all payloads of
        the run preserves the invariant the consumer relies on — a
        slot's payload is always written before its flag — regardless
        of the store order inside the vectorized assignment, because
        the consumer stops at the first empty flag and never reads
        past it.  Returns the number pushed.
        """
        n_req = min(len(records), self.capacity)
        if n_req == 0:
            return 0
        n = self._free_run(n_req)
        if n < n_req:
            # A full slot bounded the run: ring full from this side.
            if self.capacity > self.hwm:
                self.hwm = self.capacity
            if n == 0:
                return 0
        data = self._data
        offsets = self._offsets
        mask = self.capacity - 1
        lsize = _LEN.size
        max_record = self.max_record
        pack_into = _LEN.pack_into
        idx = self._push_idx
        for i in range(n):
            record = records[i]
            length = len(record)
            if length > max_record:
                raise ConfigError(
                    f"record of {length} bytes exceeds slot payload "
                    f"{max_record}")
            off = offsets[(idx + i) & mask]
            pack_into(data, off, length)
            start = off + lsize
            data[start:start + length] = record
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 1
        else:
            flags[idx:] = 1
            flags[:end - self.capacity] = 1
        self._push_idx = end & mask
        self._free_credit -= n
        return n

    def push(self, record: bytes) -> None:
        if not self.try_push(record):
            raise QueueFullError(f"ring full (capacity {self.capacity})")

    def probe_occupancy(self) -> int:
        """Sample current occupancy (flag scan) into ``hwm``."""
        occ = len(self)
        if occ > self.hwm:
            self.hwm = occ
        return occ

    # -- consumer -----------------------------------------------------------
    def try_pop(self) -> Optional[bytes]:
        idx = self._pop_idx
        if self._flags[idx] == 0:
            return None
        self._pops_until_sample -= 1
        if self._pops_until_sample <= 0:
            # Amortized consumer-side HWM sample (before the release, so
            # the occupancy this pop observed is included).
            self._pops_until_sample = _POP_SAMPLE
            self.probe_occupancy()
        off = self._offsets[idx]
        (length,) = _LEN.unpack_from(self._data, off)
        start = off + _LEN.size
        record = self._data[start:start + length].tobytes()
        self._flags[idx] = 0  # release
        self._pop_idx = (idx + 1) & (self.capacity - 1)
        if self._full_credit:
            self._full_credit -= 1
        return record

    def _full_run(self, n_wanted: int) -> int:
        """Length of the full-slot run starting at the pop cursor.

        By the same FIFO discipline as :meth:`_free_run`, the full slots
        form one contiguous run from ``_pop_idx`` — its length *is* the
        occupancy this side can observe.  The scan widens in windows so
        an unbounded pop on a lightly loaded ring stops at the first
        hole instead of sweeping the whole flag array, and the verified
        run is banked as ``_full_credit`` (mirror of
        :meth:`_free_run`'s producer-side bank).
        """
        credit = self._full_credit
        if credit >= n_wanted:
            return n_wanted
        flags = self._flags
        cap = self.capacity
        idx = (self._pop_idx + credit) & (cap - 1)
        want = cap - credit
        run = 0
        window = self._scan_hint
        while run < want:
            if not flags[idx]:
                # Scalar boundary probe: the run ends right here.
                break
            seg = min(want - run, window, cap - idx)
            chunk = flags[idx:idx + seg]
            if int(chunk.min()):
                # Whole window full — one reduction, no index temp.
                run += seg
                idx = (idx + seg) & (cap - 1)
                window <<= 1
                continue
            run += int(np.flatnonzero(chunk == 0)[0])
            break
        if run:
            self._scan_hint = max(64, min(cap, run))
        self._full_credit = credit = credit + run
        return min(credit, n_wanted)

    def try_pop_many(self, max_records: Optional[int] = None) -> List[bytes]:
        """Consumer-only: pop until an empty slot (or ``max_records``).

        The full run doubles as the consumer-side occupancy sample
        (taken before any slot is released), and the whole run's flags
        are cleared with one (or two) vectorized stores — safe because
        every payload is copied out before any clear, and the producer
        never writes a slot whose flag is still set.
        """
        avail = self._full_run(self.capacity)
        if avail == 0:
            return []
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self.capacity - 1
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        idx = self._pop_idx
        out: List[bytes] = []
        append = out.append
        for i in range(n):
            off = offsets[(idx + i) & mask]
            (length,) = unpack_from(data, off)
            start = off + lsize
            append(data[start:start + length].tobytes())
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 0
        else:
            flags[idx:] = 0
            flags[:end - self.capacity] = 0
        self._pop_idx = end & mask
        self._full_credit -= n
        return out

    def try_pop_many_into(self, max_records: Optional[int] = None,
                          ) -> List[memoryview]:
        """Consumer-only: borrow up to ``max_records`` payloads as
        zero-copy memoryviews without clearing their slot flags.

        Views alias the ring and die at :meth:`release_popped`.
        Repeated calls continue past already-borrowed slots; do not mix
        with scalar :meth:`try_pop` while views are outstanding.
        """
        pending = self._pending_pop
        start_idx = (self._pop_idx + pending) & (self.capacity - 1)
        # Full run from the first un-borrowed slot.
        flags = self._flags
        want = self.capacity - pending
        seg = min(want, self.capacity - start_idx)
        empty = np.flatnonzero(flags[start_idx:start_idx + seg] == 0)
        if empty.size:
            avail = int(empty[0])
        else:
            avail = seg
            rest = want - seg
            if rest > 0:
                empty = np.flatnonzero(flags[:rest] == 0)
                avail += int(empty[0]) if empty.size else rest
        if avail <= 0:
            return []
        occ = avail + pending
        if occ > self.hwm:
            self.hwm = occ
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self.capacity - 1
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        out: List[memoryview] = []
        append = out.append
        for i in range(n):
            off = offsets[(start_idx + i) & mask]
            (length,) = unpack_from(data, off)
            start = off + lsize
            append(data[start:start + length])
        self._pending_pop = pending + n
        return out

    def release_popped(self) -> int:
        """Clear the flags of every borrowed slot (vectorized, one or
        two stores) and advance the pop cursor.  All borrowed views are
        dead after this call."""
        n = self._pending_pop
        if not n:
            return 0
        flags = self._flags
        idx = self._pop_idx
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 0
        else:
            flags[idx:] = 0
            flags[:end - self.capacity] = 0
        self._pop_idx = end & (self.capacity - 1)
        self._pending_pop = 0
        self._full_credit = max(0, self._full_credit - n)
        return n

    def pop(self) -> bytes:
        record = self.try_pop()
        if record is None:
            raise QueueEmptyError("ring empty")
        return record

    # -- descriptor mode ------------------------------------------------------
    # Same framing rule as SpscRing: a descriptor ring carries 24-byte
    # repro.ipc.desc structs in its slots (no length prefix) for life.

    def try_push_desc_many(self, descs: Sequence[Tuple[int, int, int, int, int]]
                           ) -> int:
        """Producer-only: push descriptors into the free run; flags for
        the whole run publish with one (or two) vectorized stores."""
        if self.slot_size < DESC_SIZE:
            raise ConfigError(
                f"slot_size {self.slot_size} < descriptor size {DESC_SIZE}")
        n_req = min(len(descs), self.capacity)
        if n_req == 0:
            return 0
        n = self._free_run(n_req)
        if n < n_req:
            if self.capacity > self.hwm:
                self.hwm = self.capacity
            if n == 0:
                return 0
        data = self._data
        offsets = self._offsets
        mask = self.capacity - 1
        pack_into = DESC.pack_into
        idx = self._push_idx
        for i in range(n):
            d = descs[i]
            pack_into(data, offsets[(idx + i) & mask],
                      d[0], d[1], d[2], d[3], d[4])
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 1
        else:
            flags[idx:] = 1
            flags[:end - self.capacity] = 1
        self._push_idx = end & mask
        self._free_credit -= n
        return n

    def try_pop_desc_many(self, max_records: Optional[int] = None,
                          ) -> List[Tuple[int, int, int, int, int]]:
        """Consumer-only: pop descriptors from the full run; the 24-byte
        unpack is the only copy."""
        avail = self._full_run(self.capacity)
        if avail == 0:
            return []
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self.capacity - 1
        unpack_from = DESC.unpack_from
        idx = self._pop_idx
        out = [unpack_from(data, offsets[(idx + i) & mask])
               for i in range(n)]
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 0
        else:
            flags[idx:] = 0
            flags[:end - self.capacity] = 0
        self._pop_idx = end & mask
        self._full_credit -= n
        return out

    def _desc_matrix_view(self) -> np.ndarray:
        matrix = self._desc_matrix
        if matrix is None:
            if self.slot_size != DESC_SIZE:
                raise ConfigError(
                    f"block descriptor mode needs slot_size == {DESC_SIZE}, "
                    f"got {self.slot_size}")
            matrix = np.frombuffer(
                self._data, dtype="<u4",
                count=self.capacity * (self._stride // 4)
            ).reshape(self.capacity, self._stride // 4)
            self._desc_matrix = matrix
        return matrix

    def try_push_desc_block(self, block: np.ndarray) -> int:
        """Producer-only: push an ``(n, 3)`` u64 descriptor block into
        the free run; payload stores and flag publishes are both
        vectorized (at most two segments each)."""
        n_req = min(len(block), self.capacity)
        if n_req == 0:
            return 0
        n = self._free_run(n_req)
        if n < n_req:
            if self.capacity > self.hwm:
                self.hwm = self.capacity
            if n == 0:
                return 0
        matrix = self._desc_matrix_view()
        halves = np.ascontiguousarray(block[:n]).view("<u4")
        idx = self._push_idx
        run = min(n, self.capacity - idx)
        matrix[idx:idx + run, 1:] = halves[:run]
        if n > run:
            matrix[:n - run, 1:] = halves[run:]
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 1
        else:
            flags[idx:] = 1
            flags[:end - self.capacity] = 1
        self._push_idx = end & (self.capacity - 1)
        self._free_credit -= n
        return n

    def try_pop_desc_block(self, max_records: Optional[int] = None,
                           ) -> Optional[np.ndarray]:
        """Consumer-only: pop up to ``max_records`` descriptors from the
        full run as an owned ``(n, 3)`` u64 block (``None`` when
        empty)."""
        avail = self._full_run(self.capacity)
        if avail == 0:
            return None
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        matrix = self._desc_matrix_view()
        idx = self._pop_idx
        run = min(n, self.capacity - idx)
        out = np.empty((n, DESC_WORDS), dtype="<u8")
        halves = out.view("<u4")
        halves[:run] = matrix[idx:idx + run, 1:]
        if n > run:
            halves[run:] = matrix[:n - run, 1:]
        flags = self._flags
        end = idx + n
        if end <= self.capacity:
            flags[idx:end] = 0
        else:
            flags[idx:] = 0
            flags[:end - self.capacity] = 0
        self._pop_idx = end & (self.capacity - 1)
        self._full_credit -= n
        return out

    def close(self) -> None:
        self._flags = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._desc_matrix = None
        self._buf.release()
