"""The fixed-width frame descriptor carried by arena-mode data rings.

In the zero-copy data plane the data rings no longer carry frame bytes:
the payload lives in the shared-memory :mod:`~repro.ipc.arena` and the
ring slots carry 24-byte descriptors pointing at it.  A descriptor is

========  =====  ====================================================
field     wire   meaning
========  =====  ====================================================
offset    u64    byte offset of the frame in the arena segment
length    u32    frame length in bytes
iface     u16    output interface (worker -> monitor direction only)
flags     u16    :data:`FLAG_PROBE` marks a latency-span sample
stamp     u64    span stamp: producer's ``monotonic_ns()`` at publish
========  =====  ====================================================

All three ring kinds gain a *descriptor mode* (``try_push_desc_many`` /
``try_pop_desc_many``) that packs and unpacks this struct directly in
the slot — no length prefix, no intermediate ``bytes`` object, and a
24-byte slot copy instead of a full-frame one.  A ring is either a
descriptor ring or a byte-record ring for its whole life; the two
framings must not be mixed on one buffer.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["DESC", "DESC_SIZE", "DESC_SLOT", "DESC_WORDS", "FLAG_PROBE",
           "PROBE_HEADROOM", "pack_desc_block", "desc_block_rows"]

#: offset u64, length u32, iface u16, flags u16, stamp u64.
DESC = struct.Struct("<QIHHQ")
DESC_SIZE = DESC.size  # 24 bytes

#: Smallest 4-byte-aligned slot that holds one descriptor (the
#: FastForward geometry check requires 4-byte alignment).
DESC_SLOT = 24

#: The frame is a sampled latency probe: its arena chunk carries
#: :data:`PROBE_HEADROOM` extra bytes of span stamps after the payload
#: (monitor writes ``t_start, t_push`` at dispatch, the worker appends
#: ``t_pop, t_done`` around service — four ``<d`` doubles).
FLAG_PROBE = 0x0001

#: Extra chunk bytes reserved after a probed frame's payload.
PROBE_HEADROOM = 32

#: A descriptor is exactly three little-endian u64 words: ``offset``,
#: ``length | iface << 32 | flags << 48``, ``stamp``.  The *block* APIs
#: (``try_push_desc_block`` / ``try_pop_desc_block``) exchange whole
#: batches as ``(n, 3)`` ``<u8`` numpy arrays in this layout, moving the
#: per-descriptor pack/unpack out of Python loops.
DESC_WORDS = 3


def pack_desc_block(offsets, lengths, iface: int = 0, flags: int = 0,
                    stamp: int = 0) -> np.ndarray:
    """Assemble an ``(n, 3)`` descriptor block from parallel sequences.

    ``offsets`` and ``lengths`` are per-descriptor; ``iface``, ``flags``
    and ``stamp`` are scalars applied to the whole block (vary them
    per-row by mutating the returned array — its word layout is the
    table above).
    """
    n = len(offsets)
    block = np.empty((n, DESC_WORDS), dtype="<u8")
    block[:, 0] = np.fromiter(offsets, dtype="<u8", count=n)
    block[:, 1] = np.fromiter(lengths, dtype="<u8", count=n)
    if iface or flags:
        block[:, 1] |= np.uint64((iface & 0xFFFF) << 32
                                 | (flags & 0xFFFF) << 48)
    block[:, 2] = stamp
    return block


def desc_block_rows(block: np.ndarray):
    """Decode a descriptor block to ``(offset, length, iface, flags,
    stamp)`` tuples (one bulk ``tolist`` conversion, then cheap integer
    arithmetic — no per-row numpy indexing)."""
    out = []
    append = out.append
    for off, word1, stamp in block.tolist():
        append((off, word1 & 0xFFFFFFFF, (word1 >> 32) & 0xFFFF,
                word1 >> 48, stamp))
    return out
