"""Control events exchanged between VRIs.

The paper lets VRIs of one VR share control information (e.g. routing
state synchronization) through dedicated control queues, with
user-specified protocols "similar to the UDP socket programming"
(thesis §3.7).  A :class:`ControlEvent` is therefore just an addressed
datagram; the byte codec is used by the real runtime backend.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ControlEvent", "encode_event", "decode_event",
           "encode_stats_chunks", "StatsAssembler"]

_HEADER = struct.Struct("<HHHHI")  # kind, src, dst, seq stamp, payload len

#: Well-known event kinds; users are free to define their own >= 0x100.
KIND_USER = 0x100
KIND_ROUTE_SYNC = 0x001
KIND_SERVICE_RATE = 0x002
KIND_PING = 0x003
KIND_STOP = 0x004
#: Liveness beacon: a VRI/worker tells the monitor "still making
#: progress" (payload: monotonic send time, ``<d``).  Rides the control
#: queue, so it inherits the thesis' control-over-data priority — a
#: worker that still drains its control ring is, by definition, alive.
KIND_HEARTBEAT = 0x005
#: Supervisor -> fresh instance: "you are restart attempt N of your
#: slot" (payload: attempt count, ``<I``).  Purely informational; the
#: worker records it in its flight recorder for post-mortems.
KIND_RESTART = 0x006
#: Worker -> monitor telemetry: one chunk of a JSON registry snapshot
#: (see :func:`encode_stats_chunks`).  Strictly best-effort and strictly
#: lower priority than heartbeats: a worker pushes its heartbeat first
#: and abandons the remaining stats chunks the moment the control ring
#: fills — losing a snapshot is free (the next one carries cumulative
#: state), losing a heartbeat costs a spurious failover.
KIND_STATS = 0x007
#: Active -> standby state replication (repro.cluster): one delta of
#: flow-table pins and route updates, sequence-numbered so a standby
#: applies at-least-once delivery idempotently (payload codec in
#: :mod:`repro.cluster.replication`).  Rides a control ring like every
#: other event, so replication inherits control-over-data priority.
KIND_REPLICATE = 0x008
#: Director -> traffic sources: "the VIP now lives on member N"
#: (payload: member index, ``<H``).  The atomic redirect of an HA
#: failover — sources that honor the move stop feeding the corpse.
KIND_VIP_MOVE = 0x009
#: Director -> standby: "you are the active of your pair now"
#: (payload: member index + election term, ``<HI``).  Term numbers make
#: re-deliveries harmless: a member only acts on a term newer than the
#: last one it accepted.
KIND_ELECT = 0x00A


@dataclass(frozen=True)
class ControlEvent:
    """An inter-VRI control datagram."""

    kind: int
    src_vri: int
    dst_vri: int
    payload: bytes = b""
    #: Simulation timestamp of emission (latency measurements, Exp 1e).
    t_sent: float = field(default=0.0, compare=False)
    #: Per-sender sequence stamp, 1-based mod 2**16 (0 = unstamped).
    #: Rides the previously-reserved header halfword, so stamping costs
    #: zero wire bytes.  The monitor uses per-source stamps to *count*
    #: control-plane loss and reordering (``trace_seq_gap_total``)
    #: instead of silently absorbing whatever arrives.
    seq: int = field(default=0, compare=False)

    @property
    def size(self) -> int:
        """Wire size used for IPC cost accounting."""
        return _HEADER.size + len(self.payload)


def encode_event(event: ControlEvent) -> bytes:
    if not 0 <= event.kind <= 0xFFFF:
        raise ValueError(f"event kind out of range: {event.kind}")
    if not 0 <= event.src_vri <= 0xFFFF or not 0 <= event.dst_vri <= 0xFFFF:
        raise ValueError("VRI ids out of range")
    return _HEADER.pack(event.kind, event.src_vri, event.dst_vri,
                        event.seq & 0xFFFF,
                        len(event.payload)) + event.payload


def decode_event(data: bytes) -> ControlEvent:
    if len(data) < _HEADER.size:
        raise ValueError(f"short control event: {len(data)} bytes")
    kind, src, dst, seq, plen = _HEADER.unpack_from(data)
    if len(data) < _HEADER.size + plen:
        raise ValueError("truncated control event payload")
    return ControlEvent(kind, src, dst, data[_HEADER.size:_HEADER.size + plen],
                        seq=seq)


# ---------------------------------------------------------------------------
# KIND_STATS: the telemetry plane's wire format
# ---------------------------------------------------------------------------
# A registry snapshot (JSON, see Registry.snapshot) rarely fits one
# control slot, so it rides as a generation of chunks.  Each chunk
# payload is ``<IHH`` — generation, sequence, total — followed by a
# slice of the UTF-8 JSON body.  Delivery is at-most-once per chunk and
# best-effort per generation: the assembler only yields a snapshot when
# every chunk of one generation arrived, and any chunk of a *different*
# generation from the same source discards the stale partial (snapshots
# are cumulative, so the next complete generation catches up on its
# own).  Sequence order within a generation is irrelevant.

_STATS_HEADER = struct.Struct("<IHH")  # generation, seq, total


def encode_stats_chunks(snapshot: Dict, gen: int,
                        max_payload: int) -> List[bytes]:
    """Split one registry snapshot into ``KIND_STATS`` payloads.

    ``max_payload`` is the largest payload a control slot can carry,
    i.e. ``slot_size - _HEADER.size`` — chunking is the sender's
    problem, so the codec takes the budget explicitly.
    """
    room = max_payload - _STATS_HEADER.size
    if room < 1:
        raise ValueError(
            f"max_payload {max_payload} leaves no room for chunk bodies")
    body = json.dumps(snapshot, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    pieces = [body[i:i + room] for i in range(0, len(body), room)] or [b""]
    if len(pieces) > 0xFFFF:
        raise ValueError(f"snapshot needs {len(pieces)} chunks (max 65535)")
    total = len(pieces)
    gen &= 0xFFFFFFFF
    return [_STATS_HEADER.pack(gen, seq, total) + piece
            for seq, piece in enumerate(pieces)]


class StatsAssembler:
    """Reassembles chunked snapshots per source, tolerating loss.

    Feed every ``KIND_STATS`` payload through :meth:`feed`; it returns
    the decoded snapshot dict when a generation completes, else
    ``None``.  Stale partials (a new generation starts before the old
    finished — the sender abandoned mid-snapshot on a full ring) are
    dropped and counted in :attr:`abandoned`; undecodable payloads
    count in :attr:`corrupt`.

    Loss is *counted*, never silently skipped: :attr:`gaps` totals the
    generations that never completed — abandoned partials plus whole
    generations that vanished between two completed ones (completing
    gen 7 after gen 4 is 2 gap generations).  ``gap_hook(n)``, when
    set, fires with each increment so the owner can mirror the count
    into a metrics counter (``trace_seq_gap_total{plane="stats"}``).
    """

    def __init__(self) -> None:
        # src -> (generation, total, {seq: body bytes})
        self._partial: Dict[int, Tuple[int, int, Dict[int, bytes]]] = {}
        self.completed = 0
        self.abandoned = 0
        self.corrupt = 0
        self.gaps = 0
        self.gap_hook = None
        # src -> generation of the last *completed* snapshot
        self._last_gen: Dict[int, int] = {}

    def _gap(self, n: int) -> None:
        if n <= 0:
            return
        self.gaps += n
        if self.gap_hook is not None:
            self.gap_hook(n)

    def feed(self, src: int, payload: bytes) -> Optional[Dict]:
        if len(payload) < _STATS_HEADER.size:
            self.corrupt += 1
            return None
        gen, seq, total = _STATS_HEADER.unpack_from(payload)
        if total < 1 or seq >= total:
            self.corrupt += 1
            return None
        body = payload[_STATS_HEADER.size:]
        cur = self._partial.get(src)
        if cur is None or cur[0] != gen or cur[1] != total:
            if cur is not None:
                self.abandoned += 1
                self._gap(1)
            cur = (gen, total, {})
            self._partial[src] = cur
        cur[2][seq] = body
        if len(cur[2]) < total:
            return None
        del self._partial[src]
        text = b"".join(cur[2][i] for i in range(total))
        try:
            snapshot = json.loads(text.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.corrupt += 1
            return None
        self.completed += 1
        last = self._last_gen.get(src)
        if last is not None and gen > last + 1:
            # Generations that vanished entirely between two completions.
            self._gap(gen - last - 1)
        self._last_gen[src] = gen
        return snapshot
