"""Control events exchanged between VRIs.

The paper lets VRIs of one VR share control information (e.g. routing
state synchronization) through dedicated control queues, with
user-specified protocols "similar to the UDP socket programming"
(thesis §3.7).  A :class:`ControlEvent` is therefore just an addressed
datagram; the byte codec is used by the real runtime backend.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = ["ControlEvent", "encode_event", "decode_event"]

_HEADER = struct.Struct("<HHHHI")  # kind, src, dst, reserved, payload len

#: Well-known event kinds; users are free to define their own >= 0x100.
KIND_USER = 0x100
KIND_ROUTE_SYNC = 0x001
KIND_SERVICE_RATE = 0x002
KIND_PING = 0x003
KIND_STOP = 0x004
#: Liveness beacon: a VRI/worker tells the monitor "still making
#: progress" (payload: monotonic send time, ``<d``).  Rides the control
#: queue, so it inherits the thesis' control-over-data priority — a
#: worker that still drains its control ring is, by definition, alive.
KIND_HEARTBEAT = 0x005
#: Supervisor -> fresh instance: "you are restart attempt N of your
#: slot" (payload: attempt count, ``<I``).  Purely informational; the
#: worker records it in its flight recorder for post-mortems.
KIND_RESTART = 0x006


@dataclass(frozen=True)
class ControlEvent:
    """An inter-VRI control datagram."""

    kind: int
    src_vri: int
    dst_vri: int
    payload: bytes = b""
    #: Simulation timestamp of emission (latency measurements, Exp 1e).
    t_sent: float = field(default=0.0, compare=False)

    @property
    def size(self) -> int:
        """Wire size used for IPC cost accounting."""
        return _HEADER.size + len(self.payload)


def encode_event(event: ControlEvent) -> bytes:
    if not 0 <= event.kind <= 0xFFFF:
        raise ValueError(f"event kind out of range: {event.kind}")
    if not 0 <= event.src_vri <= 0xFFFF or not 0 <= event.dst_vri <= 0xFFFF:
        raise ValueError("VRI ids out of range")
    return _HEADER.pack(event.kind, event.src_vri, event.dst_vri, 0,
                        len(event.payload)) + event.payload


def decode_event(data: bytes) -> ControlEvent:
    if len(data) < _HEADER.size:
        raise ValueError(f"short control event: {len(data)} bytes")
    kind, src, dst, _res, plen = _HEADER.unpack_from(data)
    if len(data) < _HEADER.size + plen:
        raise ValueError("truncated control event payload")
    return ControlEvent(kind, src, dst, data[_HEADER.size:_HEADER.size + plen])
