"""A real lock-free SPSC ring buffer in shared memory.

This is the paper's IPC queue (thesis §3.5): Lamport's single-producer /
single-consumer construction [23].  Correctness argument, as in the
original:

* The producer reads both indices but writes only ``tail``; the consumer
  reads both but writes only ``head``.  Each index is a 64-bit aligned
  word, so its store is atomic on every platform CPython runs on.
* The producer publishes a record by writing the payload *first* and the
  incremented ``tail`` *second*; the consumer reads ``tail`` before the
  payload, so it can never observe an unwritten record.  (x86 TSO does
  not reorder the store sequence; numpy scalar stores are single ``mov``
  instructions on the mapped buffer.)
* Indices increase monotonically and are used modulo capacity, so no ABA
  issue arises within 2**63 operations.

Records are length-prefixed byte strings in fixed-size slots, which
keeps the data plane copy-bounded like the C++ original.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, QueueEmptyError, QueueFullError
from repro.ipc.desc import DESC, DESC_SIZE, DESC_WORDS

__all__ = ["SpscRing", "RingFull", "RingEmpty", "ring_bytes_needed"]

# Backwards-compatible aliases used around the code base.
RingFull = QueueFullError
RingEmpty = QueueEmptyError

_HEADER = struct.Struct("<QQQQ")  # capacity, slot_size, magic, pad
_MAGIC = 0x4C56524D_53505343  # "LVRMSPSC"
_LEN = struct.Struct("<I")

#: Offset of head / tail words. They sit in *separate cache lines* (64 B
#: apart) so producer and consumer do not false-share.
_HEADER_BYTES = 64
_HEAD_OFF = 64
_TAIL_OFF = 128
_DATA_OFF = 192


def ring_bytes_needed(capacity: int, slot_size: int) -> int:
    """Shared-memory bytes required for a ring of this geometry."""
    if capacity < 1 or capacity & (capacity - 1):
        raise ConfigError(f"capacity must be a power of two, got {capacity}")
    if slot_size < _LEN.size + 1:
        raise ConfigError(f"slot_size too small: {slot_size}")
    return _DATA_OFF + capacity * slot_size


class SpscRing:
    """Lock-free SPSC ring over any writable buffer (usually shm)."""

    def __init__(self, buffer, capacity: int, slot_size: int,
                 create: bool = True):
        needed = ring_bytes_needed(capacity, slot_size)
        if len(buffer) < needed:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {needed}")
        self.capacity = capacity
        self.slot_size = slot_size
        #: Occupancy high-water mark as seen by this side (per-process;
        #: the producer side sees the true maximum since it observes
        #: occupancy right after every push).
        self.hwm = 0
        self._buf = memoryview(buffer)
        self._head = np.frombuffer(self._buf, dtype=np.uint64,
                                   count=1, offset=_HEAD_OFF)
        self._tail = np.frombuffer(self._buf, dtype=np.uint64,
                                   count=1, offset=_TAIL_OFF)
        self._data = self._buf[_DATA_OFF:_DATA_OFF + capacity * slot_size]
        self._mask = capacity - 1
        #: Per-slot data offsets, precomputed so the pop path does one
        #: table index instead of a multiply per record.
        self._offsets = tuple(i * slot_size for i in range(capacity))
        #: Records handed out as borrowed views but not yet released
        #: (see :meth:`try_pop_many_into` / :meth:`release_popped`).
        self._pending_pop = 0
        #: Lazy ``(capacity, 3)`` u64 view of the slots for the block
        #: descriptor APIs (valid only when ``slot_size == DESC_SIZE``).
        self._desc_words = None
        if create:
            _HEADER.pack_into(self._buf, 0, capacity, slot_size, _MAGIC, 0)
            self._head[0] = 0
            self._tail[0] = 0
        else:
            cap, slot, magic, _ = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain an SpscRing")
            if (cap, slot) != (capacity, slot_size):
                raise ConfigError(
                    f"geometry mismatch: buffer has ({cap}, {slot}), "
                    f"caller expects ({capacity}, {slot_size})")

    # -- geometry helpers -----------------------------------------------------
    @classmethod
    def attach(cls, buffer) -> "SpscRing":
        """Attach to an existing ring, reading geometry from its header."""
        cap, slot, magic, _ = _HEADER.unpack_from(memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain an SpscRing")
        return cls(buffer, int(cap), int(slot), create=False)

    @property
    def max_record(self) -> int:
        return self.slot_size - _LEN.size

    def __len__(self) -> int:
        return int(self._tail[0] - self._head[0])

    @property
    def is_empty(self) -> bool:
        return self._tail[0] == self._head[0]

    @property
    def is_full(self) -> bool:
        return int(self._tail[0] - self._head[0]) >= self.capacity

    # -- producer side -----------------------------------------------------------
    def try_push(self, record: bytes) -> bool:
        """Producer-only. False when the ring is full."""
        if len(record) > self.max_record:
            raise ConfigError(
                f"record of {len(record)} bytes exceeds slot payload "
                f"{self.max_record}")
        tail = int(self._tail[0])
        occ = tail + 1 - int(self._head[0])
        if occ > self.capacity:
            return False
        off = (tail & (self.capacity - 1)) * self.slot_size
        _LEN.pack_into(self._data, off, len(record))
        self._data[off + _LEN.size:off + _LEN.size + len(record)] = record
        # Publish: the tail store is the linearization point.
        self._tail[0] = tail + 1
        if occ > self.hwm:
            self.hwm = occ
        return True

    def try_push_many(self, records: Sequence[bytes]) -> int:
        """Producer-only: push as many records as fit, in order.

        Reads both indices once and publishes a single tail store for
        the whole run, so the per-record cost drops to the slot copy.
        Returns the number pushed (0 when full).  Raises
        :class:`~repro.errors.ConfigError` on an oversize record, in
        which case nothing is published.
        """
        tail = int(self._tail[0])
        head = int(self._head[0])
        n = min(self.capacity - (tail - head), len(records))
        if n <= 0:
            return 0
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        max_record = self.max_record
        pack_into = _LEN.pack_into
        for i in range(n):
            record = records[i]
            length = len(record)
            if length > max_record:
                raise ConfigError(
                    f"record of {length} bytes exceeds slot payload "
                    f"{max_record}")
            off = offsets[(tail + i) & mask]
            pack_into(data, off, length)
            start = off + lsize
            data[start:start + length] = record
        # Publish the whole run with one tail store.
        self._tail[0] = tail + n
        occ = tail + n - head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def push(self, record: bytes) -> None:
        if not self.try_push(record):
            raise RingFull(f"ring full (capacity {self.capacity})")

    def probe_occupancy(self) -> int:
        """Sample current occupancy into ``hwm`` and return it."""
        occ = len(self)
        if occ > self.hwm:
            self.hwm = occ
        return occ

    # -- consumer side --------------------------------------------------------------
    def try_pop(self) -> Optional[bytes]:
        """Consumer-only. None when the ring is empty."""
        head = int(self._head[0])
        occ = int(self._tail[0]) - head
        if occ == 0:
            return None
        # Consumer-side HWM sample, taken before the slot is released so
        # the gauge sees the occupancy this pop observed (the producer
        # side alone undercounts when the consumer lags).
        if occ > self.hwm:
            self.hwm = occ
        off = self._offsets[head & self._mask]
        (length,) = _LEN.unpack_from(self._data, off)
        start = off + _LEN.size
        record = self._data[start:start + length].tobytes()
        # Release the slot: the head store is the linearization point.
        self._head[0] = head + 1
        return record

    def try_pop_many(self, max_records: Optional[int] = None) -> List[bytes]:
        """Consumer-only: pop up to ``max_records`` (all, when None).

        Reads both indices once, copies each payload once from its
        precomputed slot offset, and releases the whole run with a
        single head store.
        """
        head = int(self._head[0])
        avail = int(self._tail[0]) - head
        if avail <= 0:
            return []
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        out: List[bytes] = []
        append = out.append
        for i in range(n):
            off = offsets[(head + i) & mask]
            (length,) = unpack_from(data, off)
            start = off + lsize
            append(data[start:start + length].tobytes())
        self._head[0] = head + n
        return out

    def try_pop_many_into(self, max_records: Optional[int] = None,
                          ) -> List[memoryview]:
        """Consumer-only: borrow up to ``max_records`` payloads as
        zero-copy memoryviews *without releasing their slots*.

        The views alias the ring buffer: they are valid only until
        :meth:`release_popped` hands the slots back to the producer.
        Decode-immediately callers (the worker burst loop) use this to
        skip the ``.tobytes()`` copy of :meth:`try_pop_many`; callers
        that retain a record past the release must copy it themselves.
        Repeated calls before a release continue past the already
        borrowed records.
        """
        head = int(self._head[0]) + self._pending_pop
        avail = int(self._tail[0]) - head
        if avail <= 0:
            return []
        occ = avail + self._pending_pop
        if occ > self.hwm:
            self.hwm = occ
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        out: List[memoryview] = []
        append = out.append
        for i in range(n):
            off = offsets[(head + i) & mask]
            (length,) = unpack_from(data, off)
            start = off + lsize
            append(data[start:start + length])
        self._pending_pop += n
        return out

    def release_popped(self) -> int:
        """Release every slot borrowed via :meth:`try_pop_many_into`
        (one head store); returns the number released.  All borrowed
        views are dead after this call."""
        n = self._pending_pop
        if n:
            self._head[0] = int(self._head[0]) + n
            self._pending_pop = 0
        return n

    def pop(self) -> bytes:
        record = self.try_pop()
        if record is None:
            raise RingEmpty("ring empty")
        return record

    # -- descriptor mode ------------------------------------------------------
    # Arena-mode data rings carry fixed 24-byte descriptors (repro.ipc.desc)
    # instead of length-prefixed byte records.  A ring must use one framing
    # for its whole life; these methods share the ring's geometry and
    # indices with the byte-record methods but not its slot format.

    def try_push_desc_many(self, descs: Sequence[Tuple[int, int, int, int, int]]
                           ) -> int:
        """Producer-only: push ``(offset, length, iface, flags, stamp)``
        descriptors; one tail store for the run.  Returns the number
        pushed (0 when full)."""
        if self.slot_size < DESC_SIZE:
            raise ConfigError(
                f"slot_size {self.slot_size} < descriptor size {DESC_SIZE}")
        tail = int(self._tail[0])
        head = int(self._head[0])
        n = min(self.capacity - (tail - head), len(descs))
        if n <= 0:
            return 0
        data = self._data
        offsets = self._offsets
        mask = self._mask
        pack_into = DESC.pack_into
        for i in range(n):
            d = descs[i]
            pack_into(data, offsets[(tail + i) & mask],
                      d[0], d[1], d[2], d[3], d[4])
        self._tail[0] = tail + n
        occ = tail + n - head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def try_pop_desc_many(self, max_records: Optional[int] = None,
                          ) -> List[Tuple[int, int, int, int, int]]:
        """Consumer-only: pop up to ``max_records`` descriptors as
        ``(offset, length, iface, flags, stamp)`` tuples.  The 24-byte
        unpack is the only copy — the frame bytes stay in the arena."""
        head = int(self._head[0])
        avail = int(self._tail[0]) - head
        if avail <= 0:
            return []
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self._mask
        unpack_from = DESC.unpack_from
        out = [unpack_from(data, offsets[(head + i) & mask])
               for i in range(n)]
        self._head[0] = head + n
        return out

    def _desc_block_view(self) -> np.ndarray:
        words = self._desc_words
        if words is None:
            if self.slot_size != DESC_SIZE:
                raise ConfigError(
                    f"block descriptor mode needs slot_size == {DESC_SIZE}, "
                    f"got {self.slot_size}")
            words = np.frombuffer(
                self._buf, dtype="<u8", count=self.capacity * DESC_WORDS,
                offset=_DATA_OFF).reshape(self.capacity, DESC_WORDS)
            self._desc_words = words
        return words

    def try_push_desc_block(self, block: np.ndarray) -> int:
        """Producer-only: push an ``(n, 3)`` u64 descriptor block (see
        :func:`repro.ipc.desc.pack_desc_block`) with at most two
        vectorized slot stores and one tail store.  Returns the number
        pushed (0 when full)."""
        tail = int(self._tail[0])
        head = int(self._head[0])
        n = min(self.capacity - (tail - head), len(block))
        if n <= 0:
            return 0
        words = self._desc_block_view()
        pos = tail & self._mask
        run = min(n, self.capacity - pos)
        words[pos:pos + run] = block[:run]
        if n > run:
            words[:n - run] = block[run:n]
        self._tail[0] = tail + n
        occ = tail + n - head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def try_pop_desc_block(self, max_records: Optional[int] = None,
                           ) -> Optional[np.ndarray]:
        """Consumer-only: pop up to ``max_records`` descriptors as an
        owned ``(n, 3)`` u64 block (``None`` when empty) — the bulk
        sibling of :meth:`try_pop_desc_many`."""
        head = int(self._head[0])
        avail = int(self._tail[0]) - head
        if avail <= 0:
            return None
        if avail > self.hwm:
            self.hwm = avail
        n = avail if max_records is None else min(avail, max_records)
        words = self._desc_block_view()
        pos = head & self._mask
        run = min(n, self.capacity - pos)
        if n > run:
            out = np.concatenate((words[pos:pos + run], words[:n - run]))
        else:
            out = words[pos:pos + run].copy()
        self._head[0] = head + n
        return out

    def close(self) -> None:
        """Release numpy views so the backing shm can be closed."""
        self._head = None  # type: ignore[assignment]
        self._tail = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._desc_words = None
        self._buf.release()
