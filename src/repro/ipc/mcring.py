"""MCRingBuffer-style SPSC queue (thesis §3.5, reference [24]).

Lee et al.'s cache-efficient construction for line-rate monitoring:
shared head and tail live on separate cache lines, and each side works
against *local* copies, publishing (producer) or refreshing (consumer)
the shared word only once per batch.  This cuts coherence traffic by
``batch`` compared to the plain Lamport queue, at the cost of up to
``batch - 1`` records of publication latency — hence the explicit
:meth:`flush` the producer calls when it goes idle.

Record interface matches :class:`~repro.ipc.ring.SpscRing` except for
the batching semantics, which the tests pin explicitly.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, QueueEmptyError, QueueFullError
from repro.ipc.desc import DESC, DESC_SIZE, DESC_WORDS

__all__ = ["McRingBuffer", "mc_bytes_needed"]

_HEADER = struct.Struct("<QQQQ")
_MAGIC = 0x4C56524D_4D435242  # "LVRMMCRB"
_LEN = struct.Struct("<I")

_HEAD_OFF = 64
_TAIL_OFF = 128
_DATA_OFF = 192


def mc_bytes_needed(capacity: int, slot_size: int) -> int:
    if capacity < 1 or capacity & (capacity - 1):
        raise ConfigError(f"capacity must be a power of two, got {capacity}")
    if slot_size < _LEN.size + 1:
        raise ConfigError(f"slot_size too small: {slot_size}")
    return _DATA_OFF + capacity * slot_size


class McRingBuffer:
    """Batched-update SPSC queue over a shared buffer."""

    def __init__(self, buffer, capacity: int, slot_size: int,
                 batch: Optional[int] = None, create: bool = True):
        needed = mc_bytes_needed(capacity, slot_size)
        if len(buffer) < needed:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {needed}")
        if batch is None:
            batch = min(16, capacity)
        if not 1 <= batch <= capacity:
            raise ConfigError(f"batch must be in [1, capacity], got {batch}")
        self.capacity = capacity
        self.slot_size = slot_size
        self.batch = batch
        #: Occupancy high-water mark as seen by this side.  The producer
        #: works against a *stale* head copy (the point of MCRingBuffer),
        #: so its view is a conservative upper bound refreshed at most
        #: once per batch of full-ring misses.
        self.hwm = 0
        self._buf = memoryview(buffer)
        self._shared_head = np.frombuffer(self._buf, dtype=np.uint64,
                                          count=1, offset=_HEAD_OFF)
        self._shared_tail = np.frombuffer(self._buf, dtype=np.uint64,
                                          count=1, offset=_TAIL_OFF)
        self._data = self._buf[_DATA_OFF:_DATA_OFF + capacity * slot_size]
        self._mask = capacity - 1
        #: Per-slot data offsets (one table index per record on the hot
        #: paths instead of a mask-and-multiply).
        self._offsets = tuple(i * slot_size for i in range(capacity))
        # Producer-local state.
        self._next_tail = 0          # where the next record goes
        self._local_head = 0         # stale copy of the shared head
        self._unpublished = 0
        # Consumer-local state.
        self._next_head = 0
        self._local_tail = 0         # stale copy of the shared tail
        self._unreleased = 0
        #: Records handed out as borrowed views but not yet released.
        self._pending_pop = 0
        #: Lazy ``(capacity, 3)`` u64 slot view for block descriptor mode.
        self._desc_words = None
        if create:
            _HEADER.pack_into(self._buf, 0, capacity, slot_size, _MAGIC,
                              batch)
            self._shared_head[0] = 0
            self._shared_tail[0] = 0
        else:
            cap, slot, magic, _b = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain an McRingBuffer")
            if (cap, slot) != (capacity, slot_size):
                raise ConfigError(
                    f"geometry mismatch: buffer has ({cap}, {slot}), "
                    f"caller expects ({capacity}, {slot_size})")
            self._next_tail = int(self._shared_tail[0])
            self._next_head = int(self._shared_head[0])
            self._local_head = self._next_head
            self._local_tail = self._next_tail

    @classmethod
    def attach(cls, buffer, batch: int = 16) -> "McRingBuffer":
        cap, slot, magic, stored_batch = _HEADER.unpack_from(
            memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain an McRingBuffer")
        return cls(buffer, int(cap), int(slot),
                   batch=int(stored_batch) or batch, create=False)

    @property
    def max_record(self) -> int:
        return self.slot_size - _LEN.size

    def __len__(self) -> int:
        """Published occupancy (unflushed records are not yet visible)."""
        return int(self._shared_tail[0] - self._shared_head[0])

    # -- producer -----------------------------------------------------------
    def try_push(self, record: bytes) -> bool:
        if len(record) > self.max_record:
            raise ConfigError(
                f"record of {len(record)} bytes exceeds slot payload "
                f"{self.max_record}")
        if self._next_tail - self._local_head >= self.capacity:
            # Refresh the stale head copy (one coherence miss per batch
            # of failures instead of per push).
            self._local_head = int(self._shared_head[0])
            if self._next_tail - self._local_head >= self.capacity:
                return False
        off = (self._next_tail & (self.capacity - 1)) * self.slot_size
        _LEN.pack_into(self._data, off, len(record))
        self._data[off + _LEN.size:off + _LEN.size + len(record)] = record
        self._next_tail += 1
        self._unpublished += 1
        occ = self._next_tail - self._local_head
        if occ > self.hwm:
            self.hwm = occ
        if self._unpublished >= self.batch:
            self.flush()
        return True

    def try_push_many(self, records: Sequence[bytes]) -> int:
        """Producer-only: push as many records as fit, in order.

        The stale head copy is refreshed at most once for the whole run,
        and the whole run counts as one batch: publication happens once
        at the end (when the batch threshold is crossed) instead of
        every ``batch`` records.  That publishes no later than the
        scalar loop would — a consumer only ever sees records sooner —
        and drops the per-record threshold check and shared store from
        the loop.  Returns the number pushed.
        """
        next_tail = self._next_tail
        local_head = self._local_head
        capacity = self.capacity
        free = capacity - (next_tail - local_head)
        if free < len(records):
            # One coherence miss for the whole batch.
            local_head = self._local_head = int(self._shared_head[0])
            free = capacity - (next_tail - local_head)
        n = min(free, len(records))
        if n <= 0:
            return 0
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        max_record = self.max_record
        pack_into = _LEN.pack_into
        for i in range(n):
            record = records[i]
            length = len(record)
            if length > max_record:
                # Keep the records already written this call publishable.
                self._next_tail = next_tail
                self._unpublished += i
                raise ConfigError(
                    f"record of {length} bytes exceeds slot payload "
                    f"{max_record}")
            off = offsets[next_tail & mask]
            pack_into(data, off, length)
            start = off + lsize
            data[start:start + length] = record
            next_tail += 1
        self._next_tail = next_tail
        self._unpublished += n
        if self._unpublished >= self.batch:
            self._shared_tail[0] = next_tail
            self._unpublished = 0
        occ = next_tail - local_head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def flush(self) -> None:
        """Publish all written-but-unannounced records."""
        if self._unpublished:
            self._shared_tail[0] = self._next_tail
            self._unpublished = 0

    def push(self, record: bytes) -> None:
        if not self.try_push(record):
            raise QueueFullError(f"ring full (capacity {self.capacity})")

    def probe_occupancy(self) -> int:
        """Sample *published* occupancy into ``hwm`` and return it."""
        occ = len(self)
        if occ > self.hwm:
            self.hwm = occ
        return occ

    # -- consumer -----------------------------------------------------------
    def try_pop(self) -> Optional[bytes]:
        next_head = self._next_head
        if next_head >= self._local_tail:
            self._local_tail = int(self._shared_tail[0])
            if next_head >= self._local_tail:
                return None
        # Consumer-side HWM sample before the slot is released: the
        # published occupancy is local_tail minus the *shared* head
        # (next_head minus what this side has not yet handed back).
        occ = self._local_tail - next_head + self._unreleased
        if occ > self.hwm:
            self.hwm = occ
        off = self._offsets[next_head & self._mask]
        (length,) = _LEN.unpack_from(self._data, off)
        start = off + _LEN.size
        record = self._data[start:start + length].tobytes()
        self._next_head = next_head + 1
        self._unreleased += 1
        if self._unreleased >= self.batch:
            self.release()
        return record

    def try_pop_many(self, max_records: Optional[int] = None) -> List[bytes]:
        """Consumer-only: pop up to ``max_records`` (all published, when
        None).  Matches a scalar pop loop exactly: when the local tail
        copy runs dry the shared tail is re-read (a scalar loop refreshes
        on its next call), so one refresh per *exhaustion* rather than
        per record.  The release check (`unreleased >= batch`) runs on
        local ints per record.
        """
        next_head = self._next_head
        local_tail = self._local_tail
        unreleased = self._unreleased
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        batch = self.batch
        shared_head = self._shared_head
        out: List[bytes] = []
        append = out.append
        occ = local_tail - next_head + unreleased
        if occ > self.hwm:
            self.hwm = occ
        while max_records is None or len(out) < max_records:
            avail = local_tail - next_head
            if avail <= 0:
                local_tail = self._local_tail = int(self._shared_tail[0])
                avail = local_tail - next_head
                if avail <= 0:
                    break
                # Consumer-side HWM sample on the fresh view, before any
                # of these slots are released.
                occ = avail + unreleased
                if occ > self.hwm:
                    self.hwm = occ
            n = avail if max_records is None else min(
                avail, max_records - len(out))
            for _ in range(n):
                off = offsets[next_head & mask]
                (length,) = unpack_from(data, off)
                start = off + lsize
                append(data[start:start + length].tobytes())
                next_head += 1
            # The whole run releases as one batch (never later than the
            # scalar loop, which releases every ``batch`` pops).
            unreleased += n
            if unreleased >= batch:
                shared_head[0] = next_head
                unreleased = 0
        self._next_head = next_head
        self._unreleased = unreleased
        return out

    def try_pop_many_into(self, max_records: Optional[int] = None,
                          ) -> List[memoryview]:
        """Consumer-only: borrow up to ``max_records`` payloads as
        zero-copy memoryviews; the shared head is not advanced (not even
        by batch accounting) until :meth:`release_popped`.

        Views alias the ring and die at :meth:`release_popped`.  Do not
        mix with scalar :meth:`try_pop` while views are outstanding —
        its batch release could hand borrowed slots back early.
        """
        pending = self._pending_pop
        next_head = self._next_head + pending
        local_tail = self._local_tail
        avail = local_tail - next_head
        if avail <= 0:
            local_tail = self._local_tail = int(self._shared_tail[0])
            avail = local_tail - next_head
            if avail <= 0:
                return []
        occ = avail + pending + self._unreleased
        if occ > self.hwm:
            self.hwm = occ
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self._mask
        lsize = _LEN.size
        unpack_from = _LEN.unpack_from
        out: List[memoryview] = []
        append = out.append
        for i in range(n):
            off = offsets[(next_head + i) & mask]
            (length,) = unpack_from(data, off)
            start = off + lsize
            append(data[start:start + length])
        self._pending_pop = pending + n
        return out

    def release_popped(self) -> int:
        """Fold borrowed slots into the normal batch-release accounting
        (publishing the shared head if the batch threshold is crossed).
        All borrowed views are dead after this call."""
        n = self._pending_pop
        if not n:
            return 0
        self._next_head += n
        self._unreleased += n
        self._pending_pop = 0
        if self._unreleased >= self.batch:
            self.release()
        return n

    # -- descriptor mode ------------------------------------------------------
    # Same framing rule as SpscRing: descriptor rings carry 24-byte
    # repro.ipc.desc structs (no length prefix) for their whole life.
    # Batch publication/release semantics are unchanged.

    def try_push_desc_many(self, descs: Sequence[Tuple[int, int, int, int, int]]
                           ) -> int:
        """Producer-only: push descriptors; the stale head refreshes at
        most once and the run publishes per the batch threshold."""
        if self.slot_size < DESC_SIZE:
            raise ConfigError(
                f"slot_size {self.slot_size} < descriptor size {DESC_SIZE}")
        next_tail = self._next_tail
        local_head = self._local_head
        capacity = self.capacity
        free = capacity - (next_tail - local_head)
        if free < len(descs):
            local_head = self._local_head = int(self._shared_head[0])
            free = capacity - (next_tail - local_head)
        n = min(free, len(descs))
        if n <= 0:
            return 0
        data = self._data
        offsets = self._offsets
        mask = self._mask
        pack_into = DESC.pack_into
        for i in range(n):
            d = descs[i]
            pack_into(data, offsets[(next_tail + i) & mask],
                      d[0], d[1], d[2], d[3], d[4])
        next_tail += n
        self._next_tail = next_tail
        self._unpublished += n
        if self._unpublished >= self.batch:
            self._shared_tail[0] = next_tail
            self._unpublished = 0
        occ = next_tail - local_head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def try_pop_desc_many(self, max_records: Optional[int] = None,
                          ) -> List[Tuple[int, int, int, int, int]]:
        """Consumer-only: pop descriptors; one stale-tail refresh when
        the cached run falls short of the request (so a batch sees
        everything :meth:`try_pop_many` would), one batch-release check
        for the run."""
        next_head = self._next_head
        local_tail = self._local_tail
        avail = local_tail - next_head
        want = self.capacity if max_records is None else max_records
        if avail < want:
            local_tail = self._local_tail = int(self._shared_tail[0])
            avail = local_tail - next_head
            if avail <= 0:
                return []
        occ = avail + self._unreleased
        if occ > self.hwm:
            self.hwm = occ
        n = avail if max_records is None else min(avail, max_records)
        data = self._data
        offsets = self._offsets
        mask = self._mask
        unpack_from = DESC.unpack_from
        out = [unpack_from(data, offsets[(next_head + i) & mask])
               for i in range(n)]
        self._next_head = next_head + n
        self._unreleased += n
        if self._unreleased >= self.batch:
            self.release()
        return out

    def _desc_block_view(self) -> np.ndarray:
        words = self._desc_words
        if words is None:
            if self.slot_size != DESC_SIZE:
                raise ConfigError(
                    f"block descriptor mode needs slot_size == {DESC_SIZE}, "
                    f"got {self.slot_size}")
            words = np.frombuffer(
                self._buf, dtype="<u8", count=self.capacity * DESC_WORDS,
                offset=_DATA_OFF).reshape(self.capacity, DESC_WORDS)
            self._desc_words = words
        return words

    def try_push_desc_block(self, block: np.ndarray) -> int:
        """Producer-only: push an ``(n, 3)`` u64 descriptor block with
        at most two vectorized slot stores; publication follows the
        batch threshold exactly like :meth:`try_push_desc_many`."""
        next_tail = self._next_tail
        local_head = self._local_head
        capacity = self.capacity
        free = capacity - (next_tail - local_head)
        if free < len(block):
            local_head = self._local_head = int(self._shared_head[0])
            free = capacity - (next_tail - local_head)
        n = min(free, len(block))
        if n <= 0:
            return 0
        words = self._desc_block_view()
        pos = next_tail & self._mask
        run = min(n, capacity - pos)
        words[pos:pos + run] = block[:run]
        if n > run:
            words[:n - run] = block[run:n]
        next_tail += n
        self._next_tail = next_tail
        self._unpublished += n
        if self._unpublished >= self.batch:
            self._shared_tail[0] = next_tail
            self._unpublished = 0
        occ = next_tail - local_head
        if occ > self.hwm:
            self.hwm = occ
        return n

    def try_pop_desc_block(self, max_records: Optional[int] = None,
                           ) -> Optional[np.ndarray]:
        """Consumer-only: pop up to ``max_records`` descriptors as an
        owned ``(n, 3)`` u64 block (``None`` when empty); one stale-tail
        refresh when the cached run falls short of the request, one
        batch-release check for the run."""
        next_head = self._next_head
        local_tail = self._local_tail
        avail = local_tail - next_head
        want = self.capacity if max_records is None else max_records
        if avail < want:
            local_tail = self._local_tail = int(self._shared_tail[0])
            avail = local_tail - next_head
            if avail <= 0:
                return None
        occ = avail + self._unreleased
        if occ > self.hwm:
            self.hwm = occ
        n = avail if max_records is None else min(avail, max_records)
        words = self._desc_block_view()
        pos = next_head & self._mask
        run = min(n, self.capacity - pos)
        if n > run:
            out = np.concatenate((words[pos:pos + run], words[:n - run]))
        else:
            out = words[pos:pos + run].copy()
        self._next_head = next_head + n
        self._unreleased += n
        if self._unreleased >= self.batch:
            self.release()
        return out

    def release(self) -> None:
        """Hand consumed slots back to the producer."""
        if self._unreleased:
            self._shared_head[0] = self._next_head
            self._unreleased = 0

    def pop(self) -> bytes:
        record = self.try_pop()
        if record is None:
            raise QueueEmptyError("ring empty")
        return record

    def close(self) -> None:
        self.flush()
        self.release()
        self._shared_head = None  # type: ignore[assignment]
        self._shared_tail = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._desc_words = None
        self._buf.release()
