"""MCRingBuffer-style SPSC queue (thesis §3.5, reference [24]).

Lee et al.'s cache-efficient construction for line-rate monitoring:
shared head and tail live on separate cache lines, and each side works
against *local* copies, publishing (producer) or refreshing (consumer)
the shared word only once per batch.  This cuts coherence traffic by
``batch`` compared to the plain Lamport queue, at the cost of up to
``batch - 1`` records of publication latency — hence the explicit
:meth:`flush` the producer calls when it goes idle.

Record interface matches :class:`~repro.ipc.ring.SpscRing` except for
the batching semantics, which the tests pin explicitly.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from repro.errors import ConfigError, QueueEmptyError, QueueFullError

__all__ = ["McRingBuffer", "mc_bytes_needed"]

_HEADER = struct.Struct("<QQQQ")
_MAGIC = 0x4C56524D_4D435242  # "LVRMMCRB"
_LEN = struct.Struct("<I")

_HEAD_OFF = 64
_TAIL_OFF = 128
_DATA_OFF = 192


def mc_bytes_needed(capacity: int, slot_size: int) -> int:
    if capacity < 1 or capacity & (capacity - 1):
        raise ConfigError(f"capacity must be a power of two, got {capacity}")
    if slot_size < _LEN.size + 1:
        raise ConfigError(f"slot_size too small: {slot_size}")
    return _DATA_OFF + capacity * slot_size


class McRingBuffer:
    """Batched-update SPSC queue over a shared buffer."""

    def __init__(self, buffer, capacity: int, slot_size: int,
                 batch: Optional[int] = None, create: bool = True):
        needed = mc_bytes_needed(capacity, slot_size)
        if len(buffer) < needed:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {needed}")
        if batch is None:
            batch = min(16, capacity)
        if not 1 <= batch <= capacity:
            raise ConfigError(f"batch must be in [1, capacity], got {batch}")
        self.capacity = capacity
        self.slot_size = slot_size
        self.batch = batch
        #: Occupancy high-water mark as seen by this side.  The producer
        #: works against a *stale* head copy (the point of MCRingBuffer),
        #: so its view is a conservative upper bound refreshed at most
        #: once per batch of full-ring misses.
        self.hwm = 0
        self._buf = memoryview(buffer)
        self._shared_head = np.frombuffer(self._buf, dtype=np.uint64,
                                          count=1, offset=_HEAD_OFF)
        self._shared_tail = np.frombuffer(self._buf, dtype=np.uint64,
                                          count=1, offset=_TAIL_OFF)
        self._data = self._buf[_DATA_OFF:_DATA_OFF + capacity * slot_size]
        # Producer-local state.
        self._next_tail = 0          # where the next record goes
        self._local_head = 0         # stale copy of the shared head
        self._unpublished = 0
        # Consumer-local state.
        self._next_head = 0
        self._local_tail = 0         # stale copy of the shared tail
        self._unreleased = 0
        if create:
            _HEADER.pack_into(self._buf, 0, capacity, slot_size, _MAGIC,
                              batch)
            self._shared_head[0] = 0
            self._shared_tail[0] = 0
        else:
            cap, slot, magic, _b = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain an McRingBuffer")
            if (cap, slot) != (capacity, slot_size):
                raise ConfigError(
                    f"geometry mismatch: buffer has ({cap}, {slot}), "
                    f"caller expects ({capacity}, {slot_size})")
            self._next_tail = int(self._shared_tail[0])
            self._next_head = int(self._shared_head[0])
            self._local_head = self._next_head
            self._local_tail = self._next_tail

    @classmethod
    def attach(cls, buffer, batch: int = 16) -> "McRingBuffer":
        cap, slot, magic, stored_batch = _HEADER.unpack_from(
            memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain an McRingBuffer")
        return cls(buffer, int(cap), int(slot),
                   batch=int(stored_batch) or batch, create=False)

    @property
    def max_record(self) -> int:
        return self.slot_size - _LEN.size

    def __len__(self) -> int:
        """Published occupancy (unflushed records are not yet visible)."""
        return int(self._shared_tail[0] - self._shared_head[0])

    # -- producer -----------------------------------------------------------
    def try_push(self, record: bytes) -> bool:
        if len(record) > self.max_record:
            raise ConfigError(
                f"record of {len(record)} bytes exceeds slot payload "
                f"{self.max_record}")
        if self._next_tail - self._local_head >= self.capacity:
            # Refresh the stale head copy (one coherence miss per batch
            # of failures instead of per push).
            self._local_head = int(self._shared_head[0])
            if self._next_tail - self._local_head >= self.capacity:
                return False
        off = (self._next_tail & (self.capacity - 1)) * self.slot_size
        _LEN.pack_into(self._data, off, len(record))
        self._data[off + _LEN.size:off + _LEN.size + len(record)] = record
        self._next_tail += 1
        self._unpublished += 1
        occ = self._next_tail - self._local_head
        if occ > self.hwm:
            self.hwm = occ
        if self._unpublished >= self.batch:
            self.flush()
        return True

    def flush(self) -> None:
        """Publish all written-but-unannounced records."""
        if self._unpublished:
            self._shared_tail[0] = self._next_tail
            self._unpublished = 0

    def push(self, record: bytes) -> None:
        if not self.try_push(record):
            raise QueueFullError(f"ring full (capacity {self.capacity})")

    def probe_occupancy(self) -> int:
        """Sample *published* occupancy into ``hwm`` and return it."""
        occ = len(self)
        if occ > self.hwm:
            self.hwm = occ
        return occ

    # -- consumer -----------------------------------------------------------
    def try_pop(self) -> Optional[bytes]:
        if self._next_head >= self._local_tail:
            self._local_tail = int(self._shared_tail[0])
            if self._next_head >= self._local_tail:
                return None
        off = (self._next_head & (self.capacity - 1)) * self.slot_size
        (length,) = _LEN.unpack_from(self._data, off)
        record = bytes(self._data[off + _LEN.size:off + _LEN.size + length])
        self._next_head += 1
        self._unreleased += 1
        if self._unreleased >= self.batch:
            self.release()
        return record

    def release(self) -> None:
        """Hand consumed slots back to the producer."""
        if self._unreleased:
            self._shared_head[0] = self._next_head
            self._unreleased = 0

    def pop(self) -> bytes:
        record = self.try_pop()
        if record is None:
            raise QueueEmptyError("ring empty")
        return record

    def close(self) -> None:
        self.flush()
        self.release()
        self._shared_head = None  # type: ignore[assignment]
        self._shared_tail = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._buf.release()
