"""Per-VRI queue bundles.

Each VRI is associated with two pairs of queues (Figure 2.1): incoming/
outgoing *data* queues for frames and incoming/outgoing *control* queues
for events, control taking priority at the consumer.  This module groups
them so LVRM, the VRI adapter and the VRI all agree on the wiring; it is
generic over the queue implementation (DES or real ring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

Q = TypeVar("Q")

__all__ = ["VriChannels"]


@dataclass
class VriChannels(Generic[Q]):
    """The four queues wiring one VRI to LVRM.

    Directions are named from the VRI's perspective: ``data_in`` is what
    the VRI consumes, ``data_out`` what LVRM drains and transmits.
    """

    vri_id: int
    data_in: Q
    data_out: Q
    ctrl_in: Q
    ctrl_out: Q

    def queues(self) -> tuple:
        return (self.data_in, self.data_out, self.ctrl_in, self.ctrl_out)

    def pending_input(self) -> bool:
        """Whether the VRI has anything to consume (control or data)."""
        return not self.ctrl_in.is_empty or not self.data_in.is_empty
