"""Queue-implementation factory (thesis §3.5's extensibility point).

The thesis: "Our current lock-free queue implementation is based on
[23] (Lamport), while other improved lock-free queue implementations
[17, 24] can also be used in LVRM."  All three are implemented here and
selectable by name:

* ``"lamport"``     — :class:`~repro.ipc.ring.SpscRing`
* ``"fastforward"`` — :class:`~repro.ipc.fastforward.FastForwardRing` [17]
* ``"mcring"``      — :class:`~repro.ipc.mcring.McRingBuffer` [24]
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.ipc.fastforward import FastForwardRing, ff_bytes_needed
from repro.ipc.mcring import McRingBuffer, mc_bytes_needed
from repro.ipc.ring import SpscRing, ring_bytes_needed

__all__ = ["RING_KINDS", "ring_bytes_for", "make_ring", "attach_ring"]

RING_KINDS = ("lamport", "fastforward", "mcring")


def _entry(kind: str):
    if kind == "lamport":
        return SpscRing, ring_bytes_needed
    if kind == "fastforward":
        return FastForwardRing, ff_bytes_needed
    if kind == "mcring":
        return McRingBuffer, mc_bytes_needed
    raise ConfigError(
        f"unknown ring implementation {kind!r}; choose from {RING_KINDS}")


def ring_bytes_for(kind: str, capacity: int, slot_size: int) -> int:
    """Shared-memory bytes needed for a ring of the given kind."""
    _cls, size_fn = _entry(kind)
    return size_fn(capacity, slot_size)


def make_ring(kind: str, buffer, capacity: int, slot_size: int):
    """Create (and initialize) a ring of the given kind over ``buffer``."""
    cls, _size_fn = _entry(kind)
    return cls(buffer, capacity, slot_size, create=True)


def attach_ring(kind: str, buffer):
    """Attach to an existing ring of the given kind."""
    cls, _size_fn = _entry(kind)
    return cls.attach(buffer)
