"""Wait strategies and adaptive batch sizing for the data plane.

The runtime's poll loops (monitor drain, worker burst) previously
hard-coded a fixed sleep and a fixed burst size.  Both are now policy
objects:

* :class:`WaitPolicy` — what to do when a ring is empty.  ``spin``
  burns the core for minimum latency, ``yield`` cedes the remainder of
  the scheduler quantum (`sched_yield` via ``time.sleep(0)``), and
  ``sleep`` escalates from yields to short then progressively longer
  sleeps, trading wakeup latency for idle CPU.  Every actual sleep is
  counted so the ``wait_sleeps_total`` metric can expose how often a
  loop left the fast path.

* :class:`AimdBatcher` — additive-increase / multiplicative-decrease
  burst sizing between ``lo`` and ``hi`` (default 8..256).  A full
  burst (the ring had at least as many records as we asked for) grows
  the next burst by ``step``; a starved poll (nothing pending) halves
  it.  Under load the burst climbs toward ``hi`` and amortizes the
  shared-index synchronization over more records; when traffic is
  sparse it decays back so latency is bounded by small batches.

Both are cheap plain-Python objects deliberately free of registry
handles — callers sample ``sleeps``/``size`` into metrics at their own
cadence.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError

__all__ = ["WaitPolicy", "AimdBatcher", "WAIT_STRATEGIES"]

#: Valid ``wait_strategy`` values, in rough latency order.
WAIT_STRATEGIES = ("spin", "yield", "sleep")


class WaitPolicy:
    """Idle-wait behaviour for an empty-ring poll loop.

    Call :meth:`idle` each time a poll finds nothing, and :meth:`reset`
    as soon as work arrives.  ``sleep`` mode escalates: the first
    ``spin_rounds`` idles are yields, then sleeps grow from ``min_sleep``
    by 2x per idle round up to ``max_sleep``.
    """

    __slots__ = ("strategy", "spin_rounds", "min_sleep", "max_sleep",
                 "_idle_rounds", "sleeps")

    def __init__(self, strategy: str = "sleep", *, spin_rounds: int = 64,
                 min_sleep: float = 20e-6, max_sleep: float = 200e-6):
        if strategy not in WAIT_STRATEGIES:
            raise ConfigError(
                f"wait strategy must be one of {WAIT_STRATEGIES}, "
                f"got {strategy!r}")
        self.strategy = strategy
        self.spin_rounds = spin_rounds
        self.min_sleep = min_sleep
        self.max_sleep = max_sleep
        self._idle_rounds = 0
        #: Count of actual ``time.sleep(dt > 0)`` calls (wait_sleeps_total).
        self.sleeps = 0

    def reset(self) -> None:
        """Work arrived — drop back to the fast path."""
        self._idle_rounds = 0

    def idle(self) -> None:
        """One empty poll: spin, yield, or sleep per the strategy."""
        if self.strategy == "spin":
            return
        if self.strategy == "yield":
            time.sleep(0)
            return
        rounds = self._idle_rounds
        self._idle_rounds = rounds + 1
        if rounds < self.spin_rounds:
            time.sleep(0)
            return
        dt = self.min_sleep * (1 << min(rounds - self.spin_rounds, 16))
        if dt > self.max_sleep:
            dt = self.max_sleep
        self.sleeps += 1
        time.sleep(dt)


class AimdBatcher:
    """AIMD burst sizing: ``+step`` on a full burst, halve on starvation."""

    __slots__ = ("lo", "hi", "step", "size")

    def __init__(self, lo: int = 8, hi: int = 256, step: int = 8):
        if not 1 <= lo <= hi:
            raise ConfigError(f"need 1 <= lo <= hi, got lo={lo} hi={hi}")
        self.lo = lo
        self.hi = hi
        self.step = step
        self.size = lo

    def update(self, got: int) -> int:
        """Record the outcome of one burst that asked for :attr:`size`
        records and received ``got``; returns the next burst size."""
        if got >= self.size:
            nxt = self.size + self.step
            self.size = nxt if nxt < self.hi else self.hi
        elif got == 0:
            nxt = self.size >> 1
            self.size = nxt if nxt > self.lo else self.lo
        return self.size
