"""The DES model of an IPC queue.

Semantically a bounded FIFO with drop-tail, mirroring the real
:class:`~repro.ipc.ring.SpscRing`.  On top it records what the LVRM
components need:

* instantaneous occupancy (``data_count``) — the load-estimation input
  ("the VRI adapter's ring buffer's data count", Figure 3.4);
* drop counts — the loss signal for achievable throughput;
* a consumer wake callback — VRIs sleep when both their queues are
  empty and are woken by the next put (the DES stand-in for the real
  busy-poll, which burns CPU but adds no ordering behaviour).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.obs.registry import default_registry
from repro.sim.engine import Simulator

__all__ = ["SimIpcQueue", "Corrupted"]


class Corrupted:
    """Wrapper marking a queue record whose slot was corrupted.

    The DES stand-in for a torn/overwritten shared-memory ring slot: the
    producer's push succeeds, but what the consumer pops is garbage.  A
    consumer that cares (the VRI loop) recognizes the wrapper, charges
    the pop cost, and discards the record; the original item is kept so
    post-mortems can say *what* was corrupted.
    """

    __slots__ = ("item",)

    def __init__(self, item):
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Corrupted {self.item!r}>"


class SimIpcQueue:
    """Bounded FIFO with occupancy stats and a wake hook."""

    def __init__(self, sim: Simulator, capacity: int = 1024, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        #: Occupancy high-water mark (a bare int on the hot path; named
        #: queues surface it as a pull-mode obs gauge read at scrape
        #: time, so pushes never pay the registry indirection).
        self.hwm = 0
        if name:
            default_registry().gauge(
                "queue_occupancy_hwm",
                "highest occupancy a DES IPC queue ever reached",
                queue=name).set_fn(lambda: self.hwm)
        #: Called (once per transition from empty) when an item arrives;
        #: the consumer re-registers each time it goes back to sleep.
        self._wake: Optional[Callable[[], None]] = None
        # Fault injection (repro.faults): pending slot faults.  A single
        # combined guard keeps the hot push path at one extra branch.
        self._inject = 0
        self._drop_next = 0
        self._corrupt_next = 0
        #: Records silently lost to injected slot drops (the producer's
        #: push succeeded; the record never reached the consumer).
        self.fault_dropped = 0
        #: Records delivered corrupted (wrapped in :class:`Corrupted`).
        self.fault_corrupted = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def data_count(self) -> int:
        """Instantaneous occupancy (the JSQ / load-estimation signal)."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    # -- fault injection (repro.faults) -----------------------------------------
    def inject_drop(self, n: int = 1) -> None:
        """Silently lose the next ``n`` pushed records (a dropped slot)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        self._drop_next += n
        self._inject += n

    def inject_corrupt(self, n: int = 1) -> None:
        """Corrupt the next ``n`` pushed records (a torn slot)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        self._corrupt_next += n
        self._inject += n

    # -- producer ---------------------------------------------------------------
    def try_push(self, item: Any) -> bool:
        if self._inject:
            # Drops fire before corruptions, in injection order within
            # each kind — a fixed rule so schedules are deterministic.
            self._inject -= 1
            if self._drop_next:
                self._drop_next -= 1
                self.fault_dropped += 1
                # The producer believes the push succeeded; the record
                # simply never becomes visible to the consumer.
                return True
            self._corrupt_next -= 1
            self.fault_corrupted += 1
            item = Corrupted(item)
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.pushed += 1
        if len(self._items) > self.hwm:
            self.hwm = len(self._items)
        if self._wake is not None:
            wake, self._wake = self._wake, None
            wake()
        return True

    # -- consumer ---------------------------------------------------------------
    def try_pop(self) -> Optional[Any]:
        if not self._items:
            return None
        self.popped += 1
        return self._items.popleft()

    def set_wake(self, callback: Callable[[], None]) -> None:
        """Register a one-shot wake callback; fired on the next push.

        If the queue is already non-empty the callback fires immediately
        (the consumer should then drain before re-registering).
        """
        if self._items:
            callback()
        else:
            self._wake = callback

    def clear_wake(self) -> None:
        self._wake = None
