"""Shared-memory frame arena: the storage half of the zero-copy plane.

The legacy data plane copies every frame twice per ring hop (pack into
the slot on push, ``.tobytes()`` on pop).  The arena removes both: the
monitor writes a frame's bytes into a shared-memory *chunk* exactly
once, the descriptor rings (:mod:`repro.ipc.desc`) carry 24-byte
pointers at it, and every later stage reads the payload through a
borrowed ``memoryview``.

Allocation is built to stay SPSC-cheap, like the rings it feeds:

* **Slabs in power-of-two size classes.**  The segment is carved at
  creation into fixed chunks (e.g. 128/256/512/1024/2048 B); an
  allocation takes the smallest class that fits, so there is no
  boundary-tag bookkeeping and an offset maps back to its chunk by
  arithmetic alone.
* **Per-producer free-list shards.**  Chunks of each class are
  partitioned round-robin across ``n_shards`` shards.  Each
  :class:`ArenaProducer` owns one shard and allocates from a plain
  process-local list — no shared state is touched on the alloc fast
  path.  All shards belong to the single owning process (the monitor);
  shards exist so multiple producer handles in that process never
  contend.
* **Lock-free reclaim rings.**  A consumer process frees a chunk by
  pushing its offset onto its *own* SPSC reclaim ring (one ring per
  attached freeer, fixed at creation), which the owner drains back into
  the right shard's free list when a shard runs dry.  Producer and
  consumer therefore never share a free list, and every shared word is
  single-writer — the same discipline as the Lamport ring.
* **Refcounts.**  One ``uint32`` per chunk, living in the segment.  The
  chunk has a single logical owner at every instant (producer until the
  descriptor is published, consumer until it frees), so plain
  read-modify-writes are safe; the count exists to catch protocol
  violations (double free, leak) and to let a borrower pin a chunk past
  its normal hand-back (:meth:`FrameArena.incref`).

The refcount scan doubles as the observability hook: ``inuse_bytes()``
and ``inuse_chunks()`` walk the rc arrays, so the ``arena_inuse_bytes``
gauge can run in pull mode and the data plane never touches the
registry.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ArenaError, ConfigError

__all__ = ["FrameArena", "ArenaProducer", "arena_bytes_needed",
           "DEFAULT_SIZE_CLASSES"]

_HEADER = struct.Struct("<QHHIQ")  # magic, n_classes, n_reclaim, chunks, pad
_STAMPS2 = struct.Struct("<dd")
_STAMPS4 = struct.Struct("<dddd")
_MAGIC = 0x4C56524D_4152454E  # "LVRMAREN"
#: Per-class table entry: class_size, chunk_count, rc_off, data_off.
_CLASS = struct.Struct("<QQQQ")
_HEADER_BYTES = 64

#: Classes sized for Ethernet frames (84..1538 B wire sizes) plus probe
#: headroom; a 2048 B top class also fits the legacy 2048 B ring slot.
DEFAULT_SIZE_CLASSES = (128, 256, 512, 1024, 2048)

# -- the reclaim ring: a minimal SPSC ring of u64 offsets -------------------
# Head and tail sit 64 B apart (no false sharing); capacity is a power
# of two at least one larger than the total chunk count, so a reclaim
# push can never fail: there are never more freeable chunks than chunks.
_R_HEAD = 0
_R_TAIL = 64
_R_DATA = 128


def _reclaim_bytes(capacity: int) -> int:
    return _R_DATA + capacity * 8


class _OffsetRing:
    """SPSC ring of chunk offsets (one writer: the freeing process;
    one reader: the arena owner)."""

    __slots__ = ("capacity", "_head", "_tail", "_slots", "_mask")

    def __init__(self, buf, capacity: int, create: bool):
        self.capacity = capacity
        self._head = np.frombuffer(buf, dtype=np.uint64, count=1,
                                   offset=_R_HEAD)
        self._tail = np.frombuffer(buf, dtype=np.uint64, count=1,
                                   offset=_R_TAIL)
        self._slots = np.frombuffer(buf, dtype=np.uint64, count=capacity,
                                    offset=_R_DATA)
        self._mask = capacity - 1
        if create:
            self._head[0] = 0
            self._tail[0] = 0

    def push(self, offset: int) -> None:
        tail = int(self._tail[0])
        if tail - int(self._head[0]) >= self.capacity:
            raise ArenaError("reclaim ring overflow (more frees than "
                             "chunks: double free?)")
        self._slots[tail & self._mask] = offset
        self._tail[0] = tail + 1  # publish

    def pop_many(self) -> List[int]:
        head = int(self._head[0])
        n = int(self._tail[0]) - head
        if n <= 0:
            return []
        mask = self._mask
        slots = self._slots
        out = [int(slots[(head + i) & mask]) for i in range(n)]
        self._head[0] = head + n  # release
        return out

    def close(self) -> None:
        self._head = None  # type: ignore[assignment]
        self._tail = None  # type: ignore[assignment]
        self._slots = None  # type: ignore[assignment]


def _normalize_classes(size_classes: Sequence[int]) -> Tuple[int, ...]:
    classes = tuple(sorted(set(int(c) for c in size_classes)))
    if not classes:
        raise ConfigError("need at least one size class")
    for c in classes:
        if c < 8 or c & (c - 1):
            raise ConfigError(
                f"size classes must be powers of two >= 8, got {c}")
    return classes


def _pow2_at_least(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def _layout(size_classes: Sequence[int], chunks_per_class: int,
            n_reclaim: int):
    """Compute (classes, reclaim_cap, reclaim_off, class_table, total)."""
    classes = _normalize_classes(size_classes)
    if chunks_per_class < 1:
        raise ConfigError("chunks_per_class must be >= 1")
    if n_reclaim < 1:
        raise ConfigError("need at least one reclaim ring")
    total_chunks = chunks_per_class * len(classes)
    reclaim_cap = _pow2_at_least(total_chunks + 1)
    off = _HEADER_BYTES + len(classes) * _CLASS.size
    # Align the reclaim region to 64 B.
    off = (off + 63) & ~63
    reclaim_off = off
    off += n_reclaim * _reclaim_bytes(reclaim_cap)
    table = []
    for csize in classes:
        rc_off = off
        off += chunks_per_class * 4
        off = (off + 63) & ~63
        data_off = off
        off += chunks_per_class * csize
        off = (off + 63) & ~63
        table.append((csize, chunks_per_class, rc_off, data_off))
    return classes, reclaim_cap, reclaim_off, table, off


def arena_bytes_needed(size_classes: Sequence[int] = DEFAULT_SIZE_CLASSES,
                       chunks_per_class: int = 1024,
                       n_reclaim: int = 1) -> int:
    """Shared-memory bytes required for an arena of this geometry."""
    return _layout(size_classes, chunks_per_class, n_reclaim)[4]


class FrameArena:
    """Slab arena over a shared buffer (create in the owner, attach
    anywhere).  Any attached process may :meth:`view` and :meth:`free`;
    only the owner allocates, through :meth:`producer` handles."""

    def __init__(self, buffer, size_classes: Sequence[int] = DEFAULT_SIZE_CLASSES,
                 chunks_per_class: int = 1024, n_reclaim: int = 1,
                 create: bool = True):
        classes, rcap, roff, table, needed = _layout(
            size_classes, chunks_per_class, n_reclaim)
        if len(buffer) < needed:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {needed}")
        self._buf = memoryview(buffer)
        self.size_classes = classes
        self.chunks_per_class = chunks_per_class
        self.n_reclaim = n_reclaim
        self._class_table = table
        #: Per-class refcount arrays (uint32 views into the segment).
        self._rc = [np.frombuffer(self._buf, dtype=np.uint32,
                                  count=count, offset=rc_off)
                    for (_size, count, rc_off, _d) in table]
        self._reclaim = [
            _OffsetRing(self._buf[roff + i * _reclaim_bytes(rcap):
                                  roff + (i + 1) * _reclaim_bytes(rcap)],
                        rcap, create)
            for i in range(n_reclaim)]
        #: Total allocations served (owner-side; survives attach as 0).
        self.alloc_total = 0
        if create:
            _HEADER.pack_into(self._buf, 0, _MAGIC, len(classes),
                              n_reclaim, chunks_per_class, 0)
            for i, (csize, _cnt, _rc, _d) in enumerate(table):
                _CLASS.pack_into(self._buf, _HEADER_BYTES + i * _CLASS.size,
                                 csize, chunks_per_class, 0, 0)
            for rc in self._rc:
                rc[:] = 0
        else:
            magic, n_classes, n_recl, cpc, _ = _HEADER.unpack_from(
                self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain a FrameArena")
            if (n_classes, n_recl, cpc) != (len(classes), n_reclaim,
                                            chunks_per_class):
                raise ConfigError(
                    f"geometry mismatch: buffer has ({n_classes}, {n_recl}, "
                    f"{cpc}), caller expects ({len(classes)}, {n_reclaim}, "
                    f"{chunks_per_class})")

    @classmethod
    def attach(cls, buffer,
               size_classes: Sequence[int] = DEFAULT_SIZE_CLASSES) -> "FrameArena":
        """Attach to an existing arena, reading geometry from its header."""
        magic, _n_classes, n_reclaim, cpc, _ = _HEADER.unpack_from(
            memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain a FrameArena")
        return cls(buffer, size_classes=size_classes, chunks_per_class=int(cpc),
                   n_reclaim=int(n_reclaim), create=False)

    # -- offset arithmetic -----------------------------------------------------
    def _locate(self, offset: int) -> Tuple[int, int]:
        """``(class_index, chunk_index)`` of the chunk at ``offset``."""
        for ci, (csize, count, _rc, data_off) in enumerate(self._class_table):
            end = data_off + count * csize
            if data_off <= offset < end:
                rel = offset - data_off
                if rel % csize:
                    raise ArenaError(f"offset {offset} is not chunk-aligned")
                return ci, rel // csize
        raise ArenaError(f"offset {offset} is outside every slab")

    def class_for(self, nbytes: int) -> int:
        """Index of the smallest size class holding ``nbytes``."""
        for ci, csize in enumerate(self.size_classes):
            if nbytes <= csize:
                return ci
        raise ArenaError(
            f"no size class fits {nbytes} bytes "
            f"(largest is {self.size_classes[-1]})")

    # -- payload access --------------------------------------------------------
    @property
    def buffer(self) -> memoryview:
        """The whole shared segment as one writable buffer — what the
        burst kernels (:mod:`repro.kernels`) gather descriptor blocks
        from without per-frame slicing.  Same lifetime rules as
        :meth:`view`: chunk contents are only meaningful while their
        descriptors are in flight."""
        return self._buf

    def view(self, offset: int, length: int) -> memoryview:
        """Borrowed zero-copy view of a frame's bytes.  Valid until the
        chunk is freed; never hold one across :meth:`free`."""
        return self._buf[offset:offset + length]

    def chunk_view(self, offset: int, ci: Optional[int] = None) -> memoryview:
        """The whole chunk (payload + headroom) at ``offset``."""
        if ci is None:
            ci, _ = self._locate(offset)
        return self._buf[offset:offset + self.size_classes[ci]]

    def read_block(self, block) -> List[bytes]:
        """Owned copies of every frame an ``(n, 3)`` descriptor block
        points at — the drain side's single copy, amortized over the
        batch."""
        buf = self._buf
        ends = (block[:, 0] + (block[:, 1] & np.uint64(0xFFFFFFFF))).tolist()
        return [bytes(buf[off:end])
                for off, end in zip(block[:, 0].tolist(), ends)]

    # -- refcounting -----------------------------------------------------------
    def refcount(self, offset: int) -> int:
        ci, idx = self._locate(offset)
        return int(self._rc[ci][idx])

    def incref(self, offset: int) -> int:
        """Pin a chunk past its normal hand-back (copy-on-write escape
        hatch for callers that retain a borrowed frame)."""
        ci, idx = self._locate(offset)
        rc = self._rc[ci]
        val = int(rc[idx])
        if val < 1:
            raise ArenaError(f"incref of free chunk at offset {offset}")
        rc[idx] = val + 1
        return val + 1

    def free(self, offset: int, reclaim: int = 0) -> None:
        """Release one reference; at zero, hand the chunk back to the
        owner through reclaim ring ``reclaim`` (this process's ring)."""
        ci, idx = self._locate(offset)
        rc = self._rc[ci]
        val = int(rc[idx])
        if val < 1:
            raise ArenaError(f"double free of chunk at offset {offset}")
        rc[idx] = val - 1
        if val == 1:
            self._reclaim[reclaim].push(offset)

    # -- latency-probe stamps --------------------------------------------------
    # A probed frame's chunk is allocated with PROBE_HEADROOM extra
    # bytes; the four span stamps live there as two little-endian double
    # pairs right after the payload (producer pair at +0, consumer pair
    # at +16), so the descriptor needs no room for them.

    def write_stamps(self, offset: int, length: int, pair: int,
                     t_a: float, t_b: float) -> None:
        """Write stamp pair ``pair`` (0 = producer t_start/t_push,
        1 = consumer t_pop/t_done) into the chunk's probe headroom."""
        _STAMPS2.pack_into(self._buf, offset + length + 16 * pair, t_a, t_b)

    def read_stamps(self, offset: int, length: int
                    ) -> Tuple[float, float, float, float]:
        """All four probe stamps: (t_start, t_push, t_pop, t_done)."""
        return _STAMPS4.unpack_from(self._buf, offset + length)

    # -- observability ---------------------------------------------------------
    def inuse_chunks(self) -> int:
        """Chunks with a live reference (refcount scan; scrape-time)."""
        return sum(int(np.count_nonzero(rc)) for rc in self._rc)

    def inuse_bytes(self) -> int:
        """Bytes held by live chunks, counted at class granularity."""
        return sum(int(np.count_nonzero(rc)) * csize
                   for rc, (csize, _c, _r, _d)
                   in zip(self._rc, self._class_table))

    def capacity_bytes(self) -> int:
        return sum(csize * count
                   for (csize, count, _r, _d) in self._class_table)

    # -- owner side ------------------------------------------------------------
    def producer(self, shard: int = 0, n_shards: int = 1,
                 reclaim_ids: Optional[Sequence[int]] = None
                 ) -> "ArenaProducer":
        """An allocator handle over shard ``shard`` of ``n_shards``.

        Only the owning process may create producers, and each shard at
        most once; the shard partition must be identical across all
        producers of one arena.  ``reclaim_ids`` restricts the rings
        this producer's refill drains (a sharded owner gives each
        producer exactly its consumers' rings); ``None`` drains all.
        """
        return ArenaProducer(self, shard, n_shards, reclaim_ids=reclaim_ids)

    def drain_reclaim(self, ids: Optional[Sequence[int]] = None
                      ) -> List[int]:
        """Owner-side: pop every pending freed offset from the named
        reclaim rings (all of them when ``ids`` is None; callers route
        the offsets back to shard free lists)."""
        out: List[int] = []
        rings = (self._reclaim if ids is None
                 else [self._reclaim[i] for i in ids])
        for ring in rings:
            out.extend(ring.pop_many())
        return out

    def close(self) -> None:
        for ring in self._reclaim:
            ring.close()
        self._rc = []
        self._buf.release()


class ArenaProducer:
    """One shard's allocator: a process-local free list per size class,
    refilled from the arena's reclaim rings.  Alloc and free-local touch
    no shared state except the chunk's own refcount word."""

    __slots__ = ("arena", "shard", "n_shards", "reclaim_ids", "_free",
                 "_seed_guard", "alloc_total", "alloc_failures")

    def __init__(self, arena: FrameArena, shard: int, n_shards: int,
                 reclaim_ids: Optional[Sequence[int]] = None):
        if not 0 <= shard < n_shards:
            raise ConfigError(f"shard {shard} outside [0, {n_shards})")
        self.arena = arena
        self.shard = shard
        self.n_shards = n_shards
        self.reclaim_ids = (tuple(reclaim_ids) if reclaim_ids is not None
                            else None)
        self.alloc_total = 0
        self.alloc_failures = 0
        # Purge our reclaim rings before seeding: entries queued while no
        # producer existed (a restarting shard's backlog) point at rc==0
        # chunks the seed scan below will pick up anyway — folding them
        # in later would duplicate free-list entries.
        arena.drain_reclaim(self.reclaim_ids)
        # Seed the shard's free lists with its round-robin partition of
        # each class, skipping chunks currently allocated (attach after
        # a restart must not hand out live frames).
        self._free: List[List[int]] = []
        for ci, (csize, count, _rc, data_off) in enumerate(
                arena._class_table):
            rc = arena._rc[ci]
            self._free.append([
                data_off + i * csize
                for i in range(shard, count, n_shards)
                if rc[i] == 0])
        # A consumer may have been mid-free at seed time (rc already 0,
        # reclaim push not yet visible): its entry would land after the
        # purge and double-add a seeded offset.  Guard every seeded
        # offset; the guard drains to empty as chunks are allocated, so
        # the steady-state cost is one falsy check.
        self._seed_guard = {off for free in self._free for off in free}

    def free_chunks(self, ci: Optional[int] = None) -> int:
        """Free chunks available to this shard (one class or all)."""
        if ci is not None:
            return len(self._free[ci])
        return sum(len(f) for f in self._free)

    def _refill(self) -> None:
        """Fold reclaimed offsets back into this producer's shard lists.

        Only this producer's ``reclaim_ids`` rings are drained (all
        rings when unrestricted).  Offsets still under the seed guard
        are stale pre-seed frees — already in the free list — and are
        discarded instead of double-added.  Foreign-shard offsets raise:
        the ring partition must match the chunk partition.
        """
        arena = self.arena
        guard = self._seed_guard
        for off in arena.drain_reclaim(self.reclaim_ids):
            if guard and off in guard:
                guard.discard(off)
                continue
            ci, idx = arena._locate(off)
            if idx % self.n_shards != self.shard:
                raise ArenaError(
                    f"reclaimed offset {off} belongs to shard "
                    f"{idx % self.n_shards}, not {self.shard}")
            self._free[ci].append(off)

    def alloc(self, nbytes: int, headroom: int = 0) -> Optional[Tuple[int, int]]:
        """Allocate a chunk for ``nbytes`` (+ ``headroom``) and take the
        initial reference.  Returns ``(offset, class_index)`` or ``None``
        when the class (and all larger ones) is exhausted even after a
        reclaim pass."""
        arena = self.arena
        ci = arena.class_for(nbytes + headroom)
        refilled = False
        for cls_idx in range(ci, len(self._free)):
            free = self._free[cls_idx]
            if not free and not refilled:
                self._refill()
                refilled = True
            if free:
                off = free.pop()
                if self._seed_guard:
                    self._seed_guard.discard(off)
                rc = arena._rc[cls_idx]
                _c, _n, _r, data_off = arena._class_table[cls_idx]
                idx = (off - data_off) // arena.size_classes[cls_idx]
                if rc[idx] != 0:
                    raise ArenaError(
                        f"free list handed out live chunk at {off}")
                rc[idx] = 1
                self.alloc_total += 1
                arena.alloc_total += 1
                return off, cls_idx
        self.alloc_failures += 1
        return None

    def write(self, data, headroom: int = 0) -> Optional[Tuple[int, int]]:
        """Allocate and copy ``data`` in — the data plane's single copy.
        Returns ``(offset, length)`` or ``None`` when exhausted."""
        length = len(data)
        got = self.alloc(length, headroom)
        if got is None:
            return None
        off, _ci = got
        self.arena._buf[off:off + length] = data
        return off, length

    def write_many(self, payloads: Sequence, headroom: int = 0
                   ) -> Tuple[List[int], List[int]]:
        """Bulk :meth:`write`: allocate and copy a whole burst, taking
        the chunk refcounts with one vectorized store per size class
        instead of a numpy scalar write per frame.

        Returns ``(offsets, lengths)`` parallel lists.  On exhaustion
        the lists are shorter than ``payloads`` — the unwritten tail is
        the caller's to count as dropped.  Raises
        :class:`~repro.errors.ArenaError` if a payload exceeds the
        largest size class.
        """
        arena = self.arena
        sizes = arena.size_classes
        n_sizes = len(sizes)
        free_lists = self._free
        buf = arena._buf
        n = len(payloads)
        if not n:
            return [], []
        # Fast path: a uniform burst (every payload the same length —
        # the common shape for a dispatch batch) takes its whole
        # allocation as one slice off a single class's free list.
        lens = [len(p) for p in payloads]
        length0 = lens[0]
        ci = bisect_left(sizes, length0 + headroom)
        if ci < n_sizes and lens.count(length0) == n:
            free = free_lists[ci]
            if len(free) < n:
                self._refill()
            avail = len(free)
            if avail >= n:
                taken = free[avail - n:]
                del free[avail - n:]
                if self._seed_guard:
                    self._seed_guard.difference_update(taken)
                for off, payload in zip(taken, payloads):
                    buf[off:off + length0] = payload
                csize, _cnt, _r, data_off = arena._class_table[ci]
                idx = (np.fromiter(taken, dtype=np.int64, count=n)
                       - data_off) // csize
                rc = arena._rc[ci]
                if rc[idx].any():
                    raise ArenaError("free list handed out a live chunk")
                rc[idx] = 1
                self.alloc_total += n
                arena.alloc_total += n
                return taken, lens
        offs: List[int] = []
        lens = []
        per_class: List[Optional[List[int]]] = [None] * n_sizes
        refilled = False
        for payload in payloads:
            length = len(payload)
            ci = bisect_left(sizes, length + headroom)
            if ci >= n_sizes:
                raise ArenaError(
                    f"no size class fits {length + headroom} bytes "
                    f"(largest is {sizes[-1]})")
            off = None
            while ci < n_sizes:
                free = free_lists[ci]
                if not free and not refilled:
                    self._refill()
                    refilled = True
                if free:
                    off = free.pop()
                    break
                ci += 1
            if off is None:
                self.alloc_failures += 1
                break
            if self._seed_guard:
                self._seed_guard.discard(off)
            buf[off:off + length] = payload
            offs.append(off)
            lens.append(length)
            bucket = per_class[ci]
            if bucket is None:
                bucket = per_class[ci] = []
            bucket.append(off)
        for ci, bucket in enumerate(per_class):
            if not bucket:
                continue
            csize, _cnt, _r, data_off = arena._class_table[ci]
            idx = (np.fromiter(bucket, dtype=np.int64, count=len(bucket))
                   - data_off) // csize
            rc = arena._rc[ci]
            if rc[idx].any():
                raise ArenaError("free list handed out a live chunk")
            rc[idx] = 1
        n = len(offs)
        self.alloc_total += n
        arena.alloc_total += n
        return offs, lens

    def write_block(self, payloads: Sequence, headroom: int = 0,
                    stamp: int = 0):
        """Fused :meth:`write_many` + descriptor pack: stage a burst and
        return its ``(n, 3)`` u64 descriptor block (iface/flags zero,
        ``stamp`` filled in) ready for ``try_push_desc_block``.

        A uniform burst builds the block straight from the allocation's
        offset array — no per-frame descriptor packing at all.  On
        exhaustion the block is shorter than ``payloads``; free unsent
        rows back with ``free_local_many(block[sent:, 0])``.
        """
        arena = self.arena
        sizes = arena.size_classes
        n = len(payloads)
        if n:
            lens = [len(p) for p in payloads]
            length0 = lens[0]
            ci = bisect_left(sizes, length0 + headroom)
            if ci < len(sizes) and lens.count(length0) == n:
                free = self._free[ci]
                if len(free) < n:
                    self._refill()
                avail = len(free)
                if avail >= n:
                    taken = free[avail - n:]
                    del free[avail - n:]
                    if self._seed_guard:
                        self._seed_guard.difference_update(taken)
                    buf = arena._buf
                    for off, payload in zip(taken, payloads):
                        buf[off:off + length0] = payload
                    csize, _cnt, _r, data_off = arena._class_table[ci]
                    off_arr = np.fromiter(taken, dtype=np.uint64, count=n)
                    idx = ((off_arr.view(np.int64) - data_off)
                           >> (csize.bit_length() - 1))
                    rc = arena._rc[ci]
                    if rc[idx].any():
                        raise ArenaError(
                            "free list handed out a live chunk")
                    rc[idx] = 1
                    self.alloc_total += n
                    arena.alloc_total += n
                    block = np.empty((n, 3), dtype="<u8")
                    block[:, 0] = off_arr
                    block[:, 1] = length0
                    block[:, 2] = stamp
                    return block
        from repro.ipc.desc import pack_desc_block
        offs, lens = self.write_many(payloads, headroom)
        return pack_desc_block(offs, lens, stamp=stamp)

    def free_local_many(self, offsets: Sequence[int]) -> None:
        """Bulk :meth:`free_local`: refcounts drop with one vectorized
        store per size class.  Falls back to the scalar path (exact
        double-free / underflow reporting) for any class whose batch
        contains pinned chunks or duplicate offsets."""
        n = len(offsets)
        if not n:
            return
        arena = self.arena
        if isinstance(offsets, np.ndarray):
            # e.g. a descriptor block's offset column: make it a
            # contiguous signed array without a Python round trip.
            arr = np.ascontiguousarray(offsets, dtype=np.uint64).view(
                np.int64)
        else:
            arr = np.fromiter(offsets, dtype=np.int64, count=n)
        n_shards = self.n_shards
        # Fast path: when every offset lands in the class of the first
        # one (a uniform burst), one vectorized pass covers the batch.
        first = int(arr[0])
        for ci, (csize, count, _r, data_off) in enumerate(
                arena._class_table):
            if not data_off <= first < data_off + count * csize:
                continue
            rel = arr - data_off
            # A negative rel views as a huge unsigned, so one max()
            # check covers both bounds; misses fall to the slow path.
            if int(rel.view(np.uint64).max()) >= count * csize:
                break
            if (rel & (csize - 1)).any():
                raise ArenaError("offset is not chunk-aligned")
            idx = rel >> (csize.bit_length() - 1)
            rc = arena._rc[ci]
            vals = rc[idx]
            srt = np.sort(idx)
            if (vals != 1).any() or (srt[1:] == srt[:-1]).any():
                # Pinned (incref'd) chunks, a double free, or an
                # intra-batch duplicate: the scalar path reports the
                # precise offset.
                for off in arr.tolist():
                    self.free_local(off)
                return
            if n_shards > 1 and (idx % n_shards != self.shard).any():
                raise ArenaError(
                    f"batch contains chunks of another shard "
                    f"(this is shard {self.shard})")
            rc[idx] = 0
            self._free[ci].extend(arr.tolist())
            return
        matched = 0
        for ci, (csize, count, _r, data_off) in enumerate(
                arena._class_table):
            mask = (arr >= data_off) & (arr < data_off + count * csize)
            hits = int(np.count_nonzero(mask))
            if not hits:
                continue
            matched += hits
            sel = arr[mask] if hits != n else arr
            rel = sel - data_off
            idx = rel // csize
            if (rel - idx * csize).any():
                raise ArenaError("offset is not chunk-aligned")
            rc = arena._rc[ci]
            vals = rc[idx]
            if (vals != 1).any() or np.unique(idx).size != hits:
                # Pinned (incref'd) chunks, a double free, or an
                # intra-batch duplicate: the scalar path reports the
                # precise offset.
                for off in sel.tolist():
                    self.free_local(off)
                continue
            if n_shards > 1 and (idx % n_shards != self.shard).any():
                raise ArenaError(
                    f"batch contains chunks of another shard "
                    f"(this is shard {self.shard})")
            rc[idx] = 0
            self._free[ci].extend(sel.tolist())
        if matched != n:
            raise ArenaError("batch contains an offset outside every slab")

    def free_local(self, offset: int) -> None:
        """Owner fast path: return a chunk straight to this shard's free
        list (no reclaim ring hop)."""
        arena = self.arena
        ci, idx = arena._locate(offset)
        rc = arena._rc[ci]
        val = int(rc[idx])
        if val < 1:
            raise ArenaError(f"double free of chunk at offset {offset}")
        rc[idx] = val - 1
        if val == 1:
            if idx % self.n_shards != self.shard:
                raise ArenaError(
                    f"chunk at {offset} belongs to shard "
                    f"{idx % self.n_shards}, not {self.shard}")
            self._free[ci].append(offset)
