"""Shared-memory segments (the ``shmget()`` of thesis §3.8).

LVRM allocates one shared-memory segment per IPC queue and passes the
identifier to the VRI via its main arguments.  We reproduce this with
``multiprocessing.shared_memory``: the segment *name* plays the role of
the System V identifier and crosses the process boundary as a plain
string.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional

from repro.errors import RuntimeBackendError

__all__ = ["SharedSegment"]


class SharedSegment:
    """Owned or attached shared-memory segment with deterministic cleanup."""

    def __init__(self, name: Optional[str] = None, size: int = 0,
                 create: bool = False):
        if create and size <= 0:
            raise RuntimeBackendError("creating a segment requires size > 0")
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=create, size=size if create else 0)
        except FileNotFoundError as exc:
            raise RuntimeBackendError(
                f"no such shared segment: {name!r}") from exc
        except FileExistsError as exc:
            raise RuntimeBackendError(
                f"shared segment already exists: {name!r}") from exc
        self._owner = create
        self._closed = False

    @classmethod
    def create(cls, size: int, name: Optional[str] = None) -> "SharedSegment":
        return cls(name=name, size=size, create=True)

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        return cls(name=name, create=False)

    @property
    def name(self) -> str:
        """The identifier to pass to other processes."""
        return self._shm.name

    @property
    def buf(self):
        if self._closed:
            raise RuntimeBackendError("segment is closed")
        return self._shm.buf

    @property
    def size(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Detach; the owner also unlinks (destroys) the segment."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # another owner raced us; fine
                pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
