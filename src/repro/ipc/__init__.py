"""Inter-process communication queues (thesis §3.5).

Two families with one set of semantics:

* :class:`~repro.ipc.ring.SpscRing` — a *real* lock-free single-producer
  single-consumer ring in POSIX shared memory (Lamport's construction
  [23]): the producer only writes the tail index, the consumer only the
  head index, both 64-bit aligned stores.  Used by the real-process
  runtime backend and exercised heavily by property tests.
* :class:`~repro.ipc.sim_queue.SimIpcQueue` — the DES model of the same
  queue: bounded FIFO with occupancy statistics (the load-estimation
  input) and drop-tail accounting.

Every VRI owns two pairs: data queues and control queues, with control
taking priority at the consumer (thesis §2.1).
"""

from repro.ipc.ring import SpscRing, RingFull, RingEmpty
from repro.ipc.fastforward import FastForwardRing
from repro.ipc.mcring import McRingBuffer
from repro.ipc.factory import RING_KINDS, attach_ring, make_ring, ring_bytes_for
from repro.ipc.shm import SharedSegment
from repro.ipc.sim_queue import SimIpcQueue
from repro.ipc.queues import VriChannels
from repro.ipc.messages import ControlEvent, encode_event, decode_event
from repro.ipc.desc import (DESC, DESC_SIZE, DESC_SLOT, FLAG_PROBE,
                            PROBE_HEADROOM)
from repro.ipc.arena import (FrameArena, ArenaProducer, arena_bytes_needed,
                             DEFAULT_SIZE_CLASSES)
from repro.ipc.wait import WaitPolicy, AimdBatcher, WAIT_STRATEGIES

__all__ = [
    "SpscRing",
    "FastForwardRing",
    "McRingBuffer",
    "RING_KINDS",
    "make_ring",
    "attach_ring",
    "ring_bytes_for",
    "RingFull",
    "RingEmpty",
    "SharedSegment",
    "SimIpcQueue",
    "VriChannels",
    "ControlEvent",
    "encode_event",
    "decode_event",
    "DESC",
    "DESC_SIZE",
    "DESC_SLOT",
    "FLAG_PROBE",
    "PROBE_HEADROOM",
    "FrameArena",
    "ArenaProducer",
    "arena_bytes_needed",
    "DEFAULT_SIZE_CLASSES",
    "WaitPolicy",
    "AimdBatcher",
    "WAIT_STRATEGIES",
]
