"""Stepped-rate senders for the dynamic-allocation experiments.

Experiment 2c drives one VR with an aggregate rate stepping
60 → 360 → 60 Kfps in 60 Kfps increments every 5 s; 2d staggers two such
ramps; 2e runs them against VRs with different service rates.  A
:class:`RampSender` follows an arbitrary piecewise-constant schedule.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.net.frame import Frame, PROTO_UDP
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt

__all__ = ["RampSender", "step_ramp"]


def step_ramp(peak_fps: float, step_fps: float, step_duration: float,
              t_start: float = 0.0) -> List[Tuple[float, float]]:
    """The paper's up-then-down staircase schedule.

    Rates step ``step, 2*step, ..., peak, ..., 2*step, step`` with
    ``step_duration`` each, beginning at ``t_start``.  Returns
    ``[(time, rate), ...]``; a final entry with rate 0 ends the flow.
    """
    if step_fps <= 0 or peak_fps < step_fps:
        raise ValueError("need 0 < step_fps <= peak_fps")
    if step_duration <= 0:
        raise ValueError("step_duration must be positive")
    n_up = int(round(peak_fps / step_fps))
    rates = [step_fps * i for i in range(1, n_up + 1)]
    rates += [step_fps * i for i in range(n_up - 1, 0, -1)]
    schedule = [(t_start + i * step_duration, r) for i, r in enumerate(rates)]
    schedule.append((t_start + len(rates) * step_duration, 0.0))
    return schedule


class RampSender:
    """CBR sender following a piecewise-constant rate schedule."""

    def __init__(self, sim: Simulator, host: Host, dst_ip: int,
                 schedule: Sequence[Tuple[float, float]],
                 frame_size: int = 84, src_port: int = 10000,
                 dst_port: int = 20000, phase: float = 0.0):
        if not schedule:
            raise ValueError("schedule must not be empty")
        times = [t for t, _ in schedule]
        if times != sorted(times):
            raise ValueError("schedule times must be non-decreasing")
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.schedule = list(schedule)
        self.frame_size = frame_size
        self.src_port = src_port
        self.dst_port = dst_port
        self.phase = phase
        self.sent = 0
        self.process = sim.process(self._run())

    def stop(self) -> None:
        self.process.interrupt("stop")

    def rate_at(self, t: float) -> float:
        """The scheduled rate in effect at time ``t`` (0 before start)."""
        rate = 0.0
        for start, r in self.schedule:
            if t >= start:
                rate = r
            else:
                break
        return rate

    def _emit(self) -> None:
        frame = Frame(self.frame_size, self.host.ip, self.dst_ip,
                      proto=PROTO_UDP, src_port=self.src_port,
                      dst_port=self.dst_port, t_created=self.sim.now)
        self.host.send(frame)
        self.sent += 1

    def _run(self):
        try:
            first = self.schedule[0][0] + self.phase
            if first > self.sim.now:
                yield self.sim.timeout(first - self.sim.now)
            end_of_schedule = self.schedule[-1][0]
            while True:
                rate = self.rate_at(self.sim.now)
                if rate <= 0.0:
                    if self.sim.now >= end_of_schedule:
                        return "finished"
                    # Idle gap inside the schedule: sleep to the next step.
                    nxt = min(t for t, _ in self.schedule if t > self.sim.now)
                    yield self.sim.timeout(nxt - self.sim.now)
                    continue
                self._emit()
                interval = max(1.0 / rate, self.host.costs.sender_per_frame)
                yield self.sim.sleep(interval)
        except Interrupt:
            return "stopped"
