"""Constant-departure UDP senders with a START coordinator.

The paper's UDP model: "a coordinator generates the START requests to
the senders via a switch at the same moment", then each sender emits
UDP/IP packets at a constant departure rate.  A sender's achievable
generation rate is capped by its own per-frame CPU cost (the testbed's
224 Kfps/host ceiling).
"""

from __future__ import annotations

from typing import List

from repro.net.frame import Frame, PROTO_UDP
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt

__all__ = ["UdpSender", "Coordinator"]


class UdpSender:
    """One CBR UDP flow from a host."""

    def __init__(self, sim: Simulator, host: Host, dst_ip: int,
                 rate_fps: float, frame_size: int = 84,
                 src_port: int = 10000, dst_port: int = 20000,
                 t_start: float = 0.0, t_stop: float = float("inf"),
                 phase: float = 0.0):
        if rate_fps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.rate_fps = rate_fps
        self.frame_size = frame_size
        self.src_port = src_port
        self.dst_port = dst_port
        self.t_start = t_start
        self.t_stop = t_stop
        #: Small per-sender phase offset so multiple CBR senders do not
        #: emit in lockstep (the real hosts are not cycle-synchronized).
        self.phase = phase
        self.sent = 0
        self.process = sim.process(self._run())

    @property
    def effective_interval(self) -> float:
        """Inter-frame gap: requested rate, capped by sender CPU."""
        return max(1.0 / self.rate_fps, self.host.costs.sender_per_frame)

    def stop(self) -> None:
        self.process.interrupt("stop")

    def _emit(self) -> None:
        frame = Frame(self.frame_size, self.host.ip, self.dst_ip,
                      proto=PROTO_UDP, src_port=self.src_port,
                      dst_port=self.dst_port, t_created=self.sim.now)
        self.host.send(frame)
        self.sent += 1

    def _run(self):
        try:
            delay = self.t_start + self.phase - self.sim.now
            if delay > 0:
                yield self.sim.sleep(delay)
            while self.sim.now < self.t_stop:
                self._emit()
                yield self.sim.sleep(self.effective_interval)
        except Interrupt:
            return "stopped"
        return "finished"


class Coordinator:
    """Fires START at every registered sender at the same instant.

    Reproduces the paper's coordinator host: senders are constructed
    idle (``t_start=inf`` semantics via a large start) and released
    together.  In practice experiments simply pass a shared ``t_start``;
    the coordinator exists for the examples that mirror the paper's
    setup literally and to stagger phases deterministically.
    """

    def __init__(self, sim: Simulator, start_at: float = 0.0,
                 phase_step: float = 1.1e-6):
        self.sim = sim
        self.start_at = start_at
        self.phase_step = phase_step
        self._senders: List[UdpSender] = []

    def register(self, host: Host, dst_ip: int, rate_fps: float,
                 frame_size: int = 84, **kw) -> UdpSender:
        phase = self.phase_step * len(self._senders)
        sender = UdpSender(self.sim, host, dst_ip, rate_fps, frame_size,
                           t_start=self.start_at, phase=phase, **kw)
        self._senders.append(sender)
        return sender

    @property
    def senders(self) -> List[UdpSender]:
        return list(self._senders)

    def total_sent(self) -> int:
        return sum(s.sent for s in self._senders)

    def stop_all(self) -> None:
        for sender in self._senders:
            sender.stop()
