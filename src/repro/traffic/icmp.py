"""ICMP ping (Experiment 1b's round-trip latency probe).

A :class:`Pinger` sends echo requests from a sender host to a receiver
host (which must run an :class:`~repro.traffic.sink.EchoResponder`) and
collects RTT samples.  The paper sends 400 K requests; the quick profile
sends far fewer — the RTT distribution is tight, so a few hundred
samples pin the mean.
"""

from __future__ import annotations

from typing import Optional

from repro.net.frame import Frame, PROTO_ICMP
from repro.net.host import Host
from repro.sim.conditions import any_of
from repro.sim.engine import Simulator
from repro.sim.timeline import Timeline

__all__ = ["Pinger"]


class Pinger:
    """Sequential echo requests with per-reply RTT measurement."""

    def __init__(self, sim: Simulator, host: Host, dst_ip: int,
                 count: int = 400, frame_size: int = 84,
                 interval: float = 200e-6, timeout: float = 0.05,
                 t_start: float = 0.0):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.count = count
        self.frame_size = frame_size
        self.interval = interval
        self.timeout = timeout
        self.t_start = t_start
        self.rtts = Timeline("rtt")
        self.lost = 0
        self._pending_seq: Optional[int] = None
        self._pending_sent_at = 0.0
        self._reply = None
        host.handler = self._on_frame
        self.process = sim.process(self._run())

    def _on_frame(self, frame: Frame) -> None:
        if frame.proto != PROTO_ICMP or self._pending_seq is None:
            return
        if frame.payload == self._pending_seq:
            rtt = self.sim.now - self._pending_sent_at
            self.rtts.record(self.sim.now, rtt)
            self._pending_seq = None
            if self._reply is not None and not self._reply.triggered:
                self._reply.succeed()

    def _run(self):
        if self.t_start > self.sim.now:
            yield self.sim.timeout(self.t_start - self.sim.now)
        for seq in range(self.count):
            self._pending_seq = seq
            self._pending_sent_at = self.sim.now
            self._reply = self.sim.event()
            frame = Frame(self.frame_size, self.host.ip, self.dst_ip,
                          proto=PROTO_ICMP, src_port=seq & 0xFFFF,
                          dst_port=0, t_created=self.sim.now, payload=seq)
            self.host.send(frame)
            # Wait for the matching reply or the timeout, whichever first.
            yield any_of(self.sim, [self._reply,
                                    self.sim.timeout(self.timeout)])
            if self._pending_seq is not None:
                self.lost += 1
                self._pending_seq = None
            if self.interval > 0:
                yield self.sim.timeout(self.interval)
        return self.rtts

    def mean_rtt(self) -> float:
        return self.rtts.mean()
