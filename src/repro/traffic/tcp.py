"""An event-driven TCP Reno model.

Experiments 3c and 4 drive LVRM with "realistic FTP/TCP" traffic whose
rates are set by TCP's congestion control *and* the receiver's flow
control (the paper notes the FTP client's file writes throttle the
receive window).  This model implements the pieces those experiments
exercise:

* slow start / congestion avoidance / fast retransmit / fast recovery
  (Reno, with NewReno-style partial-ACK retransmission);
* RTO estimation per RFC 6298 with Karn's rule and exponential backoff;
* cumulative ACKs, duplicate-ACK detection, out-of-order buffering at
  the receiver (so frame-based balancing's reordering is *felt*);
* a receive window fed by an application that reads at finite speed.

Segments ride :class:`~repro.net.frame.Frame` objects: a full-size data
segment is a 1538-byte wire frame, a pure ACK 84 bytes, matching the
"small segments such as ... acknowledgements" the paper observes.
Everything is callback-driven — no generator process per connection —
so hundreds of flows stay cheap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.net.frame import Frame, PROTO_TCP
from repro.net.host import Host
from repro.sim.engine import Simulator

__all__ = ["TcpParams", "TcpConnection", "TcpDemux"]

_conn_ids = itertools.count(1)


@dataclass(frozen=True)
class TcpParams:
    """Protocol constants (RFC-flavoured defaults)."""

    mss: int = 1460
    #: Wire size of a full data segment (MSS + headers + wire overhead).
    data_frame_size: int = 1538
    ack_frame_size: int = 84
    init_cwnd: float = 2.0
    init_ssthresh: float = 64.0
    dupack_threshold: int = 3
    init_rto: float = 0.2
    min_rto: float = 0.04
    max_rto: float = 4.0
    #: Receiver buffer in segments (the advertised-window ceiling).
    rwnd_segments: int = 128
    #: Application read speed at the receiver (bytes/s); the FTP client
    #: writing to disk (Experiment 4's flow-control effect).
    app_read_rate: float = float("inf")
    #: RFC 1122 delayed ACKs: acknowledge every second in-order segment
    #: (with a timer flushing stragglers); out-of-order data still ACKs
    #: immediately so fast retransmit keeps working.  Halves the reverse
    #: frame load through the gateway.
    delayed_ack: bool = False
    delayed_ack_timeout: float = 0.04

    def __post_init__(self) -> None:
        if self.mss <= 0 or self.data_frame_size < self.mss:
            raise ValueError("bad MSS / frame size")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("bad RTO bounds")
        if self.rwnd_segments < 1:
            raise ValueError("rwnd must be >= 1 segment")


class TcpDemux:
    """Per-host dispatcher: routes TCP frames to their connection."""

    def __init__(self, host: Host):
        self.host = host
        self._endpoints: Dict[int, Callable[[Frame], None]] = {}
        host.handler = self._dispatch

    def register(self, conn_id: int, callback: Callable[[Frame], None]) -> None:
        if conn_id in self._endpoints:
            raise ValueError(f"conn {conn_id} already registered")
        self._endpoints[conn_id] = callback

    def unregister(self, conn_id: int) -> None:
        self._endpoints.pop(conn_id, None)

    def _dispatch(self, frame: Frame) -> None:
        payload = frame.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == "tcp"):
            return
        endpoint = self._endpoints.get(payload[1])
        if endpoint is not None:
            endpoint(frame)

    @classmethod
    def of(cls, host: Host) -> "TcpDemux":
        """Get (installing if needed) the demux on ``host``."""
        handler = host.handler
        if handler is not None and getattr(handler, "__self__", None) is not None \
                and isinstance(handler.__self__, cls):
            return handler.__self__
        return cls(host)


class _Receiver:
    """Receive side: reassembly, cumulative ACKs, flow control."""

    def __init__(self, conn: "TcpConnection"):
        self.conn = conn
        self.rcv_nxt = 0
        self.ooo: Set[int] = set()
        self.buffered = 0.0  # bytes awaiting the application
        self._last_drain = 0.0
        self.delivered_segments = 0
        self.acks_sent = 0
        self._update_pending = False
        self._unacked_in_order = 0
        self._delack_gen = 0

    def _drain(self, now: float) -> None:
        rate = self.conn.params.app_read_rate
        if rate == float("inf"):
            self.buffered = 0.0
        else:
            self.buffered = max(0.0, self.buffered
                                - (now - self._last_drain) * rate)
        self._last_drain = now

    def advertised_window(self, now: float) -> int:
        """Free buffer space in whole segments."""
        self._drain(now)
        params = self.conn.params
        cap = params.rwnd_segments * params.mss
        free = max(0.0, cap - self.buffered)
        return int(free // params.mss)

    def on_data(self, seq: int, now: float) -> None:
        params = self.conn.params
        in_order = seq == self.rcv_nxt
        if in_order:
            self.rcv_nxt += 1
            self.delivered_segments += 1
            self.buffered += params.mss
            while self.rcv_nxt in self.ooo:
                self.ooo.discard(self.rcv_nxt)
                self.rcv_nxt += 1
                self.delivered_segments += 1
                self.buffered += params.mss
        elif seq > self.rcv_nxt:
            self.ooo.add(seq)
        # (seq < rcv_nxt is a spurious retransmit: pure dup-ACK.)
        if params.delayed_ack and in_order and not self.ooo:
            self._unacked_in_order += 1
            if self._unacked_in_order >= 2:
                self._send_ack(now)
            else:
                # Arm the straggler timer for a lone segment.
                self._delack_gen += 1
                gen = self._delack_gen
                self.conn.sim.call_in(params.delayed_ack_timeout,
                                      lambda: self._delack_fire(gen))
        else:
            # Immediate ACK: non-delayed mode, out-of-order data (dup
            # ACKs drive fast retransmit), or a gap just closed.
            self._send_ack(now)

    def _delack_fire(self, gen: int) -> None:
        if gen != self._delack_gen or self.conn.closed:
            return
        if self._unacked_in_order > 0:
            self._send_ack(self.conn.sim.now)

    def _send_ack(self, now: float) -> None:
        conn = self.conn
        self._unacked_in_order = 0
        self._delack_gen += 1  # cancel any pending delayed-ACK timer
        window = self.advertised_window(now)
        frame = Frame(conn.params.ack_frame_size, conn.dst_host.ip,
                      conn.src_host.ip, proto=PROTO_TCP,
                      src_port=conn.dst_port, dst_port=conn.src_port,
                      t_created=now,
                      payload=("tcp", conn.conn_id, "A", self.rcv_nxt,
                               window))
        self.acks_sent += 1
        conn.dst_host.send(frame)
        if window == 0 and not self._update_pending:
            # Zero window: promise a window-update ACK once the
            # application has freed a few segments of buffer (the FTP
            # client catching up on its file writes).
            rate = conn.params.app_read_rate
            if rate != float("inf") and rate > 0:
                self._update_pending = True
                dt = 4.0 * conn.params.mss / rate
                conn.sim.call_in(dt, self._window_update)

    def _window_update(self) -> None:
        self._update_pending = False
        if not self.conn.closed:
            self._send_ack(self.conn.sim.now)


class _Sender:
    """Send side: Reno congestion control + RTO."""

    def __init__(self, conn: "TcpConnection"):
        self.conn = conn
        params = conn.params
        self.una = 0            # lowest unacknowledged segment
        self.next_seq = 0       # next new segment to send
        self.cwnd = params.init_cwnd
        self.ssthresh = params.init_ssthresh
        self.dupacks = 0
        self.rto = params.init_rto
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.peer_window = params.rwnd_segments
        self._last_adv_window = params.rwnd_segments
        self._persist_armed = False
        self.in_recovery = False
        self.recovery_point = 0
        self._send_times: Dict[int, Tuple[float, bool]] = {}
        self._timer_gen = 0
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0

    # -- window management ------------------------------------------------------
    def _window(self) -> int:
        return max(0, int(min(self.cwnd, self.peer_window)))

    def pump(self) -> None:
        """Send as much new data as the window allows.

        A zero receive window stalls the sender completely; a persist
        probe (one segment per RTO) guards against a lost window update,
        per the classic zero-window-probe discipline.
        """
        conn = self.conn
        total = conn.total_segments
        window = self._window()
        limit = self.una + max(1, window) if window > 0 else self.una
        while self.next_seq < limit and (total is None
                                         or self.next_seq < total):
            self._emit(self.next_seq, retransmit=False)
            self.next_seq += 1
        if (window == 0 and self.una >= self.next_seq
                and not self._persist_armed
                and (total is None or self.next_seq < total)):
            self._persist_armed = True
            delay = max(self.rto, 2 * conn.params.min_rto)
            conn.sim.call_in(delay, self._persist_probe)

    def _persist_probe(self) -> None:
        self._persist_armed = False
        if self.conn.closed:
            return
        if self._window() == 0 and self.una >= self.next_seq:
            total = self.conn.total_segments
            if total is None or self.next_seq < total:
                # One data segment beyond the window keeps the ACK (and
                # window-advertisement) stream alive.
                self._emit(self.next_seq, retransmit=False)
                self.next_seq += 1

    def _emit(self, seq: int, retransmit: bool) -> None:
        conn = self.conn
        now = conn.sim.now
        frame = Frame(conn.params.data_frame_size, conn.src_host.ip,
                      conn.dst_host.ip, proto=PROTO_TCP,
                      src_port=conn.src_port, dst_port=conn.dst_port,
                      t_created=now, payload=("tcp", conn.conn_id, "D", seq, 0))
        self._send_times[seq] = (now, retransmit
                                 or seq in self._send_times
                                 and self._send_times[seq][1])
        if retransmit:
            self.retransmits += 1
        self.segments_sent += 1
        conn.src_host.send(frame)
        self._arm_timer()

    # -- RTO machinery --------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._timer_gen += 1
        gen = self._timer_gen
        self.conn.sim.call_in(self.rto, lambda: self._timer_fire(gen))

    def _timer_fire(self, gen: int) -> None:
        if gen != self._timer_gen or self.una >= self.next_seq:
            return  # stale timer or nothing outstanding
        if self.conn.closed:
            return
        # Timeout: collapse to slow start and back off (RFC 5681/6298).
        self.timeouts += 1
        self.ssthresh = max(2.0, min(self.cwnd, self._flight()) / 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.rto = min(self.rto * 2.0, self.conn.params.max_rto)
        self._emit(self.una, retransmit=True)

    def _flight(self) -> float:
        return float(self.next_seq - self.una)

    def _update_rtt(self, seq: int) -> None:
        sample = self._send_times.get(seq)
        if sample is None or sample[1]:
            return  # Karn: never sample retransmitted segments
        rtt = self.conn.sim.now - sample[0]
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        params = self.conn.params
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, params.min_rto),
                       params.max_rto)

    # -- ACK processing ---------------------------------------------------------------
    def on_ack(self, ack: int, window: int) -> None:
        conn = self.conn
        params = conn.params
        window_changed = window != self._last_adv_window
        self._last_adv_window = window
        self.peer_window = max(0, window)
        if ack > self.una:
            self._update_rtt(ack - 1)
            for seq in range(self.una, ack):
                self._send_times.pop(seq, None)
            newly = ack - self.una
            self.una = ack
            self.dupacks = 0
            if self.in_recovery:
                if ack >= self.recovery_point:
                    # Full recovery: deflate.
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: retransmit the next hole.
                    self._emit(self.una, retransmit=True)
                    self.cwnd = max(1.0, self.cwnd - newly + 1.0)
            elif self.cwnd < self.ssthresh:
                self.cwnd += newly  # slow start
            else:
                self.cwnd += newly / self.cwnd  # congestion avoidance
            if self.una < self.next_seq:
                self._arm_timer()
            else:
                self._timer_gen += 1  # everything acked: cancel timer
            self.pump()
            conn._maybe_finish()
        elif window_changed:
            # A pure window update (RFC 793: same ack, new window) is
            # not a duplicate ACK; it reopens (or closes) the window.
            self.pump()
        elif self.una < self.next_seq:
            self.dupacks += 1
            if self.dupacks == params.dupack_threshold and not self.in_recovery:
                # Fast retransmit + fast recovery.
                self.ssthresh = max(2.0, self._flight() / 2.0)
                self.cwnd = self.ssthresh + params.dupack_threshold
                self.in_recovery = True
                self.recovery_point = self.next_seq
                self._emit(self.una, retransmit=True)
            elif self.in_recovery:
                self.cwnd += 1.0  # inflation
                self.pump()


class TcpConnection:
    """One TCP flow between two testbed hosts, through the gateway."""

    def __init__(self, sim: Simulator, src_host: Host, dst_host: Host,
                 params: TcpParams = TcpParams(),
                 total_bytes: Optional[int] = None,
                 src_port: Optional[int] = None,
                 dst_port: Optional[int] = None,
                 t_start: float = 0.0):
        self.sim = sim
        self.src_host = src_host
        self.dst_host = dst_host
        self.params = params
        self.conn_id = next(_conn_ids)
        self.src_port = src_port if src_port is not None else 30000 + self.conn_id
        self.dst_port = dst_port if dst_port is not None else 20
        self.total_segments: Optional[int] = (
            None if total_bytes is None
            else max(1, -(-total_bytes // params.mss)))
        self.t_start = t_start
        self.closed = False
        self.done = sim.event()
        self.sender = _Sender(self)
        self.receiver = _Receiver(self)
        TcpDemux.of(src_host).register(self.conn_id, self._sender_rx)
        TcpDemux.of(dst_host).register(self.conn_id, self._receiver_rx)
        sim.call_at(max(t_start, sim.now), self._start)

    # -- frame plumbing ------------------------------------------------------------
    def _sender_rx(self, frame: Frame) -> None:
        if self.closed:
            return
        _tag, _cid, kind, a, b = frame.payload
        if kind == "A":
            self.sender.on_ack(a, b)

    def _receiver_rx(self, frame: Frame) -> None:
        if self.closed:
            return
        _tag, _cid, kind, a, _b = frame.payload
        if kind == "D":
            self.receiver.on_data(a, self.sim.now)

    def _start(self) -> None:
        if not self.closed:
            self.sender.pump()

    # -- lifecycle / metrics ----------------------------------------------------------
    def _maybe_finish(self) -> None:
        if (self.total_segments is not None
                and self.sender.una >= self.total_segments
                and not self.done.triggered):
            self.close()
            self.done.succeed(self.goodput_bytes)

    def close(self) -> None:
        self.closed = True
        TcpDemux.of(self.src_host).unregister(self.conn_id)
        TcpDemux.of(self.dst_host).unregister(self.conn_id)

    @property
    def goodput_bytes(self) -> int:
        """In-order bytes delivered to the receiving application."""
        return self.receiver.delivered_segments * self.params.mss

    def goodput_bps(self, duration: float) -> float:
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.goodput_bytes * 8.0 / duration
