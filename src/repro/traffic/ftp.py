"""FTP sessions over the TCP model (Experiments 3c and 4).

The paper's "realistic FTP/TCP servers and clients": clients log in
anonymously through the gateway and GET large files, producing a data
connection (bulk transfer) plus a control connection exchanging small
segments now and then.  An :class:`FtpWorkload` stands up N session
pairs split across the two sender/receiver host pairs and measures
per-flow goodput over a window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.frame import Frame, PROTO_TCP
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.traffic.tcp import TcpConnection, TcpParams

__all__ = ["FtpSession", "FtpWorkload"]


class FtpSession:
    """One GET: a bulk data connection + a chatty control connection."""

    def __init__(self, sim: Simulator, server: Host, client: Host,
                 params: TcpParams = TcpParams(),
                 file_bytes: Optional[int] = None,
                 t_start: float = 0.0,
                 control_interval: float = 0.05):
        self.sim = sim
        #: Data flows server -> client (the direction the gateway VRs see).
        self.data = TcpConnection(sim, server, client, params,
                                  total_bytes=file_bytes, t_start=t_start,
                                  dst_port=20)
        self.server = server
        self.client = client
        self.control_interval = control_interval
        self.control_segments = 0
        self._stopped = False
        if control_interval > 0:
            sim.process(self._control_chatter(t_start))

    def _control_chatter(self, t_start: float):
        """Small control-connection segments (status, keepalive)."""
        if t_start > self.sim.now:
            yield self.sim.timeout(t_start - self.sim.now)
        while not self._stopped and not self.data.closed:
            yield self.sim.sleep(self.control_interval)
            if self._stopped or self.data.closed:
                break
            frame = Frame(84, self.client.ip, self.server.ip,
                          proto=PROTO_TCP,
                          src_port=self.data.src_port + 10000,
                          dst_port=21, t_created=self.sim.now,
                          payload=("ftp-ctrl", self.data.conn_id))
            self.client.send(frame)
            self.control_segments += 1
        return "control-closed"

    def stop(self) -> None:
        self._stopped = True
        self.data.close()

    @property
    def goodput_bytes(self) -> int:
        return self.data.goodput_bytes


@dataclass
class FlowStats:
    """Per-flow outcome of a workload window."""

    conn_id: int
    goodput_bytes: int
    retransmits: int
    timeouts: int


class FtpWorkload:
    """N FTP session pairs across the testbed's host pairs.

    Sessions alternate between the (S1 -> R1) and (S2 -> R2) pairs so
    both sub-network paths carry half the flows, matching "evenly
    distributed to the hosts".  Start times are jittered slightly so
    slow-start bursts do not synchronize artificially.
    """

    def __init__(self, sim: Simulator, pairs: List[Tuple[Host, Host]],
                 n_sessions: int, params: TcpParams = TcpParams(),
                 t_start: float = 0.0, start_jitter: float = 0.01,
                 seed: int = 2011, control_interval: float = 0.05,
                 read_rate_spread: float = 0.0):
        if n_sessions < 1:
            raise ValueError("need at least one session")
        if not pairs:
            raise ValueError("need at least one host pair")
        if not 0.0 <= read_rate_spread < 1.0:
            raise ValueError("read_rate_spread must be in [0, 1)")
        self.sim = sim
        rng = np.random.default_rng(seed)
        self.sessions: List[FtpSession] = []
        for i in range(n_sessions):
            server, client = pairs[i % len(pairs)]
            jitter = float(rng.uniform(0.0, start_jitter))
            session_params = params
            if read_rate_spread > 0.0 and params.app_read_rate != float("inf"):
                # The paper's flows come "in various flow and segment
                # sizes": model per-client heterogeneity as a spread of
                # application read speeds around the mean.
                factor = float(rng.uniform(1.0 - read_rate_spread,
                                           1.0 + read_rate_spread))
                import dataclasses
                session_params = dataclasses.replace(
                    params, app_read_rate=params.app_read_rate * factor)
            self.sessions.append(
                FtpSession(sim, server, client, session_params,
                           file_bytes=None, t_start=t_start + jitter,
                           control_interval=control_interval))
        self._baseline: Dict[int, int] = {}

    def mark_window_start(self) -> None:
        """Snapshot goodput so stats cover only the steady-state window
        (the paper evaluates "average rates in crests")."""
        self._baseline = {s.data.conn_id: s.goodput_bytes
                          for s in self.sessions}

    def stop_all(self) -> None:
        for session in self.sessions:
            session.stop()

    def flow_stats(self) -> List[FlowStats]:
        out = []
        for s in self.sessions:
            base = self._baseline.get(s.data.conn_id, 0)
            out.append(FlowStats(
                conn_id=s.data.conn_id,
                goodput_bytes=s.goodput_bytes - base,
                retransmits=s.data.sender.retransmits,
                timeouts=s.data.sender.timeouts))
        return out

    def goodputs_bps(self, window: float) -> np.ndarray:
        if window <= 0:
            raise ValueError("window must be positive")
        return np.array([fs.goodput_bytes * 8.0 / window
                         for fs in self.flow_stats()], dtype=float)

    def aggregate_bps(self, window: float) -> float:
        return float(self.goodputs_bps(window).sum())
