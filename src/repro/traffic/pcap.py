"""Minimal pcap (libpcap classic format) writer/reader.

Lets the examples persist synthetic traces as real ``.pcap`` files that
standard tooling can open, and lets the memory socket adapter replay a
captured file, matching the paper's "load a trace of raw frames into
main memory".  Only the classic little-endian microsecond format is
produced; both endiannesses are read.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, List, Tuple, Union

__all__ = ["PcapWriter", "read_pcap", "write_pcap"]

_MAGIC_LE = 0xA1B2C3D4
_GLOBAL = struct.Struct("<IHHiIII")
_GLOBAL_BE = struct.Struct(">IHHiIII")
_REC_LE = struct.Struct("<IIII")
_REC_BE = struct.Struct(">IIII")
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Streams records into a classic pcap file."""

    def __init__(self, fh: BinaryIO, snaplen: int = 65535):
        self.fh = fh
        self.count = 0
        fh.write(_GLOBAL.pack(_MAGIC_LE, 2, 4, 0, 0, snaplen,
                              _LINKTYPE_ETHERNET))

    def write(self, timestamp: float, data: bytes) -> None:
        if timestamp < 0:
            raise ValueError("timestamp cannot be negative")
        sec = int(timestamp)
        usec = int(round((timestamp - sec) * 1e6))
        if usec >= 1_000_000:
            sec, usec = sec + 1, usec - 1_000_000
        self.fh.write(_REC_LE.pack(sec, usec, len(data), len(data)))
        self.fh.write(data)
        self.count += 1


def write_pcap(path: str, records: List[Tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame bytes)`` records; returns the count."""
    with open(path, "wb") as fh:
        writer = PcapWriter(fh)
        for ts, data in records:
            writer.write(ts, data)
        return writer.count


def read_pcap(path_or_fh: Union[str, BinaryIO]) -> Iterator[Tuple[float, bytes]]:
    """Yield ``(timestamp, frame bytes)`` from a pcap file."""
    if isinstance(path_or_fh, str):
        with open(path_or_fh, "rb") as fh:
            yield from _read(fh)
    else:
        yield from _read(path_or_fh)


def _read(fh: BinaryIO) -> Iterator[Tuple[float, bytes]]:
    header = fh.read(_GLOBAL.size)
    if len(header) < _GLOBAL.size:
        raise ValueError("truncated pcap global header")
    magic = struct.unpack("<I", header[:4])[0]
    if magic == _MAGIC_LE:
        rec = _REC_LE
    elif struct.unpack(">I", header[:4])[0] == _MAGIC_LE:
        rec = _REC_BE
    else:
        raise ValueError(f"not a classic pcap file (magic {magic:#x})")
    while True:
        head = fh.read(rec.size)
        if not head:
            return
        if len(head) < rec.size:
            raise ValueError("truncated pcap record header")
        sec, usec, caplen, _origlen = rec.unpack(head)
        data = fh.read(caplen)
        if len(data) < caplen:
            raise ValueError("truncated pcap record body")
        yield sec + usec / 1e6, data
