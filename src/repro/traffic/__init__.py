"""Traffic models.

Chapter 4 uses two traffic models: smooth constant-departure UDP/IP
flows started simultaneously by a coordinator, and "realistic" FTP/TCP
sessions whose rates are governed by TCP congestion and flow control.
Both are reproduced here, plus the step ramps of Experiments 2c–2e, the
ICMP ping of Experiment 1b, and the in-memory frame traces of
Experiments 1c/1d.
"""

from repro.traffic.udp import UdpSender, Coordinator
from repro.traffic.onoff import OnOffSender
from repro.traffic.ramp import RampSender, step_ramp
from repro.traffic.sink import FrameSink, EchoResponder
from repro.traffic.icmp import Pinger
from repro.traffic.trace import synthetic_trace, flow_mix_trace
from repro.traffic.tcp import TcpConnection, TcpParams
from repro.traffic.ftp import FtpSession, FtpWorkload

__all__ = [
    "UdpSender",
    "Coordinator",
    "OnOffSender",
    "RampSender",
    "step_ramp",
    "FrameSink",
    "EchoResponder",
    "Pinger",
    "synthetic_trace",
    "flow_mix_trace",
    "TcpConnection",
    "TcpParams",
    "FtpSession",
    "FtpWorkload",
]
