"""Bursty ON/OFF traffic (an extension beyond the paper's CBR model).

The paper's UDP senders are constant-departure; its design discussion,
though, motivates JSQ and EWMA estimation with *load variation*.  An
ON/OFF source makes that variation explicit: exponential ON periods at
a peak rate, exponential OFF silences, preserving a configured average
rate.  The balancing ablation uses it to show where JSQ's load
awareness actually pays off.
"""

from __future__ import annotations

import numpy as np

from repro.net.frame import Frame, PROTO_UDP
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt

__all__ = ["OnOffSender"]


class OnOffSender:
    """Exponential ON/OFF UDP source with a fixed peak rate.

    ``duty = mean_on / (mean_on + mean_off)``; the average rate is
    ``peak_fps * duty``.
    """

    def __init__(self, sim: Simulator, host: Host, dst_ip: int,
                 peak_fps: float, mean_on: float, mean_off: float,
                 rng: np.random.Generator,
                 frame_size: int = 84, src_port: int = 10000,
                 dst_port: int = 20000, t_start: float = 0.0,
                 t_stop: float = float("inf")):
        if peak_fps <= 0 or mean_on <= 0 or mean_off < 0:
            raise ValueError("need peak_fps > 0, mean_on > 0, mean_off >= 0")
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.peak_fps = peak_fps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.frame_size = frame_size
        self.src_port = src_port
        self.dst_port = dst_port
        self.t_start = t_start
        self.t_stop = t_stop
        self._rng = rng
        self.sent = 0
        self.bursts = 0
        self.process = sim.process(self._run())

    @property
    def duty_cycle(self) -> float:
        return self.mean_on / (self.mean_on + self.mean_off) \
            if self.mean_off else 1.0

    @property
    def average_fps(self) -> float:
        return self.peak_fps * self.duty_cycle

    def stop(self) -> None:
        self.process.interrupt("stop")

    def _emit(self) -> None:
        frame = Frame(self.frame_size, self.host.ip, self.dst_ip,
                      proto=PROTO_UDP, src_port=self.src_port,
                      dst_port=self.dst_port, t_created=self.sim.now)
        self.host.send(frame)
        self.sent += 1

    def _run(self):
        interval = max(1.0 / self.peak_fps,
                       self.host.costs.sender_per_frame)
        try:
            if self.t_start > self.sim.now:
                yield self.sim.timeout(self.t_start - self.sim.now)
            while self.sim.now < self.t_stop:
                # ON period.
                self.bursts += 1
                burst_end = self.sim.now + float(
                    self._rng.exponential(self.mean_on))
                while self.sim.now < min(burst_end, self.t_stop):
                    self._emit()
                    yield self.sim.sleep(interval)
                if self.mean_off <= 0:
                    continue
                # OFF period.
                yield self.sim.sleep(float(
                    self._rng.exponential(self.mean_off)))
        except Interrupt:
            return "stopped"
        return "finished"
