"""In-memory frame traces (Experiments 1c/1d).

The paper loads "a trace file of 100 M minimum-sized frames" into RAM
and lets the memory socket adapter read them sequentially.  These
generators produce equivalent synthetic traces lazily, so a quick run
streams 50 K frames and a full run can stream 100 M without
materializing either.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.net.addresses import ip_to_int
from repro.net.frame import Frame, PROTO_TCP, PROTO_UDP

__all__ = ["synthetic_trace", "flow_mix_trace"]


def synthetic_trace(n_frames: int, frame_size: int = 84,
                    src_ip: str = "10.1.1.2", dst_ip: str = "10.2.1.2",
                    src_port: int = 10000, dst_port: int = 20000) -> Iterator[Frame]:
    """Single-flow trace of ``n_frames`` identical-size frames."""
    if n_frames < 0:
        raise ValueError("n_frames cannot be negative")
    src = ip_to_int(src_ip)
    dst = ip_to_int(dst_ip)
    for _ in range(n_frames):
        yield Frame(frame_size, src, dst, proto=PROTO_UDP,
                    src_port=src_port, dst_port=dst_port)


def flow_mix_trace(n_frames: int, n_flows: int, frame_size: int = 84,
                   src_subnet: str = "10.1.1.0", dst_subnet: str = "10.2.1.0",
                   seed: int = 2011,
                   sizes: Optional[Sequence[int]] = None) -> Iterator[Frame]:
    """Multi-flow trace: frames from ``n_flows`` distinct 5-tuples.

    Flow membership is drawn uniformly (seeded); optional ``sizes``
    draws the frame size per frame from the given choices — useful for
    flow-table and balancing tests.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    rng = np.random.default_rng(seed)
    src_base = ip_to_int(src_subnet)
    dst_base = ip_to_int(dst_subnet)
    # Pre-draw flow identities.
    flow_src = [src_base + 2 + (i % 200) for i in range(n_flows)]
    flow_port = [10000 + i for i in range(n_flows)]
    size_choices = list(sizes) if sizes else [frame_size]
    for _ in range(n_frames):
        flow = int(rng.integers(n_flows))
        size = size_choices[int(rng.integers(len(size_choices)))]
        yield Frame(size, flow_src[flow], dst_base + 2, proto=PROTO_TCP,
                    src_port=flow_port[flow], dst_port=21)
