"""Receive-side measurement sinks.

A :class:`FrameSink` attaches to a receiver host's handler and records
counts, per-flow counts, end-to-end latency samples, and a binned rate
series — everything the throughput/latency/fairness metrics need.

An :class:`EchoResponder` bounces ICMP echo requests back to their
source (the receiver side of Experiment 1b's ping).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.net.frame import Frame, PROTO_ICMP
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.timeline import RateCounter, Timeline

__all__ = ["FrameSink", "EchoResponder"]


class FrameSink:
    """Counting/latency sink for a receiver host."""

    def __init__(self, sim: Simulator, host: Host,
                 rate_bin: Optional[float] = None,
                 record_latency: bool = True):
        self.sim = sim
        self.host = host
        self.received = 0
        self.bytes = 0
        self.by_flow: Dict[Tuple, int] = defaultdict(int)
        self.bytes_by_flow: Dict[Tuple, int] = defaultdict(int)
        self.latency = Timeline("e2e-latency") if record_latency else None
        self.rates = RateCounter(rate_bin) if rate_bin else None
        host.handler = self._on_frame

    def _on_frame(self, frame: Frame) -> None:
        self.received += 1
        self.bytes += frame.size
        key = frame.five_tuple
        self.by_flow[key] += 1
        self.bytes_by_flow[key] += frame.size
        if self.latency is not None:
            self.latency.record(self.sim.now, self.sim.now - frame.t_created)
        if self.rates is not None:
            self.rates.record(self.sim.now)

    def flow_counts(self) -> Dict[Tuple, int]:
        return dict(self.by_flow)

    def mean_latency(self) -> float:
        if self.latency is None:
            raise RuntimeError("latency recording disabled")
        return self.latency.mean()


class EchoResponder:
    """Bounces ICMP echo requests back to the sender."""

    def __init__(self, sim: Simulator, host: Host):
        self.sim = sim
        self.host = host
        self.echoed = 0
        host.handler = self._on_frame

    def _on_frame(self, frame: Frame) -> None:
        if frame.proto != PROTO_ICMP:
            return
        reply = Frame(frame.size, self.host.ip, frame.src_ip,
                      proto=PROTO_ICMP, src_port=frame.dst_port,
                      dst_port=frame.src_port,
                      t_created=frame.t_created, payload=frame.payload)
        self.echoed += 1
        self.host.send(reply)
