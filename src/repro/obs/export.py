"""Exporters: Prometheus text, JSONL, and Chrome trace format.

* :func:`prometheus_text` renders a :class:`~repro.obs.registry.Registry`
  in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` plus
  one line per sample; histograms as cumulative ``_bucket`` series).
* :func:`events_jsonl` / :func:`metrics_jsonl` render one JSON object
  per line — the grep-friendly archive format.
* :func:`chrome_trace` packs trace events into the Chrome/Perfetto
  JSON object format so ``about://tracing`` or https://ui.perfetto.dev
  opens a run directly; tracks become named threads, timestamps become
  microseconds.

All writers go through :func:`_atomic_write`: a half-written trace from
an interrupted run is worse than none.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterable, List, Sequence

from repro.obs.registry import Registry
from repro.obs.trace import PH_COMPLETE, PH_COUNTER, PH_INSTANT, TraceEvent

__all__ = ["prometheus_text", "metrics_jsonl", "events_jsonl",
           "chrome_trace", "write_text", "write_chrome_trace",
           "parse_events_jsonl"]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _fmt_labels(labels: Sequence) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(v: str) -> str:
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    # HELP lines escape backslash and newline but NOT quotes (exposition
    # format spec) — a raw newline here would truncate the comment and
    # leave the remainder parsed as a garbage sample line.
    return str(v).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    if isinstance(v, int):
        return str(v)
    if v == float("inf"):
        return "+Inf"
    return repr(float(v))


def prometheus_text(registry: Registry) -> str:
    """The registry in Prometheus text format (families sorted by name)."""
    lines: List[str] = []
    seen_family = set()
    for inst in registry.instruments():
        name = inst.name
        if name not in seen_family:
            seen_family.add(name)
            help_ = registry.help_of(name)
            if help_:
                lines.append(f"# HELP {name} {_escape_help(help_)}")
            lines.append(f"# TYPE {name} {inst.kind}")
        for sample_name, labels, value in inst.samples():
            lines.append(f"{sample_name}{_fmt_labels(labels)} "
                         f"{_fmt_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(registry: Registry) -> str:
    """One JSON object per sample: ``{name, kind, labels, value}``."""
    lines = []
    for inst in registry.instruments():
        for sample_name, labels, value in inst.samples():
            lines.append(json.dumps(
                {"name": sample_name, "kind": inst.kind,
                 "labels": dict(labels), "value": value},
                sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Trace events
# ---------------------------------------------------------------------------

def events_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per trace event, oldest first."""
    lines = [json.dumps(ev.to_dict(), sort_keys=True, default=str)
             for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_events_jsonl(text: str) -> List[TraceEvent]:
    """Round-trip loader for :func:`events_jsonl` output."""
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        d = json.loads(line)
        events.append(TraceEvent(d["name"], d["ts"], d.get("ph", PH_INSTANT),
                                 d.get("cat", ""), d.get("dur", 0.0),
                                 d.get("track", "main"), d.get("args")))
    return events


def chrome_trace(events: Iterable[TraceEvent],
                 process_name: str = "repro") -> Dict:
    """Chrome trace JSON object (open in about://tracing or Perfetto).

    Seconds become microseconds; each distinct ``track`` becomes a named
    thread of one synthetic process.
    """
    tids: Dict[str, int] = {}
    trace_events: List[Dict] = []
    for ev in events:
        tid = tids.setdefault(ev.track, len(tids))
        entry: Dict = {
            "name": ev.name, "ph": ev.ph, "pid": 0, "tid": tid,
            "ts": ev.ts * 1e6,
        }
        if ev.cat:
            entry["cat"] = ev.cat
        if ev.ph == PH_COMPLETE:
            entry["dur"] = ev.dur * 1e6
        elif ev.ph == PH_INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        if ev.args or ev.ph == PH_COUNTER:
            entry["args"] = ev.args
        trace_events.append(entry)
    meta: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": tid, "args": {"name": track}})
    return {"traceEvents": meta + trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# File plumbing
# ---------------------------------------------------------------------------

def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".obs-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_text(path: str, text: str) -> None:
    """Atomically write any exporter's output to ``path``."""
    _atomic_write(path, text)


def write_chrome_trace(path: str, events: Iterable[TraceEvent],
                       process_name: str = "repro") -> None:
    _atomic_write(path, json.dumps(chrome_trace(events, process_name)))
