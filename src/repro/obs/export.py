"""Exporters: Prometheus text, JSONL, and Chrome trace format.

* :func:`prometheus_text` renders a :class:`~repro.obs.registry.Registry`
  in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` plus
  one line per sample; histograms as cumulative ``_bucket`` series).
* :func:`events_jsonl` / :func:`metrics_jsonl` render one JSON object
  per line — the grep-friendly archive format.
* :func:`chrome_trace` packs trace events into the Chrome/Perfetto
  JSON object format so ``about://tracing`` or https://ui.perfetto.dev
  opens a run directly; tracks become named threads, timestamps become
  microseconds.

All writers go through :func:`_atomic_write`: a half-written trace from
an interrupted run is worse than none.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterable, List, Sequence

from repro.obs.registry import Registry
from repro.obs.trace import PH_COMPLETE, PH_COUNTER, PH_INSTANT, TraceEvent

__all__ = ["prometheus_text", "metrics_jsonl", "events_jsonl",
           "chrome_trace", "write_text", "write_chrome_trace",
           "parse_events_jsonl"]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _fmt_labels(labels: Sequence) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(v: str) -> str:
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    # HELP lines escape backslash and newline but NOT quotes (exposition
    # format spec) — a raw newline here would truncate the comment and
    # leave the remainder parsed as a garbage sample line.
    return str(v).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    if isinstance(v, int):
        return str(v)
    if v == float("inf"):
        return "+Inf"
    return repr(float(v))


def prometheus_text(registry: Registry) -> str:
    """The registry in Prometheus text format (families sorted by name)."""
    lines: List[str] = []
    seen_family = set()
    for inst in registry.instruments():
        name = inst.name
        if name not in seen_family:
            seen_family.add(name)
            help_ = registry.help_of(name)
            if help_:
                lines.append(f"# HELP {name} {_escape_help(help_)}")
            lines.append(f"# TYPE {name} {inst.kind}")
        for sample_name, labels, value in inst.samples():
            lines.append(f"{sample_name}{_fmt_labels(labels)} "
                         f"{_fmt_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(registry: Registry) -> str:
    """One JSON object per sample: ``{name, kind, labels, value}``."""
    lines = []
    for inst in registry.instruments():
        for sample_name, labels, value in inst.samples():
            lines.append(json.dumps(
                {"name": sample_name, "kind": inst.kind,
                 "labels": dict(labels), "value": value},
                sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Trace events
# ---------------------------------------------------------------------------

#: Marker key for binary arg values.  Replay traces carry raw control
#: payloads and probe headers in their args; JSON has no bytes type, so
#: the writer escapes them as ``{"__bytes__": "<hex>"}`` and the loader
#: undoes it — a lossless round trip instead of ``default=str`` mangling.
_BYTES_KEY = "__bytes__"


def _encode_args(value):
    """Deep-copy ``value`` with every ``bytes`` escaped for JSON."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_BYTES_KEY: bytes(value).hex()}
    if isinstance(value, dict):
        return {k: _encode_args(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_args(v) for v in value]
    return value


def _decode_args(value):
    """Inverse of :func:`_encode_args`."""
    if isinstance(value, dict):
        if set(value) == {_BYTES_KEY} and isinstance(value[_BYTES_KEY], str):
            return bytes.fromhex(value[_BYTES_KEY])
        return {k: _decode_args(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_args(v) for v in value]
    return value


def events_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per trace event, oldest first."""
    lines = []
    for ev in events:
        d = ev.to_dict()
        if "args" in d:
            d["args"] = _encode_args(d["args"])
        lines.append(json.dumps(d, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_events_jsonl(text: str) -> List[TraceEvent]:
    """Round-trip loader for :func:`events_jsonl` output."""
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        d = json.loads(line)
        args = d.get("args")
        if args is not None:
            args = _decode_args(args)
        events.append(TraceEvent(d["name"], d["ts"], d.get("ph", PH_INSTANT),
                                 d.get("cat", ""), d.get("dur", 0.0),
                                 d.get("track", "main"), args,
                                 seq=d.get("seq", 0), clk=d.get("clk", 0),
                                 epoch=d.get("epoch", 0)))
    return events


def chrome_trace(events: Iterable[TraceEvent],
                 process_name: str = "repro") -> Dict:
    """Chrome trace JSON object (open in about://tracing or Perfetto).

    Seconds become microseconds; each distinct ``track`` becomes a named
    thread of one synthetic process.
    """
    tids: Dict[str, int] = {}
    trace_events: List[Dict] = []
    for ev in events:
        tid = tids.setdefault(ev.track, len(tids))
        entry: Dict = {
            "name": ev.name, "ph": ev.ph, "pid": 0, "tid": tid,
            "ts": ev.ts * 1e6,
        }
        if ev.cat:
            entry["cat"] = ev.cat
        if ev.ph == PH_COMPLETE:
            entry["dur"] = ev.dur * 1e6
        elif ev.ph == PH_INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        args = ev.args
        if ev.seq:
            # Perfetto has no first-class sequence field; surface the
            # replay stamps through args so the UI still shows them.
            args = dict(args)
            args["seq"] = ev.seq
            if ev.clk:
                args["clk"] = ev.clk
            if ev.epoch:
                args["epoch"] = ev.epoch
        if args or ev.ph == PH_COUNTER:
            entry["args"] = _encode_args(args)
        trace_events.append(entry)
    meta: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": tid, "args": {"name": track}})
    return {"traceEvents": meta + trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# File plumbing
# ---------------------------------------------------------------------------

def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".obs-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_text(path: str, text: str) -> None:
    """Atomically write any exporter's output to ``path``."""
    _atomic_write(path, text)


def write_chrome_trace(path: str, events: Iterable[TraceEvent],
                       process_name: str = "repro") -> None:
    _atomic_write(path, json.dumps(chrome_trace(events, process_name)))
