"""The metrics registry: cheap named + labeled instruments.

Three instrument kinds, chosen for what the LVRM stack actually needs:

* :class:`Counter` — monotone event count (drops, relays, passes);
* :class:`Gauge` — point-in-time value with a ``set_max`` high-water
  helper and an optional pull callback (``set_fn``), so hot paths can
  keep a plain attribute and only pay the indirection at scrape time;
* :class:`Histogram` — fixed-bucket distribution (allocation-pass
  durations, queue occupancies) with Prometheus-compatible cumulative
  export.

Instruments are plain slotted objects: an increment is one attribute
add, so components keep them on the hot path without a flag check.
A :class:`Registry` get-or-creates instruments keyed by ``(name,
labels)`` — asking twice returns the same object — which is what makes
label sets the unit of aggregation *and* of isolation: two LVRM
instances in one process use distinct ``lvrm=...`` labels and therefore
distinct counters, so per-instance read-through views stay correct.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.quantiles import bucket_quantile, summary

__all__ = ["Counter", "Gauge", "Histogram", "Registry",
           "DEFAULT_BUCKETS", "default_registry"]

#: Default histogram buckets: log-spaced from 1 µs to 10 s, suiting both
#: per-frame costs (µs) and allocation-pass / reaction times (ms–s).
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError("counters only go up")
        self.value += n

    def samples(self) -> Iterable[Tuple[str, LabelItems, float]]:
        yield self.name, self.labels, self.value


class Gauge:
    """Point-in-time value; supports high-water tracking and pull mode."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def set(self, v: float) -> None:
        self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        self._value -= n

    def set_max(self, v: float) -> None:
        """High-water-mark update: keep the largest value ever seen."""
        if v > self._value:
            self._value = float(v)

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Pull mode: read ``fn()`` at scrape time instead of a stored
        value (hot paths then maintain a bare attribute for free)."""
        self._fn = fn

    def samples(self) -> Iterable[Tuple[str, LabelItems, float]]:
        yield self.name, self.labels, self.value


class Histogram:
    """Fixed-bucket distribution (upper bounds, cumulative on export)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError("buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        # One slot per bound plus the +Inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` by fixed-bucket interpolation (see
        :mod:`repro.obs.quantiles`); ``nan`` while empty."""
        return bucket_quantile(self.buckets, self.counts, q)

    def percentiles(self) -> Dict[str, float]:
        """The p50/p95/p99 read path the admin endpoint serves."""
        return summary(self.buckets, self.counts)

    def samples(self) -> Iterable[Tuple[str, LabelItems, float]]:
        for bound, cum in self.cumulative():
            le = "+Inf" if bound == float("inf") else repr(bound)
            yield (self.name + "_bucket", self.labels + (("le", le),), cum)
        yield self.name + "_sum", self.labels, self.sum
        yield self.name + "_count", self.labels, self.count


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Registry:
    """Get-or-create home for instruments, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, help_: str, labels: Dict[str, str],
             **extra):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ConfigError(
                f"metric {name!r} already registered as a {known}")
        key = (name, _label_items(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = _KINDS[kind](name, key[1], **extra)
            self._instruments[key] = inst
            self._kinds[name] = kind
            if help_:
                self._help[name] = help_
        return inst

    def counter(self, name: str, help_: str = "", **labels) -> Counter:
        return self._get("counter", name, help_, labels)

    def gauge(self, name: str, help_: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help_, labels)

    def histogram(self, name: str, help_: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get("histogram", name, help_, labels, buckets=buckets)

    # -- scrape side -------------------------------------------------------
    def instruments(self) -> List[object]:
        """All instruments, grouped by family name (stable order)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def find(self, name: str, **labels) -> List[object]:
        """Instruments of family ``name`` whose labels include ``labels``
        (a subset match: extra labels on the instrument are fine)."""
        want = set(_label_items(labels))
        return [inst for (n, li), inst in sorted(self._instruments.items())
                if n == name and want <= set(li)]

    # -- the cross-process telemetry plane ---------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready state of every instrument.

        This is the payload workers ship upstream in ``KIND_STATS``
        messages.  Values are *cumulative state*, not deltas, so a
        receiver applies them with set-semantics (:meth:`merge`) and
        a lost or repeated snapshot never skews the merged view.
        """
        metrics: List[Dict] = []
        for inst in self.instruments():
            entry: Dict = {"name": inst.name, "kind": inst.kind,
                           "labels": dict(inst.labels)}
            help_ = self.help_of(inst.name)
            if help_:
                entry["help"] = help_
            if inst.kind == "histogram":
                entry["buckets"] = list(inst.buckets)
                entry["counts"] = list(inst.counts)
                entry["sum"] = inst.sum
                entry["count"] = inst.count
            else:
                entry["value"] = inst.value
            metrics.append(entry)
        return {"v": 1, "metrics": metrics}

    def merge(self, snapshot: Dict,
              extra_labels: Optional[Dict[str, str]] = None) -> int:
        """Fold a :meth:`snapshot` into this registry; returns how many
        instruments were updated.

        ``extra_labels`` is how the monitor scopes a worker's registry
        into the cluster-wide view (e.g. ``{"vri_id": "3"}``): they are
        added to (and override) each instrument's own labels, so two
        workers' identically-named series stay distinct.

        Merging is **idempotent**: snapshots carry cumulative state and
        this method *replaces* the target instrument's state rather than
        adding to it, so applying the same snapshot twice equals once —
        the property that makes at-least-once delivery over a lossy
        control ring safe.
        """
        if snapshot.get("v") != 1:
            raise ConfigError(
                f"unknown registry snapshot version: {snapshot.get('v')!r}")
        merged = 0
        for entry in snapshot.get("metrics", ()):
            labels = dict(entry.get("labels", {}))
            if extra_labels:
                labels.update(extra_labels)
            kind = entry["kind"]
            name = entry["name"]
            help_ = entry.get("help", "")
            if kind == "counter":
                self.counter(name, help_, **labels).value = entry["value"]
            elif kind == "gauge":
                self.gauge(name, help_, **labels).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(name, help_,
                                      buckets=tuple(entry["buckets"]),
                                      **labels)
                counts = [int(n) for n in entry["counts"]]
                if len(counts) != len(hist.counts):
                    raise ConfigError(
                        f"histogram {name!r}: snapshot bucket layout "
                        "does not match the registered instrument")
                hist.counts = counts
                hist.sum = float(entry["sum"])
                hist.count = int(entry["count"])
            else:
                raise ConfigError(f"unknown instrument kind {kind!r}")
            merged += 1
        return merged

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def clear(self) -> None:
        """Drop every instrument (kept in place: live references held by
        components keep counting, they just stop being exported)."""
        self._instruments.clear()
        self._kinds.clear()
        self._help.clear()


#: Process-wide default registry; ``repro.obs.reset()`` clears it.
_DEFAULT = Registry()


def default_registry() -> Registry:
    return _DEFAULT
