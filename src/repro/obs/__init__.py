"""``repro.obs`` — the unified observability subsystem.

Four pieces, usable separately or through the process-wide singletons
wired together here:

* :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.trace` — structured timestamped events (sim-time in
  the DES, wall-time in the runtime backend);
* :mod:`repro.obs.recorder` — a bounded flight recorder for post-mortems;
* :mod:`repro.obs.export` — Prometheus text, JSONL, and Chrome-trace
  writers.

Conventions
-----------
Metrics are *always on*: an increment is one attribute add, and the
scattered ad-hoc counters of the seed (`dropped_no_route` & co.) now
live here behind read-through views.  Tracing is *opt-in*: hot paths
guard every emission with ``if TRACER.enabled:`` so a tracing-off run
pays one branch per site.  Enable with :func:`enable_tracing` (or
``lvrm-exp run --trace-out``).

The singletons (:data:`TRACER`, the default registry, :data:`RECORDER`)
are never rebound — :func:`reset` clears them in place — so call sites
may bind them at import time.
"""

from __future__ import annotations

from repro.obs.admin import AdminServer, AdminState
from repro.obs.export import (chrome_trace, events_jsonl, metrics_jsonl,
                              parse_events_jsonl, prometheus_text,
                              write_chrome_trace, write_text)
from repro.obs.quantiles import (LATENCY_BUCKETS, SUMMARY_QUANTILES,
                                 bucket_quantile, merge_bucket_counts,
                                 summary)
from repro.obs.recorder import RECORDER, FlightRecorder
from repro.obs.registry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                                Registry, default_registry)
from repro.obs.slo import SloRule, SloWatchdog, parse_rules
from repro.obs.spans import FrameSpan, SpanRecorder
from repro.obs.trace import TRACER, TraceEvent, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "Registry", "DEFAULT_BUCKETS",
    "default_registry", "Tracer", "TraceEvent", "TRACER",
    "FlightRecorder", "RECORDER",
    "prometheus_text", "metrics_jsonl", "events_jsonl",
    "parse_events_jsonl", "chrome_trace", "write_chrome_trace",
    "write_text",
    "LATENCY_BUCKETS", "SUMMARY_QUANTILES", "bucket_quantile",
    "merge_bucket_counts", "summary",
    "FrameSpan", "SpanRecorder",
    "SloRule", "SloWatchdog", "parse_rules",
    "AdminState", "AdminServer",
    "enable_tracing", "disable_tracing", "tracing_enabled", "reset",
]

# The global tracer feeds the global flight recorder: even when full
# retention is later turned off, crashes still have recent context.
TRACER.recorder = RECORDER


def enable_tracing(retain: bool = True) -> Tracer:
    """Turn on trace emission process-wide and return the tracer."""
    TRACER.retain = retain
    TRACER.enable()
    return TRACER


def disable_tracing() -> None:
    TRACER.disable()


def tracing_enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    """Clear metrics, trace buffer, and flight recorder (in place).

    Call at the start of a measured run so exports describe that run
    only.  Instruments already held by live components keep counting;
    they simply drop out of subsequent exports.
    """
    default_registry().clear()
    TRACER.clear()
    TRACER.disable()
    RECORDER.clear()
