"""Declarative SLO rules + the live watchdog that evaluates them.

The supervisor already reacts to *liveness* (crashes, stale heartbeats);
this module adds *quality*: declarative service-level objectives
evaluated over the merged registry each supervision period, so fault
scenarios and operators can assert "the gateway kept its latency and
loss budget" rather than eyeballing counters.

Four rule kinds, matching what the LVRM stack can actually measure:

``p99_latency_ms``
    The p99 of ``frame_latency_seconds{phase=...}`` (default
    ``total``), estimated by fixed-bucket interpolation over every
    matching histogram *summed together* — a cluster-wide quantile,
    not a per-instance one.  Threshold in milliseconds.
``drop_rate``
    Frames dropped / frames dispatched, over the whole run (cumulative
    counters).  Numerator sums every ``*_dropped_*``-family counter
    listed in ``drop_names``; denominator is ``total_name``
    (default ``lvrm_dispatched_total``).  Threshold is a fraction.
``stale_heartbeat``
    The oldest worker heartbeat age, in seconds — supplied by the
    caller (the monitor owns the receipt clock), since heartbeat ages
    are a property of the control plane, not of any one metric.
``failover_time_ms``
    The worst HA failover the cluster director recorded, in
    milliseconds — the max over ``cluster_failover_seconds`` gauges
    (one per gateway pair, see :mod:`repro.cluster.director`).
    Unmeasurable until the first failover: a pair that never failed
    over has no failover time, not a failover time of zero.

Rules come from JSON (``parse_rules``)::

    [{"name": "lat",   "kind": "p99_latency_ms",  "threshold": 5.0},
     {"name": "loss",  "kind": "drop_rate",       "threshold": 1e-3},
     {"name": "pulse", "kind": "stale_heartbeat", "threshold": 1.0}]

Each evaluation of a breaching rule increments
``slo_breaches_total{rule=...}`` and pins ``slo_ok{rule=...}`` to 0;
the ok→breach *edge* additionally emits a ``slo.breach`` trace event
(and ``slo.clear`` on recovery) and always lands in the flight
recorder, so a post-mortem shows when the budget went.
"""

from __future__ import annotations

import json
import math
import os
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.quantiles import bucket_quantile, merge_bucket_counts
from repro.obs.recorder import RECORDER
from repro.obs.registry import Registry, default_registry
from repro.obs.trace import TRACER

__all__ = ["SloRule", "SloWatchdog", "parse_rules", "RULE_KINDS",
           "DEFAULT_DROP_NAMES"]

RULE_KINDS = ("p99_latency_ms", "drop_rate", "stale_heartbeat",
              "failover_time_ms")

#: Counter families the ``drop_rate`` numerator sums by default — every
#: way the stack loses a frame (classification, queue-full, routing,
#: output-full, corruption, transmit, fault drain).
DEFAULT_DROP_NAMES = (
    "lvrm_dropped_no_vr_total",
    "lvrm_dropped_queue_full_total",
    "lvrm_dropped_tx_total",
    "vr_dropped_queue_full_total",
    "vri_dropped_no_route_total",
    "vri_dropped_out_full_total",
    "vri_dropped_corrupt_total",
    "vri_dropped_fault_total",
)


class SloRule:
    """One declarative objective (see module docstring for kinds)."""

    __slots__ = ("name", "kind", "threshold", "labels", "phase",
                 "drop_names", "total_name")

    def __init__(self, name: str, kind: str, threshold: float,
                 labels: Optional[Dict[str, str]] = None,
                 phase: str = "total",
                 drop_names: Sequence[str] = DEFAULT_DROP_NAMES,
                 total_name: str = "lvrm_dispatched_total"):
        if kind not in RULE_KINDS:
            raise ConfigError(
                f"unknown SLO rule kind {kind!r} (expected one of "
                f"{', '.join(RULE_KINDS)})")
        if not name:
            raise ConfigError("SLO rules need a non-empty name")
        threshold = float(threshold)
        if not math.isfinite(threshold) or threshold < 0:
            raise ConfigError(
                f"SLO rule {name!r}: threshold must be finite and >= 0, "
                f"got {threshold!r}")
        self.name = name
        self.kind = kind
        self.threshold = threshold
        self.labels = dict(labels or {})
        self.phase = phase
        self.drop_names = tuple(drop_names)
        self.total_name = total_name

    def to_dict(self) -> Dict:
        d: Dict = {"name": self.name, "kind": self.kind,
                   "threshold": self.threshold}
        if self.labels:
            d["labels"] = dict(self.labels)
        if self.kind == "p99_latency_ms" and self.phase != "total":
            d["phase"] = self.phase
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SloRule {self.name!r} {self.kind} "
                f"threshold={self.threshold!r}>")


def parse_rules(spec) -> List[SloRule]:
    """Rules from a JSON string, a list of dicts, or a mix of both.

    Accepts already-constructed :class:`SloRule` items unchanged, so
    config plumbing can hand through either representation.
    """
    if isinstance(spec, str):
        spec = json.loads(spec)
    if isinstance(spec, Mapping):  # single rule without the list wrapper
        spec = [spec]
    rules: List[SloRule] = []
    for item in spec:
        if isinstance(item, SloRule):
            rules.append(item)
            continue
        if not isinstance(item, Mapping):
            raise ConfigError(f"SLO rule must be an object, got {item!r}")
        unknown = set(item) - {"name", "kind", "threshold", "labels",
                               "phase", "drop_names", "total_name"}
        if unknown:
            raise ConfigError(
                f"SLO rule {item.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}")
        try:
            rules.append(SloRule(
                name=item["name"], kind=item["kind"],
                threshold=item["threshold"],
                labels=item.get("labels"),
                phase=item.get("phase", "total"),
                drop_names=item.get("drop_names", DEFAULT_DROP_NAMES),
                total_name=item.get("total_name", "lvrm_dispatched_total")))
        except KeyError as missing:
            raise ConfigError(
                f"SLO rule {item!r} is missing required key {missing}")
    seen = set()
    for rule in rules:
        if rule.name in seen:
            raise ConfigError(f"duplicate SLO rule name {rule.name!r}")
        seen.add(rule.name)
    return rules


class SloWatchdog:
    """Evaluates rules over a registry; edge-triggers breach events.

    One watchdog per monitor.  ``clock`` supplies the event timestamp
    in the caller's domain (sim-time or wall-time); ``track`` names the
    trace lane.  Call :meth:`evaluate` each supervision period.
    """

    def __init__(self, rules: Sequence[SloRule],
                 registry: Optional[Registry] = None,
                 clock: Optional[Callable[[], float]] = None,
                 track: str = "slo",
                 scope_labels: Optional[Dict[str, str]] = None,
                 dump_dir: Optional[str] = None,
                 dump_cooldown: float = 5.0,
                 recorder=None):
        self.rules = list(rules)
        self.registry = registry if registry is not None else default_registry()
        self.clock = clock
        self.track = track
        #: Breach-edge post-mortems: when set, each ok→breach edge dumps
        #: the flight recorder (``recorder`` or the global one) into
        #: this directory — at most one dump per rule per
        #: ``dump_cooldown`` seconds, so a flapping rule cannot fill the
        #: disk.  The cooldown clock is ``clock`` (the caller's domain).
        self.dump_dir = dump_dir
        self.dump_cooldown = float(dump_cooldown)
        self._dump_recorder = recorder
        self._last_dump: Dict[str, float] = {}
        self.dumps = 0
        #: Labels ANDed into every rule's series selection.  The owning
        #: monitor passes its instance scope (``{"lvrm": "3"}`` /
        #: ``{"rt": "2"}``) so a watchdog only ever measures its own
        #: run's instruments — the default registry is process-wide and
        #: accumulates across runs, and an unscoped drop_rate rule
        #: would count a previous gateway's losses against this one.
        self.scope_labels = dict(scope_labels or {})
        # None = never evaluated with data; False = ok; True = breaching.
        self._breaching: Dict[str, Optional[bool]] = {
            r.name: None for r in self.rules}
        # Last edge timestamps + values per rule (clock domain of
        # ``clock``), for the /slo admin view.
        self._breach_ts: Dict[str, float] = {}
        self._clear_ts: Dict[str, float] = {}
        self._last_value: Dict[str, float] = {}
        self.evaluations = 0
        #: Per-rule breaching-sweep tally local to THIS watchdog.  The
        #: ``slo_breaches_total`` counter is keyed by rule name only and
        #: therefore shared by every watchdog in the process; scenario
        #: reports read this dict so one run's report never includes a
        #: previous run's breaches.
        self.breach_counts: Dict[str, int] = {r.name: 0 for r in self.rules}

    # -- per-kind measurement ----------------------------------------------
    def _measure(self, rule: SloRule,
                 heartbeat_ages: Optional[Mapping] = None,
                 ) -> Tuple[float, Dict]:
        """``(value, detail)``; value is ``nan`` when unmeasurable."""
        reg = self.registry
        sel = {**self.scope_labels, **rule.labels}
        if rule.kind == "p99_latency_ms":
            hists = [h for h in reg.find("frame_latency_seconds",
                                         phase=rule.phase, **sel)
                     if h.count]
            if not hists:
                return math.nan, {}
            merged = merge_bucket_counts([h.counts for h in hists])
            p99 = bucket_quantile(hists[0].buckets, merged, 0.99)
            return p99 * 1e3, {"phase": rule.phase,
                               "series": len(hists),
                               "samples": sum(h.count for h in hists)}
        if rule.kind == "drop_rate":
            dropped = sum(c.value for name in rule.drop_names
                          for c in reg.find(name, **sel))
            total = sum(c.value
                        for c in reg.find(rule.total_name, **sel))
            if total <= 0:
                return math.nan, {}
            return dropped / total, {"dropped": dropped, "dispatched": total}
        if rule.kind == "failover_time_ms":
            gauges = [g for g in reg.find("cluster_failover_seconds", **sel)
                      if g.value > 0.0]
            if not gauges:
                return math.nan, {}
            return (max(g.value for g in gauges) * 1e3,
                    {"pairs": len(gauges)})
        # stale_heartbeat
        if not heartbeat_ages:
            return math.nan, {}
        worst = max(heartbeat_ages, key=lambda k: heartbeat_ages[k])
        return float(heartbeat_ages[worst]), {"worst": str(worst)}

    # -- the periodic sweep -------------------------------------------------
    def evaluate(self, now: Optional[float] = None,
                 heartbeat_ages: Optional[Mapping] = None) -> List[Dict]:
        """One sweep over all rules; returns the currently-breaching set.

        ``heartbeat_ages`` maps worker id → seconds since last
        heartbeat (only ``stale_heartbeat`` rules read it).  Rules with
        nothing to measure (no samples yet, zero denominator) neither
        breach nor clear.
        """
        if now is None:
            now = self.clock() if self.clock is not None else 0.0
        self.evaluations += 1
        breaches: List[Dict] = []
        for rule in self.rules:
            value, detail = self._measure(rule, heartbeat_ages)
            if math.isnan(value):
                continue
            breaching = value > rule.threshold
            self.registry.gauge(
                "slo_ok", "1 while the SLO rule holds, 0 while breaching",
                rule=rule.name).set(0.0 if breaching else 1.0)
            was = self._breaching[rule.name]
            self._breaching[rule.name] = breaching
            self._last_value[rule.name] = value
            if breaching:
                self.breach_counts[rule.name] += 1
                self.registry.counter(
                    "slo_breaches_total",
                    "evaluations that found the SLO rule breached",
                    rule=rule.name).inc()
                report = {"rule": rule.name, "kind": rule.kind,
                          "value": value, "threshold": rule.threshold,
                          **detail}
                breaches.append(report)
                if was is not True:  # ok (or unknown) -> breach edge
                    self._breach_ts[rule.name] = now
                    RECORDER.note("slo.breach", ts=now, **report)
                    if TRACER.enabled:
                        TRACER.instant("slo.breach", ts=now, cat="slo",
                                       track=self.track, **report)
                    self._breach_dump(rule, now)
            elif was is True:  # breach -> ok edge
                self._clear_ts[rule.name] = now
                RECORDER.note("slo.clear", ts=now, rule=rule.name,
                              value=value, threshold=rule.threshold)
                if TRACER.enabled:
                    TRACER.instant("slo.clear", ts=now, cat="slo",
                                   track=self.track, rule=rule.name,
                                   value=value)
        return breaches

    def _breach_dump(self, rule: SloRule, now: float) -> None:
        """Dump the flight recorder for one breach edge, bounded to one
        dump per rule per cooldown; a failed write never blocks the
        sweep."""
        if self.dump_dir is None:
            return
        last = self._last_dump.get(rule.name)
        if last is not None and now - last < self.dump_cooldown:
            return
        self._last_dump[rule.name] = now
        self.dumps += 1
        recorder = (self._dump_recorder if self._dump_recorder is not None
                    else RECORDER)
        path = os.path.join(self.dump_dir,
                            f"slo-breach-{rule.name}-{self.dumps}.txt")
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                recorder.dump(fh, reason=f"slo breach: {rule.name}")
        except OSError:
            pass

    def state(self) -> Dict:
        """JSON-ready rule states for the ``/slo`` admin route."""
        rules = {}
        for rule in self.rules:
            breaching = self._breaching[rule.name]
            rules[rule.name] = {
                "kind": rule.kind,
                "threshold": rule.threshold,
                "state": ("unmeasured" if breaching is None
                          else "breached" if breaching else "ok"),
                "last_value": self._last_value.get(rule.name),
                "breach_sweeps": self.breach_counts[rule.name],
                "last_breach_ts": self._breach_ts.get(rule.name),
                "last_clear_ts": self._clear_ts.get(rule.name),
            }
        return {"track": self.track, "evaluations": self.evaluations,
                "dumps": self.dumps, "rules": rules}

    def breaching(self) -> List[str]:
        """Names of rules breaching as of the last sweep."""
        return [name for name, b in self._breaching.items() if b]
