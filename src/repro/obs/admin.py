"""The live admin endpoint: ``/metrics``, ``/healthz``, ``/topology``,
``/spans``, ``/cluster``, ``/overload``, ``/slo``, ``/replay``.

Split in two layers so both backends share one implementation:

* :class:`AdminState` is pure and poll-based — ``handle(path)`` returns
  ``(status, content_type, body)`` from whatever providers the owner
  wired in.  The DES uses it directly (call ``handle()`` at any sim
  point: no threads, no sockets, fully deterministic), and tests hit it
  without binding a port.
* :class:`AdminServer` is the opt-in runtime wrapper: a stdlib
  ``ThreadingHTTPServer`` on a daemon thread serving an
  :class:`AdminState` over loopback.  Opt-in because a socket thread
  has no place in a measured run unless asked for; when on, request
  handling costs the monitor nothing (scrapes read shared state from
  the server thread).

Routes:

=========== ============================================================
path        body
=========== ============================================================
/metrics    the registry in Prometheus text exposition format
/healthz    JSON supervisor slot states; 200 while any slot is live,
            503 only when every slot is DEGRADED (given up)
/topology   JSON VR → VRI → core map
/spans      recent frame-latency spans, one JSON object per line
/cluster    JSON federation view (members, roles, VIPs, failovers) —
            empty object on a monitor that is not part of a cluster
/overload   JSON admission-control state (policy, per-class rates,
            admitted/shed counts) — empty object under policy "none"
/slo        JSON SLO watchdog rule states (armed/breached, last edge
            timestamps) — empty object without a watchdog
/replay     JSON record/replay view: live trace-recorder progress and
            the latest happens-before check — empty object when no
            recorder ever attached
/           JSON index of the routes above
=========== ============================================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.obs.export import prometheus_text
from repro.obs.registry import Registry, default_registry

__all__ = ["AdminState", "AdminServer", "PROM_CONTENT_TYPE"]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON = "application/json; charset=utf-8"
_JSONL = "application/jsonl; charset=utf-8"

Reply = Tuple[int, str, str]


class AdminState:
    """Route table + providers; ``handle(path)`` -> (status, ctype, body).

    Providers are zero-arg callables so the state always serves the
    *current* view, never a snapshot taken at wiring time:

    * ``health_fn``  -> ``{slot_id: state_name}`` (supervisor states);
    * ``topology_fn`` -> any JSON-ready mapping (VR -> VRI -> core);
    * ``spans_fn``   -> JSONL text of recent spans;
    * ``cluster_fn`` -> JSON-ready federation view (repro.cluster);
    * ``overload_fn`` -> JSON-ready admission-control state
      (repro.overload);
    * ``slo_fn``     -> JSON-ready SLO watchdog rule states
      (:meth:`repro.obs.slo.SloWatchdog.state`);
    * ``replay_fn``  -> JSON-ready record/replay view (recorder
      progress + latest HB-check report, repro.replay).

    All optional — unwired routes answer with an empty-but-valid body,
    so a probe never distinguishes "not wired" from "nothing yet".
    """

    def __init__(self, registry: Optional[Registry] = None,
                 health_fn: Optional[Callable[[], Dict[str, str]]] = None,
                 topology_fn: Optional[Callable[[], Dict]] = None,
                 spans_fn: Optional[Callable[[], str]] = None,
                 cluster_fn: Optional[Callable[[], Dict]] = None,
                 overload_fn: Optional[Callable[[], Dict]] = None,
                 slo_fn: Optional[Callable[[], Dict]] = None,
                 replay_fn: Optional[Callable[[], Dict]] = None):
        self.registry = registry if registry is not None else default_registry()
        self.health_fn = health_fn
        self.topology_fn = topology_fn
        self.spans_fn = spans_fn
        self.cluster_fn = cluster_fn
        self.overload_fn = overload_fn
        self.slo_fn = slo_fn
        self.replay_fn = replay_fn
        self.requests = 0

    # -- route bodies -------------------------------------------------------
    def metrics(self) -> Reply:
        return 200, PROM_CONTENT_TYPE, prometheus_text(self.registry)

    def healthz(self) -> Reply:
        slots = dict(self.health_fn()) if self.health_fn is not None else {}
        degraded = [s for s, state in slots.items() if state == "DEGRADED"]
        # Degraded-but-partial still serves traffic: stay 200 so an
        # external prober doesn't declare a mid-failover gateway dead.
        all_out = bool(slots) and len(degraded) == len(slots)
        body = {"status": "failed" if all_out else
                ("degraded" if degraded else "ok"),
                "slots": {str(k): str(v) for k, v in slots.items()}}
        return ((503 if all_out else 200), _JSON,
                json.dumps(body, sort_keys=True))

    def topology(self) -> Reply:
        topo = self.topology_fn() if self.topology_fn is not None else {}
        return 200, _JSON, json.dumps(topo, sort_keys=True, default=str)

    def spans(self) -> Reply:
        text = self.spans_fn() if self.spans_fn is not None else ""
        return 200, _JSONL, text

    def cluster(self) -> Reply:
        view = self.cluster_fn() if self.cluster_fn is not None else {}
        return 200, _JSON, json.dumps(view, sort_keys=True, default=str)

    def overload(self) -> Reply:
        view = self.overload_fn() if self.overload_fn is not None else {}
        return 200, _JSON, json.dumps(view, sort_keys=True, default=str)

    def slo(self) -> Reply:
        view = self.slo_fn() if self.slo_fn is not None else {}
        return 200, _JSON, json.dumps(view, sort_keys=True, default=str)

    def replay(self) -> Reply:
        view = self.replay_fn() if self.replay_fn is not None else {}
        return 200, _JSON, json.dumps(view, sort_keys=True, default=str)

    def index(self) -> Reply:
        return 200, _JSON, json.dumps(
            {"routes": sorted(self._ROUTES)}, sort_keys=True)

    _ROUTES = {"/metrics": metrics, "/healthz": healthz,
               "/topology": topology, "/spans": spans,
               "/cluster": cluster, "/overload": overload,
               "/slo": slo, "/replay": replay, "/": index}

    def handle(self, path: str) -> Reply:
        """Serve one request; unknown paths get a JSON 404."""
        self.requests += 1
        path = path.split("?", 1)[0].rstrip("/") or "/"
        route = self._ROUTES.get(path)
        if route is None:
            return 404, _JSON, json.dumps(
                {"error": "not found", "path": path,
                 "routes": sorted(self._ROUTES)})
        return route(self)


class _Handler(BaseHTTPRequestHandler):
    # The admin plane is a diagnostics tool; never spam stderr per scrape.
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        pass

    def do_GET(self):  # noqa: N802 - stdlib naming
        status, ctype, body = self.server.state.handle(self.path)
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Re-bindable right after close: CI restarts monitors on fixed ports.
    allow_reuse_address = True

    def __init__(self, addr, state: AdminState):
        super().__init__(addr, _Handler)
        self.state = state


class AdminServer:
    """Serve an :class:`AdminState` over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`), which is what tests use.  Loopback-only by default:
    this is an operator plane, not a public one.
    """

    def __init__(self, state: AdminState, port: int = 0,
                 host: str = "127.0.0.1"):
        self.state = state
        self._server = _Server((host, port), state)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AdminServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.1},
                name=f"lvrm-admin:{self.port}", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
