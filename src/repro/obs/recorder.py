"""Bounded flight recorder: the last N events, for post-mortems.

The runtime backend fails in ways the DES cannot (a worker segfaults,
a ring wedges, a container forbids affinity).  The flight recorder is a
fixed-size ring of the most recent :class:`~repro.obs.trace.TraceEvent`s
that costs one deque append per event and can be dumped:

* on demand (``dump()`` / ``dump_text()``), or
* automatically when an exception escapes a guarded block
  (:meth:`FlightRecorder.on_error`), which is how the worker main loop
  and the runtime monitor wire it in.

It deliberately stores event *objects*, not formatted strings — the
formatting cost is paid only at dump time, never in the hot path.
"""

from __future__ import annotations

import sys
from collections import deque
from contextlib import contextmanager
from typing import Deque, List, Optional

from repro.obs.trace import TraceEvent

__all__ = ["FlightRecorder", "RECORDER"]


class FlightRecorder:
    """Ring buffer of the last ``maxlen`` trace events."""

    def __init__(self, maxlen: int = 1024):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._ring: Deque[TraceEvent] = deque(maxlen=maxlen)
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.recorded += 1

    def note(self, name: str, ts: float, **args) -> None:
        """Record an ad-hoc instant event without going through a tracer."""
        self.record(TraceEvent(name, ts, args=args))

    def events(self) -> List[TraceEvent]:
        """Oldest-to-newest snapshot of the retained window."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0

    # -- dumping -----------------------------------------------------------
    def dump_text(self, reason: str = "") -> str:
        lines = [f"=== flight recorder dump ({len(self._ring)} of "
                 f"{self.recorded} events retained)"
                 + (f": {reason}" if reason else "") + " ==="]
        for ev in self._ring:
            args = " ".join(f"{k}={v}" for k, v in sorted(ev.args.items()))
            lines.append(f"  [{ev.ts:.9f}] {ev.track}: {ev.name}"
                         + (f" ({args})" if args else ""))
        return "\n".join(lines)

    def dump(self, stream=None, reason: str = "") -> None:
        """Write the text dump to ``stream`` (default stderr)."""
        out = stream if stream is not None else sys.stderr
        out.write(self.dump_text(reason) + "\n")
        flush = getattr(out, "flush", None)
        if flush is not None:
            flush()

    @contextmanager
    def on_error(self, stream=None, path: Optional[str] = None,
                 reason: str = ""):
        """Dump the recorder if an exception escapes the block, then
        re-raise.  ``path`` writes to a file instead of a stream (useful
        in child processes whose stderr may be swallowed)."""
        try:
            yield self
        except BaseException as exc:
            why = reason or f"{type(exc).__name__}: {exc}"
            if path is not None:
                try:
                    with open(path, "a", encoding="utf-8") as fh:
                        self.dump(fh, reason=why)
                except OSError:
                    self.dump(stream, reason=why)
            else:
                self.dump(stream, reason=why)
            raise


#: Process-wide recorder fed by the global tracer (see repro.obs).
RECORDER = FlightRecorder(1024)
