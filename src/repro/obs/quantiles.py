"""Streaming quantiles over fixed-bucket histograms.

The LVRM histograms are fixed-bucket by design (one ``bisect`` per
observation, mergeable across processes by summing counts), so quantile
reads are *estimates*: the classic Prometheus ``histogram_quantile``
linear interpolation inside the bucket that crosses the target rank.

Accuracy is bounded by bucket resolution — which is why
:data:`LATENCY_BUCKETS` below is much finer than the general-purpose
:data:`~repro.obs.registry.DEFAULT_BUCKETS` in the µs–ms range where
frame latencies actually live.  The error is at most one bucket width,
exactly the budgeted-precision trade Braun et al. make for per-packet
monitoring (PAPERS.md): constant memory and O(buckets) reads, no sample
retention.

Conventions (matching PromQL):

* ranks landing in the first bucket interpolate from an assumed lower
  bound of 0;
* ranks landing in the +Inf bucket return the last finite bound;
* an empty histogram returns ``nan``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["bucket_quantile", "merge_bucket_counts", "summary",
           "LATENCY_BUCKETS", "SUMMARY_QUANTILES"]

#: Fine-grained buckets for frame-latency spans: log-ish spacing from
#: 1 µs to 4 s with extra resolution in the 10 µs – 100 ms band where
#: both the DES (exact) and the runtime backend (sampled) land.
LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 4.0,
)

#: The read path the admin endpoint and the SLO watchdog use.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int],
                    q: float) -> float:
    """Estimate quantile ``q`` from per-bucket counts.

    ``bounds`` are the histogram's upper bounds (strictly increasing,
    finite); ``counts`` has one entry per bound plus the trailing +Inf
    overflow slot (the :class:`~repro.obs.registry.Histogram` layout).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q!r}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"{len(bounds)} bounds need {len(bounds) + 1} counts, "
            f"got {len(counts)}")
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cum = 0
    for i, bound in enumerate(bounds):
        prev_cum = cum
        cum += counts[i]
        if cum >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            if counts[i] == 0:  # pragma: no cover - cum jump implies >0
                return bound
            # Linear interpolation within the crossing bucket.
            frac = (rank - prev_cum) / counts[i]
            return lo + (bound - lo) * frac
    # Rank lands in the +Inf overflow: the last finite bound is the
    # best (PromQL-compatible) answer the histogram can give.
    return bounds[-1]


def merge_bucket_counts(parts: Iterable[Sequence[int]]) -> Tuple[int, ...]:
    """Element-wise sum of per-bucket counts (cluster-wide quantiles).

    All parts must share one bucket layout — true by construction for
    instruments of one metric family, which the registry creates from a
    single bucket tuple.
    """
    acc: list = []
    for counts in parts:
        if not acc:
            acc = list(counts)
            continue
        if len(counts) != len(acc):
            raise ValueError("cannot merge histograms with different "
                             f"bucket counts: {len(acc)} vs {len(counts)}")
        for i, n in enumerate(counts):
            acc[i] += n
    return tuple(acc)


def summary(bounds: Sequence[float], counts: Sequence[int],
            quantiles: Sequence[float] = SUMMARY_QUANTILES,
            ) -> Dict[str, float]:
    """The p50/p95/p99 read path: ``{"p50": ..., "p95": ..., ...}``."""
    return {f"p{round(q * 100)}": bucket_quantile(bounds, counts, q)
            for q in quantiles}
