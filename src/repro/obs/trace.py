"""Structured event tracing for both backends.

The tracer records timestamped events — instants, completed spans, and
counter samples — in whatever clock the caller lives in: the DES passes
``sim.now`` (simulated seconds), the real-process runtime passes
``time.perf_counter()`` (wall seconds).  Events are plain slotted
objects; the exporters in :mod:`repro.obs.export` turn them into JSONL
or Chrome trace format.

Overhead discipline: the singleton :data:`TRACER` starts disabled, and
every instrumented hot path guards emission with a single attribute
check (``if TRACER.enabled:``), so a tracing-off run pays one branch
per instrumented site and allocates nothing.  The object identity of
:data:`TRACER` never changes — call sites may bind it at import time —
``reset()`` clears it in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["TraceEvent", "Tracer", "TRACER",
           "PH_INSTANT", "PH_COMPLETE", "PH_COUNTER"]

#: Chrome-trace phase codes (the subset we emit).
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_COUNTER = "C"


class TraceEvent:
    """One trace record.

    ``ts`` and ``dur`` are in seconds of the *emitting* clock domain
    (sim-time or wall-time — a single trace should stick to one).
    ``track`` names the logical lane (maps to a Chrome tid).

    The last three slots are the record/replay stamps
    (:mod:`repro.replay`), all zero unless a recorder assigned them:
    ``seq`` is the recorder's total order over the whole trace, ``clk``
    the Lamport clock of the emitting track (program order within one
    process lane), and ``epoch`` the supervision epoch — it advances on
    every fault injection and supervisor decision, so "which failover
    generation was this" survives into the offline analysis.
    """

    __slots__ = ("name", "ts", "ph", "cat", "dur", "track", "args",
                 "seq", "clk", "epoch")

    def __init__(self, name: str, ts: float, ph: str = PH_INSTANT,
                 cat: str = "", dur: float = 0.0, track: str = "main",
                 args: Optional[Dict] = None, seq: int = 0, clk: int = 0,
                 epoch: int = 0):
        self.name = name
        self.ts = ts
        self.ph = ph
        self.cat = cat
        self.dur = dur
        self.track = track
        self.args = args or {}
        self.seq = seq
        self.clk = clk
        self.epoch = epoch

    def to_dict(self) -> Dict:
        d = {"name": self.name, "ts": self.ts, "ph": self.ph,
             "track": self.track}
        if self.cat:
            d["cat"] = self.cat
        if self.ph == PH_COMPLETE:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        if self.seq:
            d["seq"] = self.seq
        if self.clk:
            d["clk"] = self.clk
        if self.epoch:
            d["epoch"] = self.epoch
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent {self.name!r} ph={self.ph} ts={self.ts:.9f} "
                f"{self.args!r}>")


class Tracer:
    """Collects :class:`TraceEvent`\\ s while enabled.

    Three sinks, independently optional:

    * ``events`` — the full retained list, for export (``retain=True``);
    * ``recorder`` — a bounded flight recorder fed with every event,
      so a crash dump shows the last moments even when full retention
      is off;
    * ``replay`` — an attached :class:`repro.replay.ReplayRecorder`
      that stamps every event with total-order sequence / Lamport /
      epoch numbers before the other sinks see it (``None`` unless a
      recording is in progress).
    """

    def __init__(self, retain: bool = True, recorder=None):
        self.enabled = False
        self.retain = retain
        self.recorder = recorder
        self.replay = None
        self.events: List[TraceEvent] = []

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- emission ----------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if self.replay is not None:
            # Stamp first: every downstream sink sees the sequenced event.
            self.replay.absorb(event)
        if self.retain:
            self.events.append(event)
        if self.recorder is not None:
            self.recorder.record(event)

    def instant(self, name: str, ts: float, cat: str = "",
                track: str = "main", **args) -> None:
        """A point event (frame enqueue, balancing decision, drop...)."""
        self.emit(TraceEvent(name, ts, PH_INSTANT, cat, 0.0, track, args))

    def complete(self, name: str, ts: float, dur: float, cat: str = "",
                 track: str = "main", **args) -> None:
        """A finished span: started at ``ts``, lasted ``dur`` seconds."""
        self.emit(TraceEvent(name, ts, PH_COMPLETE, cat, dur, track, args))

    def counter(self, name: str, ts: float, value: float, cat: str = "",
                track: str = "main", series: str = "value") -> None:
        """A sampled quantity Chrome renders as a stacked area chart."""
        self.emit(TraceEvent(name, ts, PH_COUNTER, cat, 0.0, track,
                             {series: value}))

    # -- queries (test / analysis convenience) -----------------------------
    def named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]


#: Process-wide tracer singleton.  Never rebound; cleared in place.
TRACER = Tracer()
