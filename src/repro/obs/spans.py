"""Frame-level latency spans: where did this frame spend its time?

A *span* attributes one frame's end-to-end gateway latency to four
phases, the same decomposition in both backends:

========== ==========================================================
phase      meaning
========== ==========================================================
dispatch   capture/classify/balance until the frame is in a VRI queue
ring_wait  queued in the VRI's incoming ring before the VRI pops it
service    the VRI's pop + route + process + push
drain      queued in the outgoing ring until LVRM transmits it
========== ==========================================================

plus ``total`` (= capture to transmit).  Phases feed one histogram
family, ``frame_latency_seconds{phase=...}``, over the fine-grained
:data:`~repro.obs.quantiles.LATENCY_BUCKETS`, so p50/p95/p99 with
per-phase attribution read straight out of any registry — merged
cluster-wide views included.

Clock domains (the tracer's rule applies): the DES stamps ``sim.now``
and records **every** frame exactly; the runtime backend stamps
``time.monotonic()`` — CLOCK_MONOTONIC is system-wide on Linux, so
stamps are comparable across the monitor and worker processes — and
samples 1-in-N via a *slot-header probe*: the monitor prepends
:func:`encode_in_probe` to a sampled frame's ring record, the worker
recognizes the magic, adds its own stamps with :func:`encode_out_probe`,
and the monitor closes the span at drain.  Unsampled frames carry no
header and pay only a 4-byte magic comparison per record.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.quantiles import LATENCY_BUCKETS
from repro.obs.registry import Registry, default_registry
from repro.obs.trace import TRACER

__all__ = ["FrameSpan", "SpanRecorder", "PHASES",
           "encode_in_probe", "decode_in_probe",
           "encode_out_probe", "decode_out_probe",
           "PROBE_MAGIC", "PROBE_MAGIC_BYTES",
           "IN_PROBE_BYTES", "OUT_PROBE_BYTES"]

#: Phase names, in pipeline order (``total`` is derived, not listed).
PHASES = ("dispatch", "ring_wait", "service", "drain")

#: Leading magic of a probed ring record ("LVSP"): chosen to be an
#: impossible Ethernet frame prefix (destination MAC starting 0x4c 0x56
#: 0x53 0x50 is a valid unicast OUI, but the monitor only wraps frames
#: it chose to sample, and the worker strips before parsing, so the
#: magic never reaches a codec).
PROBE_MAGIC = 0x4C565350

#: The magic's on-wire prefix — hot loops compare ``record[:4]`` against
#: this before paying for a full decode, so unsampled records cost one
#: bytes comparison.
PROBE_MAGIC_BYTES = struct.pack("<I", PROBE_MAGIC)

#: monitor -> worker: magic, t_start (capture), t_push (enqueue done).
_IN_PROBE = struct.Struct("<Idd")
#: worker -> monitor: magic, t_start, t_push, t_pop, t_done.
_OUT_PROBE = struct.Struct("<Idddd")

IN_PROBE_BYTES = _IN_PROBE.size
OUT_PROBE_BYTES = _OUT_PROBE.size


def encode_in_probe(t_start: float, t_push: float, frame: bytes) -> bytes:
    """Wrap a sampled frame for the monitor->worker data ring."""
    return _IN_PROBE.pack(PROBE_MAGIC, t_start, t_push) + frame


def decode_in_probe(record: bytes) -> Tuple[Optional[Tuple[float, float]], bytes]:
    """``((t_start, t_push), frame)`` for a probed record, else
    ``(None, record)`` unchanged."""
    if len(record) >= _IN_PROBE.size:
        magic, t_start, t_push = _IN_PROBE.unpack_from(record)
        if magic == PROBE_MAGIC:
            return (t_start, t_push), record[_IN_PROBE.size:]
    return None, record


def encode_out_probe(t_start: float, t_push: float, t_pop: float,
                     t_done: float, record: bytes) -> bytes:
    """Wrap a routed record for the worker->monitor data ring."""
    return _OUT_PROBE.pack(PROBE_MAGIC, t_start, t_push, t_pop,
                           t_done) + record


def decode_out_probe(record: bytes) -> Tuple[Optional[Tuple[float, float, float, float]], bytes]:
    """``((t_start, t_push, t_pop, t_done), record)`` for a probed
    record, else ``(None, record)`` unchanged."""
    if len(record) >= _OUT_PROBE.size:
        head = _OUT_PROBE.unpack_from(record)
        if head[0] == PROBE_MAGIC:
            return head[1:], record[_OUT_PROBE.size:]
    return None, record


class FrameSpan:
    """One completed frame span (all durations in seconds)."""

    __slots__ = ("ts", "dispatch", "ring_wait", "service", "drain",
                 "total", "vri_id", "vr")

    def __init__(self, ts: float, dispatch: float, ring_wait: float,
                 service: float, drain: float,
                 vri_id: Optional[int] = None, vr: str = ""):
        self.ts = ts
        self.dispatch = dispatch
        self.ring_wait = ring_wait
        self.service = service
        self.drain = drain
        self.total = dispatch + ring_wait + service + drain
        self.vri_id = vri_id
        self.vr = vr

    def phases(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in PHASES}

    def to_dict(self) -> Dict:
        d = {"ts": self.ts, "total": self.total, **self.phases()}
        if self.vri_id is not None:
            d["vri_id"] = self.vri_id
        if self.vr:
            d["vr"] = self.vr
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrameSpan total={self.total * 1e6:.1f}us "
                f"vri={self.vri_id} "
                + " ".join(f"{k}={v * 1e6:.1f}us"
                           for k, v in self.phases().items()) + ">")


class SpanRecorder:
    """Collects frame spans into histograms + a bounded recent window.

    * ``sample_every`` — record 1-in-N frames (1 = every frame, the DES
      default; 0 disables entirely and :meth:`should_sample` costs one
      compare).  Sampling is decided at *dispatch* so every recorded
      span is complete end-to-end.
    * ``clock`` — the emitting clock (``sim.clock()`` or
      ``time.monotonic``); only used to timestamp completed spans.
    * Histograms are registered lazily per ``phase`` label under
      ``frame_latency_seconds`` with the given extra labels, so two
      recorders (two monitors) in one process stay distinct.
    """

    METRIC = "frame_latency_seconds"

    def __init__(self, registry: Optional[Registry] = None,
                 sample_every: int = 1,
                 clock: Optional[Callable[[], float]] = None,
                 backend: str = "des", keep: int = 256,
                 labels: Optional[Dict[str, str]] = None):
        if sample_every < 0:
            raise ValueError(f"sample_every cannot be negative: {sample_every}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1: {keep}")
        self.registry = registry if registry is not None else default_registry()
        self.sample_every = sample_every
        self.clock = clock
        self.backend = backend
        self.labels = dict(labels or {})
        self.labels.setdefault("backend", backend)
        self.recent: Deque[FrameSpan] = deque(maxlen=keep)
        self.recorded = 0
        self._tick = 0
        self._hists: Dict[str, object] = {}

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0

    def should_sample(self) -> bool:
        """Decide at dispatch time whether this frame carries a span."""
        if self.sample_every <= 0:
            return False
        self._tick += 1
        if self._tick >= self.sample_every:
            self._tick = 0
            return True
        return False

    def sample_index(self, n: int) -> Optional[int]:
        """Batched :meth:`should_sample`: advance the 1-in-N cursor by
        ``n`` frames and return the index of the frame to probe, or
        ``None``.  At most one probe per batch — when a batch spans
        several sampling periods the extras are skipped, which keeps the
        effective rate *at most* 1-in-N (never above)."""
        if self.sample_every <= 0 or n <= 0:
            return None
        tick = self._tick + n
        if tick < self.sample_every:
            self._tick = tick
            return None
        idx = self.sample_every - self._tick - 1
        self._tick = tick % self.sample_every
        return idx

    def _hist(self, phase: str):
        hist = self._hists.get(phase)
        if hist is None:
            hist = self.registry.histogram(
                self.METRIC,
                "sampled per-frame gateway latency by phase",
                buckets=LATENCY_BUCKETS, phase=phase, **self.labels)
            self._hists[phase] = hist
        return hist

    def record(self, span: FrameSpan) -> None:
        for phase, dur in span.phases().items():
            self._hist(phase).observe(max(0.0, dur))
        self._hist("total").observe(max(0.0, span.total))
        self.recent.append(span)
        self.recorded += 1
        if TRACER.enabled:
            TRACER.complete("frame.span", ts=span.ts - span.total,
                            dur=span.total, cat="span",
                            track=f"vri{span.vri_id}" if span.vri_id else "lvrm",
                            **{k: round(v, 9)
                               for k, v in span.phases().items()})

    def record_stamps(self, t_start: float, t_push: float, t_pop: float,
                      t_done: float, t_drained: float,
                      vri_id: Optional[int] = None, vr: str = "") -> FrameSpan:
        """Build and record a span from the five pipeline timestamps."""
        span = FrameSpan(ts=t_drained,
                         dispatch=t_push - t_start,
                         ring_wait=t_pop - t_push,
                         service=t_done - t_pop,
                         drain=t_drained - t_done,
                         vri_id=vri_id, vr=vr)
        self.record(span)
        return span

    # -- read paths ---------------------------------------------------------
    def percentiles(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"p50": ..., "p95": ..., "p99": ...}}`` so far."""
        out: Dict[str, Dict[str, float]] = {}
        for phase in PHASES + ("total",):
            hist = self._hists.get(phase)
            if hist is not None and hist.count:
                out[phase] = hist.percentiles()
        return out

    def jsonl(self) -> str:
        """Recent spans, oldest first, one JSON object per line (the
        ``/spans`` admin route)."""
        lines = [json.dumps(s.to_dict(), sort_keys=True)
                 for s in self.recent]
        return "\n".join(lines) + ("\n" if lines else "")
