"""The reference burst kernel: the pre-kernel per-frame Python path.

One :class:`~repro.net.frame.FrameView` parse and one memoized LPM call
per frame — exactly what ``_serve_arena``/``_serve_copy`` inlined before
the kernel interface existed.  It is the semantics oracle the vectorized
kernels are property-tested against, and the fallback when a table
can't be flattened (non-int next hops).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kernels.base import IFACE_DROP, BurstKernel
from repro.net.checksum import incremental_update
from repro.net.frame import FrameView

__all__ = ["ScalarKernel", "rewrite_ttl_inplace"]


def rewrite_ttl_inplace(buf, off: int, ttl: int) -> None:
    """Decrement TTL at frame offset ``off`` and patch the IPv4 header
    checksum via RFC 1624 eqn. 3.  ``ttl`` is the pre-decrement value
    (caller has already verified ``ttl > 1``)."""
    old_word = (ttl << 8) | buf[off + 23]
    new_word = old_word - 0x0100
    old_csum = (buf[off + 24] << 8) | buf[off + 25]
    new_csum = incremental_update(old_csum, old_word, new_word)
    buf[off + 22] = ttl - 1
    buf[off + 24] = new_csum >> 8
    buf[off + 25] = new_csum & 0xFF


class ScalarKernel(BurstKernel):
    kind = "scalar"

    def __init__(self, table, rewrite_ttl: bool = False) -> None:
        super().__init__(table, rewrite_ttl)
        # Memoized LPM when the table offers it, like the worker did.
        self._get = getattr(table, "get_cached", table.get)

    def route_block(self, buf, offsets: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        get = self._get
        rewrite = self.rewrite_ttl
        out = np.full(len(offsets), IFACE_DROP, dtype=np.int64)
        mv = buf if isinstance(buf, memoryview) else memoryview(buf)
        for i, (off, length) in enumerate(zip(offsets.tolist(),
                                              lengths.tolist())):
            try:
                fields = FrameView(mv[off:off + length])._parse_fields()
            except ValueError:
                continue  # not IPv4 / malformed: drop
            iface = get(fields[1])
            if iface is None:
                continue  # no route: drop
            if rewrite:
                ttl = fields[3]
                if ttl <= 1:
                    continue  # TTL expired: drop
                rewrite_ttl_inplace(mv, off, ttl)
            out[i] = iface
        return out

    def route_frames(self, frames: Sequence) -> List[Optional[int]]:
        get = self._get
        out: List[Optional[int]] = []
        for raw in frames:
            try:
                dst_ip = FrameView(raw)._parse_fields()[1]
            except ValueError:
                out.append(None)
                continue
            out.append(get(dst_ip))
        return out

    def route_frames_rewrite(self, frames: Sequence):
        if not self.rewrite_ttl:
            return self.route_frames(frames), list(frames)
        get = self._get
        ifaces: List[Optional[int]] = []
        outs: List = []
        for raw in frames:
            try:
                fields = FrameView(raw)._parse_fields()
            except ValueError:
                ifaces.append(None)
                outs.append(raw)
                continue
            iface = get(fields[1])
            ttl = fields[3]
            if iface is None or ttl <= 1:
                ifaces.append(None)
                outs.append(raw)
                continue
            buf = bytearray(raw)
            rewrite_ttl_inplace(buf, 0, ttl)
            ifaces.append(iface)
            outs.append(buf)
        return ifaces, outs
