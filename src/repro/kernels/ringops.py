"""The compiled burst kernel: a tiny C routine bound via cffi.

The whole burst loop — validate, RFC 1071 header checksum, binary-search
LPM over the flattened interval table, TTL/checksum rewrite, iface
fill — runs in one C call per burst, so per-frame cost drops to a few
machine instructions.  The C source is compiled once per process into a
scratch directory with the system compiler and bound preferentially
through ``cffi`` (ABI mode, so cffi never needs its own build step) and
otherwise through ``ctypes``.  When no compiler is present — or
``REPRO_KERNEL_NO_CC`` is set, which the tests use to exercise the
degrade path — :func:`load_ringops` reports why and the factory
substitutes the numpy kernel.

Unlike the numpy kernel there is no scalar fallback for IPv4 options:
the C loop sums whatever IHL says, matching the reference bit-for-bit.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.kernels.base import IFACE_DROP, BurstKernel
from repro.kernels.scalar import ScalarKernel
from repro.kernels.vector import VectorKernel

__all__ = ["CffiKernel", "load_ringops", "ringops_unavailable_reason"]

_C_SRC = r"""
#include <stdint.h>

static uint16_t fold(uint32_t s)
{
    while (s >> 16)
        s = (s & 0xFFFF) + (s >> 16);
    return (uint16_t)s;
}

/* Rightmost interval whose start <= ip; bounds[0] is always 0. */
static int64_t lpm(const uint64_t *bounds, const int64_t *hops,
                   int64_t n, uint64_t ip)
{
    int64_t lo = 0, hi = n;
    while (lo + 1 < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (bounds[mid] <= ip)
            lo = mid;
        else
            hi = mid;
    }
    return hops[lo];
}

void lvrm_route_burst(uint8_t *buf,
                      const uint64_t *offs, const uint64_t *lens, int64_t n,
                      const uint64_t *bounds, const int64_t *hops,
                      int64_t nbounds, int rewrite_ttl, int64_t *ifaces)
{
    for (int64_t i = 0; i < n; i++) {
        ifaces[i] = -1;
        uint64_t len = lens[i];
        if (len < 34)
            continue;
        uint8_t *h = buf + offs[i] + 14;
        if ((h[0] >> 4) != 4)
            continue;
        uint32_t ihl = (uint32_t)(h[0] & 0xF) * 4;
        if (ihl < 20 || len - 14 < ihl)
            continue;
        uint32_t sum = 0;
        for (uint32_t w = 0; w < ihl; w += 2)
            sum += ((uint32_t)h[w] << 8) | h[w + 1];
        if (fold(sum) != 0xFFFF)
            continue;
        uint64_t dst = ((uint64_t)h[16] << 24) | ((uint64_t)h[17] << 16)
                     | ((uint64_t)h[18] << 8) | h[19];
        int64_t hop = lpm(bounds, hops, nbounds, dst);
        if (hop < 0)
            continue;
        if (rewrite_ttl) {
            uint8_t ttl = h[8];
            if (ttl <= 1)
                continue;
            /* RFC 1624 eqn. 3 on the ttl|proto word. */
            uint16_t old_word = ((uint16_t)ttl << 8) | h[9];
            uint16_t new_word = (uint16_t)(old_word - 0x0100);
            uint16_t old_csum = ((uint16_t)h[10] << 8) | h[11];
            uint32_t t = (uint32_t)(uint16_t)~old_csum
                       + (uint32_t)(uint16_t)~old_word + new_word;
            uint16_t csum = (uint16_t)~fold(t);
            h[8] = (uint8_t)(ttl - 1);
            h[10] = (uint8_t)(csum >> 8);
            h[11] = (uint8_t)(csum & 0xFF);
        }
        ifaces[i] = hop;
    }
}

void lvrm_fill_word1(uint64_t *block, int64_t n, const int64_t *ifaces)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t w = block[i * 3 + 1];
        block[i * 3 + 1] = (w & 0xFFFF0000FFFFFFFFULL)
                         | (((uint64_t)ifaces[i] & 0xFFFF) << 32);
    }
}
"""

_CDEF = """
void lvrm_route_burst(uint8_t *buf,
                      const uint64_t *offs, const uint64_t *lens, int64_t n,
                      const uint64_t *bounds, const int64_t *hops,
                      int64_t nbounds, int rewrite_ttl, int64_t *ifaces);
void lvrm_fill_word1(uint64_t *block, int64_t n, const int64_t *ifaces);
"""

# Per-process singleton: (ops wrapper | None, reason when None).
_LOADED: Optional[Tuple[Optional["_RingOps"], Optional[str]]] = None


def _compile_so() -> str:
    """Compile the C source into a scratch .so; returns its path."""
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        raise OSError("no C compiler on PATH")
    workdir = tempfile.mkdtemp(prefix="lvrm-ringops-")
    src = os.path.join(workdir, "lvrm_ringops.c")
    so = os.path.join(workdir, "lvrm_ringops.so")
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(_C_SRC)
    proc = subprocess.run([cc, "-O2", "-shared", "-fPIC", "-o", so, src],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        raise OSError(f"{cc} failed: {proc.stderr.strip()[:400]}")
    return so


class _RingOps:
    """Uniform facade over the cffi and ctypes bindings of the .so."""

    def __init__(self, so_path: str) -> None:
        self.binding = "ctypes"
        self._ffi = None
        try:
            from cffi import FFI
            ffi = FFI()
            ffi.cdef(_CDEF)
            self._lib = ffi.dlopen(so_path)
            self._ffi = ffi
            self.binding = "cffi"
        except ImportError:
            import ctypes
            lib = ctypes.CDLL(so_path)
            p, i64 = ctypes.c_void_p, ctypes.c_int64
            lib.lvrm_route_burst.restype = None
            lib.lvrm_route_burst.argtypes = [p, p, p, i64, p, p, i64,
                                             ctypes.c_int, p]
            lib.lvrm_fill_word1.restype = None
            lib.lvrm_fill_word1.argtypes = [p, i64, p]
            self._lib = lib
            self._ct = ctypes

    def _u8p(self, buf):
        if self._ffi is not None:
            return self._ffi.from_buffer("uint8_t[]", buf,
                                         require_writable=True)
        ct = self._ct
        return ct.cast((ct.c_ubyte * len(buf)).from_buffer(buf),
                       ct.POINTER(ct.c_ubyte))

    def _arr(self, cdecl: str, arr: np.ndarray):
        if self._ffi is not None:
            return self._ffi.from_buffer(cdecl, arr)
        return self._ct.c_void_p(arr.ctypes.data)

    def route_burst(self, buf, offs: np.ndarray, lens: np.ndarray,
                    bounds: np.ndarray, hops: np.ndarray,
                    rewrite_ttl: bool, ifaces: np.ndarray) -> None:
        self._lib.lvrm_route_burst(
            self._u8p(buf),
            self._arr("uint64_t[]", offs), self._arr("uint64_t[]", lens),
            len(offs),
            self._arr("uint64_t[]", bounds), self._arr("int64_t[]", hops),
            len(bounds), int(rewrite_ttl), self._arr("int64_t[]", ifaces))

    def fill_word1(self, block: np.ndarray, ifaces: np.ndarray) -> None:
        self._lib.lvrm_fill_word1(self._arr("uint64_t[]", block),
                                  len(block), self._arr("int64_t[]", ifaces))


def load_ringops() -> Tuple[Optional[_RingOps], Optional[str]]:
    """The per-process compiled library, built on first use.

    Returns ``(ops, None)`` on success or ``(None, reason)`` when the
    backend can't come up.  Fork-started workers inherit the loaded
    library, so the monitor's first resolution pays the compile once
    for the whole process tree.
    """
    global _LOADED
    if _LOADED is not None:
        return _LOADED
    if os.environ.get("REPRO_KERNEL_NO_CC"):
        _LOADED = (None, "disabled via REPRO_KERNEL_NO_CC")
        return _LOADED
    try:
        ops = _RingOps(_compile_so())
    except (OSError, subprocess.TimeoutExpired) as exc:
        _LOADED = (None, str(exc))
        return _LOADED
    _LOADED = (ops, None)
    return _LOADED


def ringops_unavailable_reason() -> Optional[str]:
    """None when the compiled backend is usable, else why not."""
    return load_ringops()[1]


class CffiKernel(BurstKernel):
    """Burst kernel backed by the compiled C loop.

    Needs the flattened interval table, so tables with non-int next
    hops degrade the burst to the scalar reference per call (same
    rule as :class:`VectorKernel`).  Copy-plane bursts delegate to the
    numpy kernel — the C loop's win is the in-place arena path.
    """

    kind = "cffi"

    def __init__(self, table, rewrite_ttl: bool = False) -> None:
        super().__init__(table, rewrite_ttl)
        ops, reason = load_ringops()
        if ops is None:
            raise RuntimeError(f"ringops unavailable: {reason}")
        self._ops = ops
        self.binding = ops.binding
        self._scalar = ScalarKernel(table, rewrite_ttl)
        self._vector = VectorKernel(table, rewrite_ttl)

    def _flat(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        flat_arrays = getattr(self.table, "_flat_arrays", None)
        if flat_arrays is None:
            return None
        try:
            return flat_arrays()
        except RoutingError:
            return None

    def route_block(self, buf, offsets: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        n = len(offsets)
        ifaces = np.full(n, IFACE_DROP, dtype=np.int64)
        if n == 0:
            return ifaces
        flat = self._flat()
        if flat is None:
            return self._scalar.route_block(buf, offsets, lengths)
        bounds, hops = flat
        self._ops.route_burst(
            buf, np.ascontiguousarray(offsets, dtype=np.uint64),
            np.ascontiguousarray(lengths, dtype=np.uint64),
            bounds, hops, self.rewrite_ttl, ifaces)
        return ifaces

    def route_frames(self, frames: Sequence) -> List[Optional[int]]:
        return self._vector.route_frames(frames)

    def route_frames_rewrite(self, frames: Sequence):
        # Copy-plane frames are discrete Python buffers, not one flat
        # block, so the compiled burst loop can't help; reuse the
        # vectorized checksum path.
        return self._vector.route_frames_rewrite(frames)

    def fill_ifaces(self, block: np.ndarray, ifaces: np.ndarray) -> None:
        if block.flags["C_CONTIGUOUS"] and len(block):
            self._ops.fill_word1(block,
                                 np.ascontiguousarray(ifaces,
                                                      dtype=np.int64))
        else:
            super().fill_ifaces(block, ifaces)
