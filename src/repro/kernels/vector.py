"""The vectorized numpy burst kernel.

Parses whole descriptor blocks into ndarrays: one fancy-indexed gather
pulls every frame's 20-byte IPv4 base header into an ``(n, 10)`` word
matrix, validation (version / IHL / length / RFC 1071 header checksum)
runs as boolean masks, LPM goes through the flattened interval table
(:meth:`repro.routing.table.RouteTable.lookup_batch` — the lookups are
batched, not just the ring ops), and the optional TTL rewrite applies
RFC 1624 incremental checksums block-wise via
:func:`repro.net.checksum.incremental_update_batch`.

Frames with IPv4 options (IHL > 20, rare on purpose-built traffic) fall
back to the scalar reference row-by-row so validation semantics stay
bit-identical; tables that can't flatten (non-int next hops) degrade the
lookup to the memoized scalar path while keeping the vectorized parse.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.kernels.base import IFACE_DROP, BurstKernel
from repro.net.checksum import fold_sum_batch, incremental_update_batch
from repro.net.frame import FrameView
from repro.kernels.scalar import rewrite_ttl_inplace

__all__ = ["VectorKernel"]

#: Byte offsets (within the frame) of the fields the rewrite touches.
_TTL_OFF = 22
_CSUM_OFF = 24


class VectorKernel(BurstKernel):
    kind = "numpy"

    def __init__(self, table, rewrite_ttl: bool = False) -> None:
        super().__init__(table, rewrite_ttl)
        self._get = getattr(table, "get_cached", table.get)
        self._batch = getattr(table, "lookup_batch", None)

    # -- shared parse ------------------------------------------------------
    def _validate(self, hdr: np.ndarray, lens: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Mask-validate gathered headers.

        ``hdr`` is ``(n, 20)`` uint32 — bytes 14..33 of each frame.
        Returns ``(valid, words, dst, opt_rows)``: the rows that passed
        every check for the option-less layout, the ``(n, 10)`` header
        word matrix, per-row destination IPs, and the row indices that
        need the scalar fallback (well-formed so far but IHL > 20).
        """
        vihl = hdr[:, 0]
        ok = lens >= 34
        ok &= (vihl >> 4) == 4
        ihl = (vihl & np.uint32(0xF)) * 4
        ok &= (ihl >= 20) & (lens - 14 >= ihl)
        plain = ihl == 20
        words = (hdr[:, 0::2] << np.uint32(8)) | hdr[:, 1::2]
        csum_ok = fold_sum_batch(words.sum(axis=1,
                                           dtype=np.uint32)) == 0xFFFF
        valid = ok & plain & csum_ok
        dst = ((words[:, 8].astype(np.uint64) << np.uint64(16))
               | words[:, 9].astype(np.uint64))
        return valid, words, dst, np.flatnonzero(ok & ~plain)

    def _lookup(self, dst: np.ndarray) -> np.ndarray:
        """Batched LPM; int64 hops with IFACE_DROP for misses."""
        if self._batch is not None:
            try:
                return self._batch(dst)
            except RoutingError:
                self._batch = None  # table can't flatten: stay scalar
        get = self._get
        return np.array([IFACE_DROP if hop is None else hop
                         for hop in map(get, dst.tolist())], dtype=np.int64)

    def _lookup_objects(self, dst: np.ndarray) -> List[Optional[object]]:
        """Batched LPM keeping next hops as objects (``None`` = miss) —
        the copy-plane contract, where hops need not be ints."""
        if self._batch is not None:
            try:
                return [None if hop == IFACE_DROP else hop
                        for hop in self._batch(dst).tolist()]
            except RoutingError:
                self._batch = None  # table can't flatten: stay scalar
        get = self._get
        return [get(ip) for ip in dst.tolist()]

    # -- arena plane -------------------------------------------------------
    def route_block(self, buf, offsets: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        n = len(offsets)
        out = np.full(n, IFACE_DROP, dtype=np.int64)
        if n == 0:
            return out
        b = np.frombuffer(buf, dtype=np.uint8)
        offs = offsets.astype(np.int64)
        lens = lengths.astype(np.int64)
        # Gather every frame's bytes 14..33 in one shot; rows too short
        # to own those bytes gather clipped garbage and are masked off
        # by the length check before it can matter.
        idx = np.minimum(offs[:, None] + np.arange(14, 34, dtype=np.int64),
                         len(b) - 1)
        hdr = b[idx].astype(np.uint32)
        valid, words, dst, opt_rows = self._validate(hdr, lens)
        vidx = np.flatnonzero(valid)
        if len(vidx):
            hops = self._lookup(dst[vidx])
            if self.rewrite_ttl:
                ttls = hdr[vidx, 8]
                keep = (hops >= 0) & (ttls > 1)
                rw = vidx[keep]
                if len(rw):
                    old_words = words[rw, 4]
                    new_words = old_words - np.uint32(0x0100)
                    new_csums = incremental_update_batch(
                        words[rw, 5], old_words, new_words).astype(np.uint32)
                    b[offs[rw] + _TTL_OFF] = (ttls[keep] - 1).astype(np.uint8)
                    b[offs[rw] + _CSUM_OFF] = (new_csums >> 8).astype(np.uint8)
                    b[offs[rw] + _CSUM_OFF + 1] = (new_csums
                                                   & 0xFF).astype(np.uint8)
                    out[rw] = hops[keep]
            else:
                out[vidx] = hops
        if len(opt_rows):
            self._options_fallback(buf, offs, lens, opt_rows, out)
        return out

    def _options_fallback(self, buf, offs: np.ndarray, lens: np.ndarray,
                          rows: np.ndarray, out: np.ndarray) -> None:
        """Scalar reference path for IHL > 20 rows (IPv4 options)."""
        get = self._get
        mv = buf if isinstance(buf, memoryview) else memoryview(buf)
        for i in rows.tolist():
            off, length = int(offs[i]), int(lens[i])
            try:
                fields = FrameView(mv[off:off + length])._parse_fields()
            except ValueError:
                continue
            iface = get(fields[1])
            if iface is None:
                continue
            if self.rewrite_ttl:
                ttl = fields[3]
                if ttl <= 1:
                    continue
                rewrite_ttl_inplace(mv, off, ttl)
            out[i] = iface

    # -- copy plane --------------------------------------------------------
    def route_frames(self, frames: Sequence) -> List[Optional[int]]:
        n = len(frames)
        out: List[Optional[int]] = [None] * n
        if not n:
            return out
        lens = np.array([len(f) for f in frames], dtype=np.int64)
        rows = np.flatnonzero(lens >= 34)
        if not len(rows):
            return out
        hdr8 = np.empty((len(rows), 20), dtype=np.uint8)
        for j, i in enumerate(rows.tolist()):
            hdr8[j] = np.frombuffer(frames[i], dtype=np.uint8,
                                    count=20, offset=14)
        valid, _words, dst, opt_rows = self._validate(
            hdr8.astype(np.uint32), lens[rows])
        vidx = np.flatnonzero(valid)
        if len(vidx):
            hops = self._lookup_objects(dst[vidx])
            for j, hop in zip(rows[vidx].tolist(), hops):
                out[j] = hop
        get = self._get
        for j in rows[opt_rows].tolist():
            try:
                dst_ip = FrameView(frames[j])._parse_fields()[1]
            except ValueError:
                continue
            out[j] = get(dst_ip)
        return out

    def route_frames_rewrite(self, frames: Sequence):
        """Forwarding-mode copy plane: the same gathered parse and
        batched LPM as :meth:`route_frames`, with the TTL/checksum math
        done block-wise (:func:`incremental_update_batch` over the
        header word matrix) and only the three patched bytes written
        per surviving frame — into a private ``bytearray`` copy, since
        the inputs are borrowed ring views."""
        if not self.rewrite_ttl:
            return self.route_frames(frames), list(frames)
        n = len(frames)
        ifaces: List[Optional[int]] = [None] * n
        outs: List = list(frames)
        if not n:
            return ifaces, outs
        lens = np.array([len(f) for f in frames], dtype=np.int64)
        rows = np.flatnonzero(lens >= 34)
        if not len(rows):
            return ifaces, outs
        hdr8 = np.empty((len(rows), 20), dtype=np.uint8)
        for j, i in enumerate(rows.tolist()):
            hdr8[j] = np.frombuffer(frames[i], dtype=np.uint8,
                                    count=20, offset=14)
        valid, words, dst, opt_rows = self._validate(
            hdr8.astype(np.uint32), lens[rows])
        vidx = np.flatnonzero(valid)
        if len(vidx):
            hops = self._lookup_objects(dst[vidx])
            ttls = hdr8[vidx, 8]
            keep = np.array([hop is not None for hop in hops],
                            dtype=bool) & (ttls > 1)
            rw = vidx[keep]
            if len(rw):
                old_words = words[rw, 4]
                new_words = old_words - np.uint32(0x0100)
                new_csums = incremental_update_batch(
                    words[rw, 5], old_words, new_words).astype(np.int64)
                kept_hops = [hop for hop, k in zip(hops, keep.tolist())
                             if k]
                for j, csum, hop in zip(rows[rw].tolist(),
                                        new_csums.tolist(), kept_hops):
                    buf = bytearray(frames[j])
                    buf[_TTL_OFF] -= 1
                    buf[_CSUM_OFF] = csum >> 8
                    buf[_CSUM_OFF + 1] = csum & 0xFF
                    ifaces[j] = hop
                    outs[j] = buf
        get = self._get
        for j in rows[opt_rows].tolist():
            try:
                fields = FrameView(frames[j])._parse_fields()
            except ValueError:
                continue
            iface = get(fields[1])
            ttl = fields[3]
            if iface is None or ttl <= 1:
                continue
            buf = bytearray(frames[j])
            rewrite_ttl_inplace(buf, 0, ttl)
            ifaces[j] = iface
            outs[j] = buf
        return ifaces, outs
