"""The narrow burst-kernel interface the data planes program against.

A :class:`BurstKernel` owns the per-burst hot path between the rings:
header parse -> LPM route lookup -> (optional) TTL decrement with an
RFC 1624 incremental checksum rewrite.  The worker keeps descriptor
pop/push and refcounting; the kernel only ever sees a buffer plus
offset/length arrays (arena plane) or a list of frame buffers (copy
plane), so implementations can be swapped like ``data_plane=``.

The contract every implementation must honor bit-for-bit (the
hypothesis suite in ``tests/test_kernels.py`` pins them against the
scalar reference):

* a frame routes iff it passes the :class:`~repro.net.frame.FrameView`
  validity rules (length >= 34, IPv4 version, sane IHL, header checksum)
  AND the table holds a route for its destination AND — when
  ``rewrite_ttl`` is on — its TTL is > 1;
* with ``rewrite_ttl``, forwarded frames get TTL decremented and the
  header checksum updated via RFC 1624 eqn. 3 (never a full re-sum),
  producing byte-identical headers across kernels — in place in the
  arena buffer (``route_block``) or in a fresh private copy of the
  frame (``route_frames_rewrite``, since copy-plane inputs are
  borrowed ring views the kernel must not mutate);
* dropped frames are reported as iface ``-1`` (arena) / ``None`` (copy)
  and their payload bytes are never modified.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = ["BurstKernel", "IFACE_DROP", "WORD1_IFACE_MASK"]

#: route_block() iface value meaning "drop this frame".
IFACE_DROP = -1
#: Descriptor word 1 with the iface half-word (bits 32..47) cleared.
WORD1_IFACE_MASK = np.uint64(0xFFFF0000FFFFFFFF)


class BurstKernel:
    """Base class: the interface plus the shared numpy descriptor op.

    ``table`` is a routing table (``get_cached``/``get`` for scalar
    lookups, optionally ``lookup_batch`` for vectorized ones).
    ``rewrite_ttl`` arms the router-style header rewrite; it is off by
    default because the echo data plane forwards frames byte-identical
    to what was dispatched.
    """

    #: The selector name (``scalar`` | ``numpy`` | ``cffi``).
    kind = "abstract"

    def __init__(self, table: Any, rewrite_ttl: bool = False) -> None:
        self.table = table
        self.rewrite_ttl = rewrite_ttl
        #: Set when this kernel was substituted for an unavailable one
        #: (e.g. ``cffi`` degraded to ``numpy`` with no compiler).
        self.degraded_from: Optional[str] = None

    # -- arena plane -------------------------------------------------------
    def route_block(self, buf, offsets: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
        """Route one descriptor burst in place.

        ``buf`` is the whole arena buffer; ``offsets``/``lengths`` are
        aligned uint64 arrays naming each frame.  Returns an int64 array
        of output interfaces with :data:`IFACE_DROP` marking drops.
        With ``rewrite_ttl`` the forwarded frames' headers are rewritten
        in ``buf`` before returning.
        """
        raise NotImplementedError

    # -- copy plane --------------------------------------------------------
    def route_frames(self, frames: Sequence) -> List[Optional[int]]:
        """Route a burst of whole-frame buffers (bytes/memoryviews).

        Returns one output interface per frame, ``None`` for drops.
        Never rewrites — this is the pure-lookup path the echo data
        plane uses; forwarding mode goes through
        :meth:`route_frames_rewrite`.
        """
        raise NotImplementedError

    def route_frames_rewrite(self, frames: Sequence):
        """Route a burst of frame buffers with the forwarding rewrite.

        Returns ``(ifaces, out_frames)``: one output interface per
        frame (``None`` for drops — invalid, no route, or TTL <= 1
        when ``rewrite_ttl`` is armed), and one output buffer per
        frame.  Forwarded frames that needed the TTL/checksum rewrite
        come back as *fresh private copies* (the inputs are borrowed
        ring views and are never mutated); every other slot passes the
        input buffer through unchanged.  With ``rewrite_ttl`` off this
        degenerates to :meth:`route_frames` plus the input list.
        """
        if not self.rewrite_ttl:
            return self.route_frames(frames), list(frames)
        raise NotImplementedError

    # -- descriptor ops ----------------------------------------------------
    def fill_ifaces(self, block: np.ndarray, ifaces: np.ndarray) -> None:
        """Fill word 1's iface half-word (bits 32..47) across an
        ``(n, 3)`` descriptor block — the post-routing ring op.  The
        cffi backend overrides this with its compiled loop."""
        block[:, 1] = ((block[:, 1] & WORD1_IFACE_MASK)
                       | (ifaces.astype(np.uint64) << np.uint64(32)))

    def describe(self) -> str:
        if self.degraded_from:
            return f"{self.kind} (degraded from {self.degraded_from})"
        return self.kind
