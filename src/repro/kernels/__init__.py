"""Swappable burst kernels for the data-plane hot path.

``repro.kernels`` is selected like ``data_plane=``: the config knob
``kernel=scalar|numpy|cffi`` (CLI: ``lvrm-exp ... --kernel``, env
default: ``REPRO_KERNEL``) picks which :class:`BurstKernel` the workers
run their bursts through.

* ``scalar`` — the per-frame Python reference (default; semantics
  oracle).
* ``numpy``  — vectorized block parse + batched interval-table LPM +
  block-wise RFC 1624 rewrites.
* ``cffi``   — one compiled C call per burst (cffi ABI binding,
  ctypes fallback); **auto-degrades to numpy** when no compiler is
  present, recorded on the kernel's ``degraded_from``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.errors import KernelError
from repro.kernels.base import IFACE_DROP, BurstKernel
from repro.kernels.scalar import ScalarKernel
from repro.kernels.vector import VectorKernel

__all__ = ["KERNEL_KINDS", "BurstKernel", "ScalarKernel", "VectorKernel",
           "IFACE_DROP", "make_kernel", "resolve_kernel_kind",
           "available_kernels", "default_kernel_kind"]

#: The selectable kernel kinds, in reference-to-fastest order.
KERNEL_KINDS = ("scalar", "numpy", "cffi")


def default_kernel_kind() -> str:
    """The session default: ``REPRO_KERNEL`` when set (this is how CI's
    kernel-parity step forces ``numpy`` on both backends), else
    ``scalar``."""
    kind = os.environ.get("REPRO_KERNEL", "scalar").strip() or "scalar"
    if kind not in KERNEL_KINDS:
        raise KernelError(
            f"REPRO_KERNEL={kind!r} is not one of {KERNEL_KINDS}")
    return kind


def resolve_kernel_kind(kind: Optional[str]) -> str:
    """Validate a configured kind; ``None`` means the session default."""
    if kind is None:
        return default_kernel_kind()
    if kind not in KERNEL_KINDS:
        raise KernelError(f"unknown kernel {kind!r}; pick one of "
                          f"{KERNEL_KINDS}")
    return kind


def available_kernels() -> List[str]:
    """The kinds that run natively on this host (``cffi`` needs a C
    compiler; it still *selects* everywhere via degradation)."""
    from repro.kernels.ringops import ringops_unavailable_reason
    kinds = ["scalar", "numpy"]
    if ringops_unavailable_reason() is None:
        kinds.append("cffi")
    return kinds


def make_kernel(kind: Optional[str], table,
                rewrite_ttl: bool = False) -> BurstKernel:
    """Build the burst kernel for ``kind`` over ``table``.

    ``cffi`` degrades to the numpy kernel when the compiled backend is
    unavailable; the substitute carries ``degraded_from="cffi"`` so
    reports stay honest about what actually ran.
    """
    kind = resolve_kernel_kind(kind)
    if kind == "scalar":
        return ScalarKernel(table, rewrite_ttl)
    if kind == "numpy":
        return VectorKernel(table, rewrite_ttl)
    from repro.kernels.ringops import CffiKernel, ringops_unavailable_reason
    if ringops_unavailable_reason() is None:
        return CffiKernel(table, rewrite_ttl)
    kernel = VectorKernel(table, rewrite_ttl)
    kernel.degraded_from = "cffi"
    return kernel
