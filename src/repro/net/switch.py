"""A small store-and-forward switch.

The testbed's two 1-Gbit switches connect each sub-network's hosts to
one gateway interface.  Forwarding here is by destination IP subnet
(the hosts are statically addressed, so no flooding/learning churn):
each port is registered with the set of prefixes living behind it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.addresses import in_subnet
from repro.net.frame import Frame
from repro.net.link import Link
from repro.sim.engine import Simulator

__all__ = ["Switch"]


class Switch:
    """IP-subnet-keyed forwarding between attached links."""

    def __init__(self, sim: Simulator, name: str = "sw"):
        self.sim = sim
        self.name = name
        #: port id -> outgoing link
        self._ports: Dict[int, Link] = {}
        #: (network, prefix_len) -> port id, longest prefix wins
        self._routes: List[Tuple[int, int, int]] = []
        self.forwarded = 0
        self.unroutable = 0

    def attach(self, port: int, link: Link) -> None:
        """Register the outgoing link behind ``port``."""
        if port in self._ports:
            raise TopologyError(f"switch {self.name}: port {port} already attached")
        self._ports[port] = link

    def add_route(self, network: int, prefix_len: int, port: int) -> None:
        if port not in self._ports:
            raise TopologyError(
                f"switch {self.name}: route references unattached port {port}")
        self._routes.append((network, prefix_len, port))
        # Keep longest prefixes first so the scan finds the best match.
        self._routes.sort(key=lambda r: -r[1])

    def port_for(self, dst_ip: int) -> Optional[int]:
        for network, plen, port in self._routes:
            if in_subnet(dst_ip, network, plen):
                return port
        return None

    def receive(self, frame: Frame) -> None:
        """Endpoint protocol: forward an arriving frame."""
        port = self.port_for(frame.dst_ip)
        if port is None:
            self.unroutable += 1
            return
        self.forwarded += 1
        self._ports[port].send(frame)
