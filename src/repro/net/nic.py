"""Network interface cards with bounded receive rings.

A :class:`Nic` terminates an incoming link: arriving frames go into a
bounded rx ring (drop-tail, like a real device ring when the host cannot
keep up).  The gateway's socket adapter polls the ring; senders/receivers
attach their protocol handlers to it.  Transmission goes straight out on
the attached tx link (the capture backend charges the CPU cost).
"""

from __future__ import annotations

from typing import Optional

from repro.net.frame import Frame
from repro.net.link import Link
from repro.sim.resources import Store
from repro.sim.engine import Simulator

__all__ = ["Nic"]


class Nic:
    """One interface: an rx ring plus an outgoing link."""

    def __init__(self, sim: Simulator, name: str = "eth",
                 rx_ring_size: int = 4096):
        self.sim = sim
        self.name = name
        self.rx_ring: Store = Store(sim, capacity=rx_ring_size)
        self.tx_link: Optional[Link] = None
        self.rx_count = 0
        self.rx_dropped = 0
        self.tx_count = 0
        self.tx_dropped = 0
        #: One-shot wake callback for a polling consumer (the socket
        #: adapter sleeps when all rings are empty and re-arms this).
        self.notify = None

    # -- wire side --------------------------------------------------------------
    def receive(self, frame: Frame) -> None:
        """Endpoint protocol: frame arrives from the wire."""
        frame.in_iface = id(self)
        if self.rx_ring.try_put(frame):
            self.rx_count += 1
            if self.notify is not None:
                notify, self.notify = self.notify, None
                notify()
        else:
            self.rx_dropped += 1

    # -- host side ---------------------------------------------------------------
    def attach_tx(self, link: Link) -> None:
        self.tx_link = link

    def transmit(self, frame: Frame) -> bool:
        """Push a frame onto the wire; False when the link queue drops it."""
        if self.tx_link is None:
            raise RuntimeError(f"NIC {self.name!r} has no tx link")
        ok = self.tx_link.send(frame)
        if ok:
            self.tx_count += 1
        else:
            self.tx_dropped += 1
        return ok

    def poll(self) -> Optional[Frame]:
        """Non-blocking rx-ring pop (the socket adapter's polling path)."""
        return self.rx_ring.try_get()

    def wait_frame(self):
        """Blocking rx-ring get (event for DES consumers)."""
        return self.rx_ring.get()

    @property
    def rx_backlog(self) -> int:
        return len(self.rx_ring)
