"""End hosts (senders and receivers).

A host is deliberately thin: a protocol-stack latency on both directions
and a handler hook.  The interesting behaviour (pacing, congestion
control, measurement) lives in :mod:`repro.traffic`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.costs import CostModel
from repro.net.frame import Frame
from repro.net.link import Link
from repro.sim.engine import Simulator

__all__ = ["Host"]


class Host:
    """A sender/receiver machine with one interface."""

    def __init__(self, sim: Simulator, name: str, ip: int, costs: CostModel):
        self.sim = sim
        self.name = name
        self.ip = ip
        self.costs = costs
        self.tx_link: Optional[Link] = None
        #: Called with each frame after the receive-side stack delay.
        self.handler: Optional[Callable[[Frame], None]] = None
        self.rx_count = 0
        self.tx_count = 0

    def attach_tx(self, link: Link) -> None:
        self.tx_link = link

    # -- wire side (Endpoint protocol) ----------------------------------------
    def receive(self, frame: Frame) -> None:
        self.rx_count += 1
        if self.handler is not None:
            self.sim.call_in(self.costs.host_stack_latency,
                             lambda f=frame: self.handler(f))

    # -- application side -----------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Push a frame down the stack and onto the wire."""
        if self.tx_link is None:
            raise RuntimeError(f"host {self.name!r} has no tx link")
        self.tx_count += 1
        self.sim.call_in(self.costs.host_stack_latency,
                         lambda f=frame: self.tx_link.send(f))
