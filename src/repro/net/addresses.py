"""IPv4 and MAC address helpers.

Addresses are plain ints on the hot path (hashable, cheap to compare);
these helpers convert to and from the usual text forms at the edges.
"""

from __future__ import annotations

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "mac_to_int",
    "int_to_mac",
    "in_subnet",
    "subnet_of",
]


def ip_to_int(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit int."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit int as dotted-quad text."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 value out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit int."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address {text!r}")
    value = 0
    for part in parts:
        if len(part) != 2:
            raise ValueError(f"invalid MAC address {text!r}")
        value = (value << 8) | int(part, 16)
    return value


def int_to_mac(value: int) -> str:
    """Format a 48-bit int as colon-separated hex."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise ValueError(f"MAC value out of range: {value!r}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}"
                    for shift in (40, 32, 24, 16, 8, 0))


def in_subnet(ip: int, network: int, prefix_len: int) -> bool:
    """Whether ``ip`` falls inside ``network/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return True
    mask = ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF
    return (ip & mask) == (network & mask)


def subnet_of(ip: int, prefix_len: int) -> int:
    """Network address of ``ip``'s ``/prefix_len`` subnet."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    mask = ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF
    return ip & mask
