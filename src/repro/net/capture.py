"""Socket-adapter capture backends (thesis §3.1).

The socket adapter is LVRM's interface to "the lower level".  The three
variants the paper implements are reproduced as backends with distinct
cost/behaviour profiles:

* :class:`RawSocketCapture` — BSD raw socket.  ``recvfrom()``/``send()``
  syscalls with kernel copies: high fixed cost per frame, a per-byte copy
  surcharge, and the CPU time lands in the *system* (``sy``) class.
* :class:`PfRingCapture` — PF_RING zero-copy polling.  Much cheaper, CPU
  time in *user* (``us``) class.  Models LVRM 1.1, where PF_RING handles
  both directions (``pfring_send()``); pass ``tx_via_raw_socket=True`` to
  model LVRM 1.0, which still transmitted via the raw socket.
* :class:`MemoryCapture` — reads a preloaded trace from RAM and discards
  output; the Experiment 1c/1d device for excluding the network.

All backends expose the same small interface, so LVRM stays oblivious —
exactly the extensibility claim of the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.hardware.costs import CostModel
from repro.net.frame import Frame
from repro.net.nic import Nic
from repro.sim.engine import Simulator

__all__ = ["CaptureBackend", "RawSocketCapture", "PfRingCapture",
           "MemoryCapture"]


class CaptureBackend:
    """Common interface of the three socket-adapter variants."""

    name = "abstract"
    #: CPU-time class charged for rx / tx work (Figure 4.3 breakdown).
    rx_time_class = "us"
    tx_time_class = "us"

    def rx_cost(self, frame: Frame) -> float:
        """CPU seconds to pull one frame out of the lower level."""
        raise NotImplementedError

    def tx_cost(self, frame: Frame) -> float:
        """CPU seconds to push one frame down to the lower level."""
        raise NotImplementedError

    def poll(self) -> Optional[Frame]:
        """Non-blocking: next available frame or None."""
        raise NotImplementedError

    def transmit(self, frame: Frame) -> bool:
        """Hand a frame to the lower level; False when dropped."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True when no more input can ever arrive (trace sources)."""
        return False

    def next_available_delay(self) -> Optional[float]:
        """Seconds until the next frame could appear, if the backend
        knows (paced trace sources); None when arrival is externally
        driven (NICs)."""
        return None


class _NicBackend(CaptureBackend):
    """Shared plumbing for backends that front a set of NICs."""

    def __init__(self, sim: Simulator, nics: Sequence[Nic], costs: CostModel):
        if not nics:
            raise ValueError("need at least one NIC")
        self.sim = sim
        self.nics: List[Nic] = list(nics)
        self.costs = costs
        self._next_nic = 0

    def poll(self) -> Optional[Frame]:
        """Round-robin poll across interfaces, one ring pop per call."""
        n = len(self.nics)
        for offset in range(n):
            nic = self.nics[(self._next_nic + offset) % n]
            frame = nic.poll()
            if frame is not None:
                self._next_nic = (self._next_nic + offset + 1) % n
                return frame
        return None

    def backlog(self) -> int:
        return sum(nic.rx_backlog for nic in self.nics)

    def transmit(self, frame: Frame) -> bool:
        iface = frame.out_iface
        if iface is None or not 0 <= iface < len(self.nics):
            raise ValueError(f"frame has invalid out_iface {iface!r}")
        return self.nics[iface].transmit(frame)


class RawSocketCapture(_NicBackend):
    """BSD raw socket: non-blocking ``recvfrom()`` + ``send()``."""

    name = "raw-socket"
    rx_time_class = "sy"
    tx_time_class = "sy"

    def rx_cost(self, frame: Frame) -> float:
        return self.costs.rawsock_rx + self.costs.rawsock_per_byte * frame.size

    def tx_cost(self, frame: Frame) -> float:
        return self.costs.rawsock_tx + self.costs.rawsock_per_byte * frame.size


class PfRingCapture(_NicBackend):
    """PF_RING zero-copy capture (and, from LVRM 1.1, transmit)."""

    name = "pf-ring"
    rx_time_class = "us"

    def __init__(self, sim: Simulator, nics: Sequence[Nic], costs: CostModel,
                 tx_via_raw_socket: bool = False):
        super().__init__(sim, nics, costs)
        #: LVRM 1.0 compatibility: PF_RING < 3.7.5 had no send path, so
        #: outgoing frames went through the raw socket (thesis §3.1).
        self.tx_via_raw_socket = tx_via_raw_socket

    @property
    def tx_time_class(self) -> str:  # type: ignore[override]
        return "sy" if self.tx_via_raw_socket else "us"

    def rx_cost(self, frame: Frame) -> float:
        return self.costs.pfring_rx

    def tx_cost(self, frame: Frame) -> float:
        if self.tx_via_raw_socket:
            return self.costs.rawsock_tx + self.costs.rawsock_per_byte * frame.size
        return self.costs.pfring_tx


class MemoryCapture(CaptureBackend):
    """Main-memory trace source + discard sink (Experiments 1c/1d)."""

    name = "memory"

    def __init__(self, sim: Simulator, trace: Iterable[Frame],
                 costs: CostModel, rate_fps: Optional[float] = None):
        if rate_fps is not None and rate_fps <= 0:
            raise ValueError("rate_fps must be positive")
        self.sim = sim
        self.costs = costs
        self._trace = iter(trace)
        self._done = False
        self.read_count = 0
        self.discarded = 0
        #: Optional pacing: the trace releases at most ``rate_fps``
        #: frames per second (used by latency experiments to measure the
        #: pipeline's own latency rather than queue backlog).
        self.rate_fps = rate_fps
        self._next_release = 0.0
        #: Latency samples are taken by the LVRM pipeline via t_created,
        #: which we stamp at read time (frames "arrive" when read).

    def rx_cost(self, frame: Frame) -> float:
        return self.costs.memory_rx + self.costs.memory_rx_per_byte * frame.size

    def tx_cost(self, frame: Frame) -> float:
        return self.costs.discard_tx

    def poll(self) -> Optional[Frame]:
        if self._done:
            return None
        if self.rate_fps is not None and self.sim.now < self._next_release:
            return None
        try:
            frame = next(self._trace)
        except StopIteration:
            self._done = True
            return None
        if self.rate_fps is not None:
            self._next_release = max(self._next_release, self.sim.now) \
                + 1.0 / self.rate_fps
        frame.t_created = self.sim.now
        self.read_count += 1
        return frame

    def transmit(self, frame: Frame) -> bool:
        self.discarded += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self._done

    def next_available_delay(self) -> Optional[float]:
        if self._done:
            return None
        if self.rate_fps is None:
            return 0.0
        return max(0.0, self._next_release - self.sim.now)
