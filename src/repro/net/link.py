"""Point-to-point links with serialization, propagation, and drop-tail.

A :class:`Link` is unidirectional: frames submitted with :meth:`send`
serialize at the link bandwidth (FIFO — a frame cannot start while the
previous one is still on the wire), then propagate, then arrive at the
attached endpoint's ``receive(frame)`` method.

The transmit queue is bounded in *frames* (a device ring); when it
overflows, frames are dropped and counted — the loss signal behind the
2 % achievable-throughput criterion of Chapter 4.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.net.frame import Frame
from repro.sim.engine import Simulator

__all__ = ["Link", "Endpoint", "GIGABIT"]

#: The testbed's raw link rate: 1 Gbps.
GIGABIT = 1_000_000_000.0


class Endpoint(Protocol):
    """Anything that can terminate a link."""

    def receive(self, frame: Frame) -> None: ...


class Link:
    """One direction of a cable (plus the switch hop it crosses).

    ``latency`` lumps propagation and the store-and-forward delay of the
    path's switch; the testbed uses ~5 µs per hop, which together with
    the host stacks reproduces the paper's 70–120 µs RTT band.
    """

    def __init__(self, sim: Simulator, dst: Optional[Endpoint] = None,
                 bandwidth: float = GIGABIT, latency: float = 5e-6,
                 queue_frames: int = 1024, name: str = ""):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if queue_frames < 1:
            raise ValueError("queue must hold at least one frame")
        self.sim = sim
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.queue_frames = queue_frames
        self.name = name
        #: Absolute time the transmitter becomes free.
        self._free_at = 0.0
        #: Frames currently queued/serializing (for drop-tail accounting).
        self._in_flight = 0
        self.sent = 0
        self.dropped = 0
        self.bytes_sent = 0

    def connect(self, dst: Endpoint) -> None:
        self.dst = dst

    @property
    def utilization_backlog(self) -> float:
        """Seconds of serialization backlog currently queued."""
        return max(0.0, self._free_at - self.sim.now)

    def send(self, frame: Frame) -> bool:
        """Submit ``frame``; returns False when drop-tail discards it."""
        if self.dst is None:
            raise RuntimeError(f"link {self.name!r} is not connected")
        if self._in_flight >= self.queue_frames:
            self.dropped += 1
            return False
        ser = frame.wire_time(self.bandwidth)
        start = max(self.sim.now, self._free_at)
        self._free_at = start + ser
        arrival = self._free_at + self.latency
        self._in_flight += 1
        self.sent += 1
        self.bytes_sent += frame.size
        self.sim.call_at(arrival, lambda f=frame: self._deliver(f))
        return True

    def _deliver(self, frame: Frame) -> None:
        self._in_flight -= 1
        self.dst.receive(frame)  # type: ignore[union-attr]
