"""Byte-accurate packet codecs: Ethernet II, IPv4, UDP, TCP, ICMP.

These are real encoders/decoders with RFC 1071 checksums — used by the
pcap reader/writer, the real-process runtime backend (which moves actual
bytes through shared-memory rings), and the wire-format tests.  The DES
hot path uses :class:`repro.net.frame.Frame` instead and never packs
bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.net.checksum import checksum, fold_sum, incremental_update
from repro.net.frame import PROTO_TCP, PROTO_UDP

__all__ = [
    "EthernetHeader", "Ipv4Header", "UdpHeader", "TcpHeader", "IcmpEcho",
    "build_ethernet", "parse_ethernet",
    "build_ipv4", "parse_ipv4",
    "build_udp", "parse_udp",
    "build_tcp", "parse_tcp",
    "build_icmp_echo", "parse_icmp_echo",
    "build_udp_frame", "UdpFrameTemplate", "ETHERTYPE_IPV4",
]

ETHERTYPE_IPV4 = 0x0800

_ETH = struct.Struct("!6s6sH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_UDP = struct.Struct("!HHHH")
_TCP = struct.Struct("!HHIIBBHHH")
_ICMP_ECHO = struct.Struct("!BBHHH")


# ---------------------------------------------------------------------------
# Ethernet
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EthernetHeader:
    dst_mac: int
    src_mac: int
    ethertype: int = ETHERTYPE_IPV4


def _mac_bytes(value: int) -> bytes:
    return value.to_bytes(6, "big")


def build_ethernet(hdr: EthernetHeader, payload: bytes) -> bytes:
    return _ETH.pack(_mac_bytes(hdr.dst_mac), _mac_bytes(hdr.src_mac),
                     hdr.ethertype) + payload


def parse_ethernet(data: bytes) -> Tuple[EthernetHeader, bytes]:
    if len(data) < _ETH.size:
        raise ValueError(f"short Ethernet frame: {len(data)} bytes")
    dst, src, etype = _ETH.unpack_from(data)
    hdr = EthernetHeader(int.from_bytes(dst, "big"),
                         int.from_bytes(src, "big"), etype)
    return hdr, data[_ETH.size:]


# ---------------------------------------------------------------------------
# IPv4
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Ipv4Header:
    src_ip: int
    dst_ip: int
    proto: int
    ttl: int = 64
    ident: int = 0
    total_length: int = 0  # filled by build_ipv4 when 0
    dscp: int = 0


def build_ipv4(hdr: Ipv4Header, payload: bytes) -> bytes:
    total = hdr.total_length or (_IPV4.size + len(payload))
    head = _IPV4.pack(
        0x45, hdr.dscp, total, hdr.ident, 0, hdr.ttl, hdr.proto, 0,
        hdr.src_ip.to_bytes(4, "big"), hdr.dst_ip.to_bytes(4, "big"))
    csum = checksum(head)
    head = head[:10] + struct.pack("!H", csum) + head[12:]
    return head + payload


def parse_ipv4(data: bytes) -> Tuple[Ipv4Header, bytes]:
    if len(data) < _IPV4.size:
        raise ValueError(f"short IPv4 packet: {len(data)} bytes")
    (vihl, dscp, total, ident, _frag, ttl, proto, _csum,
     src, dst) = _IPV4.unpack_from(data)
    if vihl >> 4 != 4:
        raise ValueError(f"not IPv4 (version {vihl >> 4})")
    ihl = (vihl & 0xF) * 4
    if ihl < 20 or len(data) < ihl:
        raise ValueError(f"bad IPv4 header length {ihl}")
    if checksum(data[:ihl]) != 0:
        raise ValueError("IPv4 header checksum mismatch")
    hdr = Ipv4Header(int.from_bytes(src, "big"), int.from_bytes(dst, "big"),
                     proto, ttl=ttl, ident=ident, total_length=total,
                     dscp=dscp)
    return hdr, data[ihl:total]


def _pseudo_header(src_ip: int, dst_ip: int, proto: int, length: int) -> bytes:
    return (src_ip.to_bytes(4, "big") + dst_ip.to_bytes(4, "big")
            + struct.pack("!BBH", 0, proto, length))


# ---------------------------------------------------------------------------
# UDP
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UdpHeader:
    src_port: int
    dst_port: int


def build_udp(hdr: UdpHeader, payload: bytes, src_ip: int, dst_ip: int) -> bytes:
    length = _UDP.size + len(payload)
    head = _UDP.pack(hdr.src_port, hdr.dst_port, length, 0)
    pseudo = _pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
    csum = checksum(pseudo + head + payload)
    if csum == 0:
        csum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
    head = head[:6] + struct.pack("!H", csum)
    return head + payload


def parse_udp(data: bytes, src_ip: int, dst_ip: int,
              verify_checksum: bool = True) -> Tuple[UdpHeader, bytes]:
    if len(data) < _UDP.size:
        raise ValueError(f"short UDP datagram: {len(data)} bytes")
    sport, dport, length, csum = _UDP.unpack_from(data)
    if length < _UDP.size or length > len(data):
        raise ValueError(f"bad UDP length {length}")
    if verify_checksum and csum != 0:
        pseudo = _pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
        if checksum(pseudo + data[:length]) not in (0, 0xFFFF):
            raise ValueError("UDP checksum mismatch")
    return UdpHeader(sport, dport), data[_UDP.size:length]


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int = 0
    window: int = 65535

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


def build_tcp(hdr: TcpHeader, payload: bytes, src_ip: int, dst_ip: int) -> bytes:
    offset_flags = (5 << 4, hdr.flags)
    head = _TCP.pack(hdr.src_port, hdr.dst_port, hdr.seq & 0xFFFFFFFF,
                     hdr.ack & 0xFFFFFFFF, offset_flags[0], offset_flags[1],
                     hdr.window, 0, 0)
    pseudo = _pseudo_header(src_ip, dst_ip, PROTO_TCP, len(head) + len(payload))
    csum = checksum(pseudo + head + payload)
    head = head[:16] + struct.pack("!H", csum) + head[18:]
    return head + payload


def parse_tcp(data: bytes, src_ip: int, dst_ip: int,
              verify_checksum: bool = True) -> Tuple[TcpHeader, bytes]:
    if len(data) < _TCP.size:
        raise ValueError(f"short TCP segment: {len(data)} bytes")
    (sport, dport, seq, ack, off, flags, window,
     _csum, _urg) = _TCP.unpack_from(data)
    data_off = (off >> 4) * 4
    if data_off < 20 or data_off > len(data):
        raise ValueError(f"bad TCP data offset {data_off}")
    if verify_checksum:
        pseudo = _pseudo_header(src_ip, dst_ip, PROTO_TCP, len(data))
        if checksum(pseudo + data) != 0:
            raise ValueError("TCP checksum mismatch")
    hdr = TcpHeader(sport, dport, seq, ack, flags, window)
    return hdr, data[data_off:]


# ---------------------------------------------------------------------------
# ICMP echo (the ping of Experiment 1b)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IcmpEcho:
    is_reply: bool
    ident: int
    seq: int
    payload: bytes = field(default=b"", compare=False)


def build_icmp_echo(echo: IcmpEcho) -> bytes:
    icmp_type = 0 if echo.is_reply else 8
    head = _ICMP_ECHO.pack(icmp_type, 0, 0, echo.ident, echo.seq)
    csum = checksum(head + echo.payload)
    head = head[:2] + struct.pack("!H", csum) + head[4:]
    return head + echo.payload


def parse_icmp_echo(data: bytes) -> IcmpEcho:
    if len(data) < _ICMP_ECHO.size:
        raise ValueError(f"short ICMP message: {len(data)} bytes")
    icmp_type, code, _csum, ident, seq = _ICMP_ECHO.unpack_from(data)
    if icmp_type not in (0, 8) or code != 0:
        raise ValueError(f"not an ICMP echo (type={icmp_type} code={code})")
    if checksum(data) != 0:
        raise ValueError("ICMP checksum mismatch")
    return IcmpEcho(icmp_type == 0, ident, seq, data[_ICMP_ECHO.size:])


# ---------------------------------------------------------------------------
# Whole-frame convenience
# ---------------------------------------------------------------------------

def build_udp_frame(src_mac: int, dst_mac: int, src_ip: int, dst_ip: int,
                    src_port: int, dst_port: int, payload: bytes,
                    ttl: int = 64, ident: int = 0) -> bytes:
    """Build a complete Ethernet/IPv4/UDP frame (no FCS/preamble)."""
    udp = build_udp(UdpHeader(src_port, dst_port), payload, src_ip, dst_ip)
    ip = build_ipv4(Ipv4Header(src_ip, dst_ip, PROTO_UDP, ttl=ttl,
                               ident=ident), udp)
    return build_ethernet(EthernetHeader(dst_mac, src_mac), ip)


#: IPv4 field offsets inside a whole Ethernet frame.
_IP_IDENT_OFF = _ETH.size + 4
_IP_CSUM_OFF = _ETH.size + 10
_UDP_CSUM_OFF = _ETH.size + _IPV4.size + 6
_U16 = struct.Struct("!H")


class UdpFrameTemplate:
    """A precomputed Ethernet/IPv4/UDP frame for hot senders.

    A traffic source emitting a stream of same-flow frames rebuilds an
    identical 42-byte header stack per frame; only the IPv4 ident (and
    sometimes the payload) change.  The template packs and checksums the
    frame once; :meth:`render` then copies the prebuilt bytes, patches
    the ident, and fixes the IPv4 header checksum with the RFC 1624
    incremental update — no per-frame header packing or re-summing.

    A same-length payload swap is also O(changed bytes): the UDP
    checksum is updated from the difference of the old and new payload
    sums (the pseudo header and UDP header words are unchanged).
    Output is bit-identical to :func:`build_udp_frame`, which the codec
    tests pin.
    """

    __slots__ = ("_base", "_payload_len", "_payload_off",
                 "_ip_csum0", "_udp_raw0", "_payload_sum0")

    def __init__(self, src_mac: int, dst_mac: int, src_ip: int, dst_ip: int,
                 src_port: int, dst_port: int, payload: bytes,
                 ttl: int = 64):
        base = build_udp_frame(src_mac, dst_mac, src_ip, dst_ip,
                               src_port, dst_port, payload, ttl=ttl,
                               ident=0)
        self._base = base
        self._payload_len = len(payload)
        self._payload_off = len(base) - len(payload)
        (self._ip_csum0,) = _U16.unpack_from(base, _IP_CSUM_OFF)
        (stored,) = _U16.unpack_from(base, _UDP_CSUM_OFF)
        # RFC 768 transmits a computed zero as 0xFFFF; undo that to get
        # the raw one's-complement value incremental updates need.  (A
        # raw 0xFFFF cannot occur: the pseudo header's proto word is
        # non-zero, so the sum is never all-zeros.)
        self._udp_raw0 = 0 if stored == 0xFFFF else stored
        # One's-complement sum of the template payload words.
        self._payload_sum0 = (~checksum(payload)) & 0xFFFF

    @property
    def payload_len(self) -> int:
        return self._payload_len

    def render(self, ident: int = 0,
               payload: Optional[bytes] = None) -> bytes:
        """One frame from the template; ``payload`` must keep its length."""
        buf = bytearray(self._base)
        if ident:
            _U16.pack_into(buf, _IP_IDENT_OFF, ident)
            _U16.pack_into(buf, _IP_CSUM_OFF,
                           incremental_update(self._ip_csum0, 0, ident))
        if payload is not None:
            if len(payload) != self._payload_len:
                raise ValueError(
                    f"template payload is {self._payload_len} bytes, "
                    f"got {len(payload)} (lengths are baked into both "
                    f"checksums)")
            buf[self._payload_off:] = payload
            new_sum = (~checksum(payload)) & 0xFFFF
            if new_sum != self._payload_sum0:
                raw = (~fold_sum((~self._udp_raw0 & 0xFFFF)
                                 + (~self._payload_sum0 & 0xFFFF)
                                 + new_sum)) & 0xFFFF
                _U16.pack_into(buf, _UDP_CSUM_OFF, raw if raw else 0xFFFF)
        return bytes(buf)
