"""The Figure 4.1 experimental topology.

Two sub-networks joined by the gateway::

    S1 ─┐                      ┌─ R1
        ├─ switch A ── GW ── switch B ─┤
    S2 ─┘   (1G)     (LVRM)    (1G)   └─ R2

Senders S1/S2 live in 10.1.1.0/24 and 10.1.2.0/24; receivers R1/R2 in
10.2.1.0/24 and 10.2.2.0/24.  The gateway has two interfaces:
``IFACE_SENDER_SIDE`` (0) faces switch A, ``IFACE_RECEIVER_SIDE`` (1)
faces switch B.  Each VR is responsible for the traffic *originating*
from one sender subnet, matching the paper's classification rule
("LVRM inspects the source IP address ... and determines the VR").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.costs import CostModel, DEFAULT_COSTS
from repro.net.addresses import ip_to_int
from repro.net.host import Host
from repro.net.link import GIGABIT, Link
from repro.net.nic import Nic
from repro.net.switch import Switch
from repro.sim.engine import Simulator

__all__ = ["Testbed", "TestbedConfig",
           "IFACE_SENDER_SIDE", "IFACE_RECEIVER_SIDE"]

IFACE_SENDER_SIDE = 0
IFACE_RECEIVER_SIDE = 1

#: Host addressing (dotted quad -> who).
_ADDRESSES = {
    "s1": "10.1.1.2",
    "s2": "10.1.2.2",
    "r1": "10.2.1.2",
    "r2": "10.2.2.2",
}

#: Sender subnets, the VR classification key.
SENDER_SUBNETS = {
    "s1": ("10.1.1.0", 24),
    "s2": ("10.1.2.0", 24),
}

RECEIVER_SUBNETS = {
    "r1": ("10.2.1.0", 24),
    "r2": ("10.2.2.0", 24),
}


@dataclass(frozen=True)
class TestbedConfig:
    """Physical parameters of the testbed."""

    bandwidth: float = GIGABIT
    #: Per-hop wire+switch latency (one link traversal).
    hop_latency: float = 3e-6
    #: Device/link queue depth in frames.
    queue_frames: int = 1024
    #: Gateway NIC receive-ring depth in frames.
    gw_rx_ring: int = 4096


class Testbed:
    """Instantiated Figure 4.1 topology.

    Exposes the four hosts, the two gateway NICs (by iface index), and
    bookkeeping helpers.  The gateway's forwarding engine (LVRM or a
    baseline) is attached by the experiment, not built here.
    """

    def __init__(self, sim: Simulator, costs: CostModel = DEFAULT_COSTS,
                 config: TestbedConfig = TestbedConfig()):
        self.sim = sim
        self.costs = costs
        self.config = config

        self.hosts: Dict[str, Host] = {
            name: Host(sim, name, ip_to_int(addr), costs)
            for name, addr in _ADDRESSES.items()
        }

        self.switch_a = Switch(sim, "switch-a")
        self.switch_b = Switch(sim, "switch-b")

        self.gw_nics: List[Nic] = [
            Nic(sim, "gw-eth0", rx_ring_size=config.gw_rx_ring),
            Nic(sim, "gw-eth1", rx_ring_size=config.gw_rx_ring),
        ]

        self._wire()

    # -- construction ------------------------------------------------------------
    def _link(self, dst, name: str) -> Link:
        cfg = self.config
        return Link(self.sim, dst, bandwidth=cfg.bandwidth,
                    latency=cfg.hop_latency, queue_frames=cfg.queue_frames,
                    name=name)

    def _wire(self) -> None:
        cfg = self.config
        # Hosts -> their switch.
        for name in ("s1", "s2"):
            self.hosts[name].attach_tx(self._link(self.switch_a, f"{name}->swA"))
        for name in ("r1", "r2"):
            self.hosts[name].attach_tx(self._link(self.switch_b, f"{name}->swB"))

        # Switch A ports: 0 -> s1, 1 -> s2, 2 -> gateway eth0.
        self.switch_a.attach(0, self._link(self.hosts["s1"], "swA->s1"))
        self.switch_a.attach(1, self._link(self.hosts["s2"], "swA->s2"))
        self.switch_a.attach(2, self._link(self.gw_nics[IFACE_SENDER_SIDE],
                                           "swA->gw"))
        self.switch_a.add_route(ip_to_int("10.1.1.0"), 24, 0)
        self.switch_a.add_route(ip_to_int("10.1.2.0"), 24, 1)
        self.switch_a.add_route(0, 0, 2)  # default: towards the gateway

        # Switch B ports: 0 -> r1, 1 -> r2, 2 -> gateway eth1.
        self.switch_b.attach(0, self._link(self.hosts["r1"], "swB->r1"))
        self.switch_b.attach(1, self._link(self.hosts["r2"], "swB->r2"))
        self.switch_b.attach(2, self._link(self.gw_nics[IFACE_RECEIVER_SIDE],
                                           "swB->gw"))
        self.switch_b.add_route(ip_to_int("10.2.1.0"), 24, 0)
        self.switch_b.add_route(ip_to_int("10.2.2.0"), 24, 1)
        self.switch_b.add_route(0, 0, 2)

        # Gateway NIC tx paths back into the switches.
        self.gw_nics[IFACE_SENDER_SIDE].attach_tx(
            self._link(self.switch_a, "gw->swA"))
        self.gw_nics[IFACE_RECEIVER_SIDE].attach_tx(
            self._link(self.switch_b, "gw->swB"))

    # -- conveniences ---------------------------------------------------------------
    def host_ip(self, name: str) -> int:
        return self.hosts[name].ip

    def iface_for_dst(self, dst_ip: int) -> int:
        """Which gateway interface reaches ``dst_ip`` (static topology)."""
        # 10.1.0.0/16 is the sender side, 10.2.0.0/16 the receiver side.
        if (dst_ip >> 16) == (ip_to_int("10.1.0.0") >> 16):
            return IFACE_SENDER_SIDE
        return IFACE_RECEIVER_SIDE

    def total_gw_rx_drops(self) -> int:
        return sum(nic.rx_dropped for nic in self.gw_nics)
