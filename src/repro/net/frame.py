"""The hot-path frame object.

The paper measures frame sizes *on the wire*: the 84-byte minimum is a
64-byte Ethernet frame plus 8 bytes of preamble/SFD and the 12-byte
inter-frame gap; the 1538-byte maximum is a 1518-byte frame plus the
same 20 bytes.  ``Frame.size`` follows that convention, so serialization
time is simply ``size * 8 / bandwidth``.

Frames are slotted and header-only: the DES pushes millions of them per
experiment, so no byte payloads are materialized here (the byte-accurate
codecs live in :mod:`repro.net.packet`).
"""

from __future__ import annotations

import itertools
import struct
from typing import Any, Optional, Tuple

__all__ = ["Frame", "FrameView", "MIN_FRAME_SIZE", "MAX_FRAME_SIZE",
           "FRAME_SIZES", "PROTO_UDP", "PROTO_TCP", "PROTO_ICMP",
           "WIRE_OVERHEAD"]

#: Preamble + SFD + inter-frame gap, included in the paper's size figures.
WIRE_OVERHEAD = 20
#: Minimum wire size (64-byte frame + 20 bytes overhead), as in Chapter 4.
MIN_FRAME_SIZE = 84
#: Maximum wire size (1518-byte frame + 20 bytes overhead).
MAX_FRAME_SIZE = 1538
#: The frame-size sweep used by the throughput/latency figures.
FRAME_SIZES = (84, 128, 256, 512, 1024, 1280, 1538)

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_frame_ids = itertools.count()


class Frame:
    """A raw layer-2 frame as seen by LVRM.

    Attributes double as the paper's metadata: the VRI stamps
    ``out_iface`` when it decides to forward; ``t_created`` feeds latency
    metrics; ``payload`` optionally carries a protocol object (e.g. a TCP
    segment) for the traffic models.
    """

    __slots__ = ("uid", "size", "_src_ip", "_dst_ip", "_proto",
                 "_src_port", "_dst_port", "t_created", "out_iface",
                 "payload", "in_iface", "ttl", "_five_tuple", "span")

    def __init__(self, size: int, src_ip: int, dst_ip: int,
                 proto: int = PROTO_UDP, src_port: int = 0, dst_port: int = 0,
                 t_created: float = 0.0, payload: Any = None, ttl: int = 64):
        if not MIN_FRAME_SIZE <= size <= MAX_FRAME_SIZE:
            raise ValueError(
                f"frame size {size} outside [{MIN_FRAME_SIZE}, {MAX_FRAME_SIZE}]")
        self.uid = next(_frame_ids)
        self.size = size
        self._src_ip = src_ip
        self._dst_ip = dst_ip
        self._proto = proto
        self._src_port = src_port
        self._dst_port = dst_port
        self.t_created = t_created
        self.out_iface: Optional[int] = None
        self.in_iface: Optional[int] = None
        self.payload = payload
        self.ttl = ttl
        self._five_tuple: Optional[Tuple[int, int, int, int, int]] = None
        #: Latency-span stamp tuple, set by the LVRM pipeline on sampled
        #: frames only: grows (t_start, t_push, t_pop, t_done) as the
        #: frame moves, closed into a FrameSpan at transmit.
        self.span: Optional[Tuple[float, ...]] = None

    # The five flow-key fields are properties over private slots so an
    # in-place header rewrite (NAT-style mutation, which borrowed-view
    # frames make more likely) invalidates the cached five-tuple instead
    # of leaving a stale flow key behind.
    @property
    def src_ip(self) -> int:
        return self._src_ip

    @src_ip.setter
    def src_ip(self, value: int) -> None:
        self._src_ip = value
        self._five_tuple = None

    @property
    def dst_ip(self) -> int:
        return self._dst_ip

    @dst_ip.setter
    def dst_ip(self, value: int) -> None:
        self._dst_ip = value
        self._five_tuple = None

    @property
    def proto(self) -> int:
        return self._proto

    @proto.setter
    def proto(self, value: int) -> None:
        self._proto = value
        self._five_tuple = None

    @property
    def src_port(self) -> int:
        return self._src_port

    @src_port.setter
    def src_port(self, value: int) -> None:
        self._src_port = value
        self._five_tuple = None

    @property
    def dst_port(self) -> int:
        return self._dst_port

    @dst_port.setter
    def dst_port(self, value: int) -> None:
        self._dst_port = value
        self._five_tuple = None

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """The flow key used by flow-based load balancing (thesis §3.3).

        Built lazily and cached; invalidated whenever one of its five
        fields is reassigned, so the key can never go stale under
        in-place header mutation.
        """
        key = self._five_tuple
        if key is None:
            key = self._five_tuple = (self._src_ip, self._dst_ip,
                                      self._proto, self._src_port,
                                      self._dst_port)
        return key

    @staticmethod
    def view(data) -> "FrameView":
        """Lazily decoded frame over a borrowed buffer (bytes or a
        ring/arena ``memoryview``) — the zero-copy sibling of the DES
        :class:`Frame`.  Nothing is parsed until a header field is
        read."""
        return FrameView(data)

    def wire_time(self, bandwidth_bps: float) -> float:
        """Serialization delay of this frame on a link."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return self.size * 8.0 / bandwidth_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(#{self.uid} {self.size}B proto={self.proto} "
                f"{self.src_ip:#x}:{self.src_port}->{self.dst_ip:#x}:{self.dst_port})")


#: One unpack covers the whole 20-byte option-less IPv4 header as the
#: sixteen-bit words its checksum is defined over.
_IP_WORDS = struct.Struct("!10H")
_L4_PORTS = struct.Struct("!HH")


class FrameView:
    """A wire-format frame decoded lazily over a borrowed buffer.

    The zero-copy data plane hands workers ``memoryview``s into ring
    slots or arena chunks.  ``FrameView`` wraps one without copying:
    header fields (``src_ip``, ``dst_ip``, ``proto``, ports,
    ``five_tuple``) decode on first access with a single-pass header
    read that enforces the same validity rules as the eager codecs in
    :mod:`repro.net.packet` — version, header length, and the IPv4
    header checksum — and raises ``ValueError`` on the same malformed
    inputs.  Unlike the eager path it materializes no header objects:
    the checksum sum already touches every header word, so the five
    routed fields fall out of the same pass.  ``ethernet`` / ``ipv4``
    still build the full header objects through the real codecs on
    demand.

    The borrowed buffer dies when its ring slot or arena chunk is
    released; :meth:`tobytes` / :meth:`retain` is the copy-on-write
    escape hatch for callers that keep a frame past that point.
    """

    __slots__ = ("raw", "_eth", "_ip", "_fields", "_l4_ports")

    def __init__(self, data):
        self.raw = data
        self._eth = None
        self._ip = None
        #: (src_ip, dst_ip, proto, ttl, ihl) once the header is decoded.
        self._fields: Optional[Tuple[int, int, int, int, int]] = None
        self._l4_ports: Optional[Tuple[int, int]] = None

    def _parse(self):
        if self._ip is None:
            from repro.net.packet import parse_ethernet, parse_ipv4
            self._eth, ip_payload = parse_ethernet(self.raw)
            self._ip, _rest = parse_ipv4(ip_payload)
        return self._ip

    def _parse_fields(self) -> Tuple[int, int, int, int, int]:
        """Validate the IPv4 header and extract the routed fields in one
        pass.  Mirrors ``parse_ethernet`` + ``parse_ipv4`` exactly: same
        checks, same ``ValueError`` conditions — minus their header
        objects and slices."""
        fields = self._fields
        if fields is None:
            raw = self.raw
            size = len(raw)
            if size < 34:
                if size < 14:
                    raise ValueError(f"short Ethernet frame: {size} bytes")
                raise ValueError(f"short IPv4 packet: {size - 14} bytes")
            words = _IP_WORDS.unpack_from(raw, 14)
            vihl = words[0] >> 8
            if vihl >> 4 != 4:
                raise ValueError(f"not IPv4 (version {vihl >> 4})")
            ihl = (vihl & 0xF) * 4
            if ihl < 20 or size - 14 < ihl:
                raise ValueError(f"bad IPv4 header length {ihl}")
            if ihl == 20:
                total = sum(words)
            else:
                total = sum(struct.unpack_from(f"!{ihl // 2}H", raw, 14))
            total = (total & 0xFFFF) + (total >> 16)
            total = (total & 0xFFFF) + (total >> 16)
            if total != 0xFFFF:
                raise ValueError("IPv4 header checksum mismatch")
            fields = self._fields = (
                (words[6] << 16) | words[7], (words[8] << 16) | words[9],
                words[4] & 0xFF, words[4] >> 8, ihl)
        return fields

    def _ports(self) -> Tuple[int, int]:
        ports = self._l4_ports
        if ports is None:
            _src, _dst, proto, _ttl, ihl = self._parse_fields()
            if proto in (PROTO_UDP, PROTO_TCP):
                # Both layouts open with source and destination port;
                # L4 starts after the Ethernet header (14 B) plus the
                # (already validated) IPv4 header.
                ports = _L4_PORTS.unpack_from(self.raw, 14 + ihl)
            else:
                ports = (0, 0)
            self._l4_ports = ports
        return ports

    def __len__(self) -> int:
        return len(self.raw)

    @property
    def ethernet(self):
        self._parse()
        return self._eth

    @property
    def ipv4(self):
        return self._parse()

    @property
    def src_ip(self) -> int:
        return self._parse_fields()[0]

    @property
    def dst_ip(self) -> int:
        return self._parse_fields()[1]

    @property
    def proto(self) -> int:
        return self._parse_fields()[2]

    @property
    def ttl(self) -> int:
        return self._parse_fields()[3]

    @property
    def src_port(self) -> int:
        return self._ports()[0]

    @property
    def dst_port(self) -> int:
        return self._ports()[1]

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        src_ip, dst_ip, proto, _ttl, _ihl = self._parse_fields()
        sport, dport = self._ports()
        return (src_ip, dst_ip, proto, sport, dport)

    def tobytes(self) -> bytes:
        """Copy the frame out of the borrowed buffer (the copy-on-write
        escape hatch: call before the ring slot / arena chunk is
        released if the bytes must outlive it)."""
        return bytes(self.raw)

    def retain(self) -> "FrameView":
        """Detach from the borrowed buffer by copying it; returns self
        for chaining.  After this the view is safe to hold forever."""
        self.raw = bytes(self.raw)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "parsed" if self._ip is not None else "unparsed"
        return f"FrameView({len(self.raw)}B {state})"
