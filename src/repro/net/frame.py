"""The hot-path frame object.

The paper measures frame sizes *on the wire*: the 84-byte minimum is a
64-byte Ethernet frame plus 8 bytes of preamble/SFD and the 12-byte
inter-frame gap; the 1538-byte maximum is a 1518-byte frame plus the
same 20 bytes.  ``Frame.size`` follows that convention, so serialization
time is simply ``size * 8 / bandwidth``.

Frames are slotted and header-only: the DES pushes millions of them per
experiment, so no byte payloads are materialized here (the byte-accurate
codecs live in :mod:`repro.net.packet`).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

__all__ = ["Frame", "MIN_FRAME_SIZE", "MAX_FRAME_SIZE", "FRAME_SIZES",
           "PROTO_UDP", "PROTO_TCP", "PROTO_ICMP", "WIRE_OVERHEAD"]

#: Preamble + SFD + inter-frame gap, included in the paper's size figures.
WIRE_OVERHEAD = 20
#: Minimum wire size (64-byte frame + 20 bytes overhead), as in Chapter 4.
MIN_FRAME_SIZE = 84
#: Maximum wire size (1518-byte frame + 20 bytes overhead).
MAX_FRAME_SIZE = 1538
#: The frame-size sweep used by the throughput/latency figures.
FRAME_SIZES = (84, 128, 256, 512, 1024, 1280, 1538)

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_frame_ids = itertools.count()


class Frame:
    """A raw layer-2 frame as seen by LVRM.

    Attributes double as the paper's metadata: the VRI stamps
    ``out_iface`` when it decides to forward; ``t_created`` feeds latency
    metrics; ``payload`` optionally carries a protocol object (e.g. a TCP
    segment) for the traffic models.
    """

    __slots__ = ("uid", "size", "src_ip", "dst_ip", "proto",
                 "src_port", "dst_port", "t_created", "out_iface",
                 "payload", "in_iface", "ttl", "_five_tuple", "span")

    def __init__(self, size: int, src_ip: int, dst_ip: int,
                 proto: int = PROTO_UDP, src_port: int = 0, dst_port: int = 0,
                 t_created: float = 0.0, payload: Any = None, ttl: int = 64):
        if not MIN_FRAME_SIZE <= size <= MAX_FRAME_SIZE:
            raise ValueError(
                f"frame size {size} outside [{MIN_FRAME_SIZE}, {MAX_FRAME_SIZE}]")
        self.uid = next(_frame_ids)
        self.size = size
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.t_created = t_created
        self.out_iface: Optional[int] = None
        self.in_iface: Optional[int] = None
        self.payload = payload
        self.ttl = ttl
        self._five_tuple: Optional[Tuple[int, int, int, int, int]] = None
        #: Latency-span stamp tuple, set by the LVRM pipeline on sampled
        #: frames only: grows (t_start, t_push, t_pop, t_done) as the
        #: frame moves, closed into a FrameSpan at transmit.
        self.span: Optional[Tuple[float, ...]] = None

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """The flow key used by flow-based load balancing (thesis §3.3).

        Built lazily and cached: the five fields are fixed at
        construction (nothing past ``__init__`` rewrites them), and
        flow-based balancing reads the key on every frame.
        """
        key = self._five_tuple
        if key is None:
            key = self._five_tuple = (self.src_ip, self.dst_ip, self.proto,
                                      self.src_port, self.dst_port)
        return key

    def wire_time(self, bandwidth_bps: float) -> float:
        """Serialization delay of this frame on a link."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return self.size * 8.0 / bandwidth_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(#{self.uid} {self.size}B proto={self.proto} "
                f"{self.src_ip:#x}:{self.src_port}->{self.dst_ip:#x}:{self.dst_port})")
