"""RFC 1071 internet checksum.

Two implementations: a straightforward scalar reference and a vectorized
numpy version used by the pcap tooling when checksumming batches of
packets.  The property tests pin them against each other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["checksum", "checksum_reference", "checksum_batch",
           "incremental_update", "incremental_update_batch", "fold_sum",
           "fold_sum_batch", "verify"]


def checksum_reference(data: bytes) -> int:
    """Scalar RFC 1071 one's-complement sum (the textbook loop)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum(data: bytes) -> int:
    """Vectorized RFC 1071 checksum of one buffer."""
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return 0xFFFF
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def fold_sum(total: int) -> int:
    """Fold a sum of 16-bit words into 16 bits (end-around carry)."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def incremental_update(old_csum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 (eqn. 3): checksum after one 16-bit word changes.

    ``HC' = ~(~HC + ~m + m')`` — the O(1) update routers use when they
    rewrite a header field (TTL, ident, NAT'd address) instead of
    re-summing the whole header.
    """
    total = (~old_csum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    return (~fold_sum(total)) & 0xFFFF


def fold_sum_batch(totals: np.ndarray) -> np.ndarray:
    """Vectorized :func:`fold_sum`: end-around-carry fold per element.

    Accepts any unsigned integer array; two folds suffice for sums of
    up to 2^16 sixteen-bit words, a third pass catches the carry the
    second can produce.  Returns uint32 (values all fit in 16 bits).
    """
    t = np.asarray(totals, dtype=np.uint32)
    for _ in range(3):
        t = (t & np.uint32(0xFFFF)) + (t >> np.uint32(16))
    return t


def incremental_update_batch(old_csums: np.ndarray,
                             old_words: np.ndarray,
                             new_words: np.ndarray) -> np.ndarray:
    """Vectorized RFC 1624 (eqn. 3) over aligned arrays of header words.

    Element i computes ``HC' = ~(~HC + ~m + m')`` for checksum
    ``old_csums[i]`` where word ``old_words[i]`` becomes
    ``new_words[i]``.  Returns a uint16 array, bit-identical to mapping
    :func:`incremental_update` over the rows.
    """
    hc = np.asarray(old_csums, dtype=np.uint32)
    m = np.asarray(old_words, dtype=np.uint32)
    mp = np.asarray(new_words, dtype=np.uint32)
    total = ((~hc & np.uint32(0xFFFF)) + (~m & np.uint32(0xFFFF))
             + (mp & np.uint32(0xFFFF)))
    return (~fold_sum_batch(total) & np.uint32(0xFFFF)).astype(np.uint16)


def checksum_batch(buffers: list) -> np.ndarray:
    """Checksum many buffers; returns a uint16 array."""
    return np.array([checksum(b) for b in buffers], dtype=np.uint16)


def verify(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return True
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
