"""RFC 1071 internet checksum.

Two implementations: a straightforward scalar reference and a vectorized
numpy version used by the pcap tooling when checksumming batches of
packets.  The property tests pin them against each other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["checksum", "checksum_reference", "checksum_batch",
           "incremental_update", "fold_sum", "verify"]


def checksum_reference(data: bytes) -> int:
    """Scalar RFC 1071 one's-complement sum (the textbook loop)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum(data: bytes) -> int:
    """Vectorized RFC 1071 checksum of one buffer."""
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return 0xFFFF
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def fold_sum(total: int) -> int:
    """Fold a sum of 16-bit words into 16 bits (end-around carry)."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def incremental_update(old_csum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 (eqn. 3): checksum after one 16-bit word changes.

    ``HC' = ~(~HC + ~m + m')`` — the O(1) update routers use when they
    rewrite a header field (TTL, ident, NAT'd address) instead of
    re-summing the whole header.
    """
    total = (~old_csum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    return (~fold_sum(total)) & 0xFFFF


def checksum_batch(buffers: list) -> np.ndarray:
    """Checksum many buffers; returns a uint16 array."""
    return np.array([checksum(b) for b in buffers], dtype=np.uint16)


def verify(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return True
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
