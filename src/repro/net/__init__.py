"""Network substrate.

Models everything outside the gateway CPU: addresses, frames, 1-Gbps
links with serialization/propagation delay, learning switches, NICs with
bounded rx rings, and the capture backends (raw socket / PF_RING / main
memory) behind the LVRM socket adapter.

Two frame representations coexist deliberately:

* :class:`~repro.net.frame.Frame` — a slotted, header-fields-only object
  used on the DES hot path (millions per run; no byte packing).
* :mod:`repro.net.packet` — real byte-level codecs (Ethernet/IPv4/UDP/
  TCP/ICMP with RFC 1071 checksums) used by the pcap tooling, the
  real-process runtime backend, and the tests that pin wire formats.
"""

from repro.net.addresses import ip_to_int, int_to_ip, mac_to_int, int_to_mac
from repro.net.frame import Frame, MIN_FRAME_SIZE, MAX_FRAME_SIZE, FRAME_SIZES
from repro.net.link import Link
from repro.net.switch import Switch
from repro.net.nic import Nic
from repro.net.capture import (
    CaptureBackend,
    RawSocketCapture,
    PfRingCapture,
    MemoryCapture,
)
from repro.net.testbed import Testbed, TestbedConfig

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "mac_to_int",
    "int_to_mac",
    "Frame",
    "MIN_FRAME_SIZE",
    "MAX_FRAME_SIZE",
    "FRAME_SIZES",
    "Link",
    "Switch",
    "Nic",
    "CaptureBackend",
    "RawSocketCapture",
    "PfRingCapture",
    "MemoryCapture",
    "Testbed",
    "TestbedConfig",
]
