"""The shared overload verdict for sharded dispatch.

With N dispatcher shards each running its own AIMD
:class:`~repro.overload.controller.AdmissionController`, admission
would otherwise fragment: a shard whose own rings happen to be shallow
keeps admitting bulk while its sibling sheds — and the aggregate
monitor behaviour stops matching the single-dispatcher twin's "shed
when the gateway is loaded" contract.

:class:`SharedVerdict` is the cheap fix: a tiny shared-memory table of
per-shard, per-class admission strides (the controller's 1/2**16
fixed-point rates).  Each controller *publishes* its own post-AIMD
stride vector after every update, then *applies* the element-wise
minimum across all shards as a local clamp — without re-publishing the
clamped values, so a shard's row always carries its own opinion and the
verdict relaxes as soon as the tight shard itself relaxes (no ratchet).
The effect: the most-loaded shard's verdict governs everyone, which is
exactly the single-controller semantic, reached with one 64-bit-word
row write and one small ``min`` reduction per update interval — nothing
on the per-frame path.

A restarting shard's stale row is reset to fully-open by the dispatch
plane before the replacement process spawns, so a crash can never pin
the cluster shut.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.errors import ConfigError

__all__ = ["SharedVerdict", "verdict_bytes_needed"]

_MAGIC = int.from_bytes(b"LVRMVRDT", "little")
_HEADER = struct.Struct("<QHH")
#: The controller's fixed-point scale (rates quantized to 1/2**16).
_SCALE = 1 << 16


def verdict_bytes_needed(n_shards: int, n_classes: int) -> int:
    """Shared-memory bytes for a verdict table of this shape."""
    return _HEADER.size + 4 * n_shards * n_classes


class SharedVerdict:
    """Per-shard per-class admission strides with element-min semantics."""

    def __init__(self, buffer, n_shards: int, n_classes: int,
                 create: bool = True):
        if n_shards < 1 or n_classes < 1:
            raise ConfigError("verdict table needs >=1 shard and class")
        need = verdict_bytes_needed(n_shards, n_classes)
        if len(buffer) < need:
            raise ConfigError(
                f"buffer of {len(buffer)} bytes < required {need}")
        self._buf = memoryview(buffer)
        self.n_shards = n_shards
        self.n_classes = n_classes
        self._table = np.frombuffer(
            self._buf, dtype=np.uint32, count=n_shards * n_classes,
            offset=_HEADER.size).reshape(n_shards, n_classes)
        if create:
            _HEADER.pack_into(self._buf, 0, _MAGIC, n_shards, n_classes)
            self._table[:] = _SCALE
        else:
            magic, shards, classes = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ConfigError("buffer does not contain a SharedVerdict")
            if (shards, classes) != (n_shards, n_classes):
                raise ConfigError(
                    f"verdict geometry mismatch: buffer has ({shards}, "
                    f"{classes}), caller expects ({n_shards}, {n_classes})")

    @classmethod
    def attach(cls, buffer) -> "SharedVerdict":
        """Attach to an existing table, reading geometry from its header."""
        magic, shards, classes = _HEADER.unpack_from(memoryview(buffer), 0)
        if magic != _MAGIC:
            raise ConfigError("buffer does not contain a SharedVerdict")
        return cls(buffer, int(shards), int(classes), create=False)

    def publish(self, shard: int, strides: List[int]) -> None:
        """Write one shard's post-AIMD stride vector (its own opinion)."""
        if len(strides) != self.n_classes:
            raise ConfigError(
                f"stride vector of {len(strides)} != {self.n_classes} "
                "classes")
        self._table[shard, :] = strides

    def reset(self, shard: int) -> None:
        """Reopen one shard's row (dispatch plane, before a restart)."""
        self._table[shard, :] = _SCALE

    def effective(self) -> List[int]:
        """Element-wise minimum stride across all shards."""
        return self._table.min(axis=0).tolist()

    def rates(self) -> List[float]:
        """The effective verdict as admission rates (admin views)."""
        return [s / _SCALE for s in self.effective()]

    def close(self) -> None:
        self._table = None
        self._buf.release()
