"""Load-aware admission control: AIMD sampling rates per priority class.

The paper's LVRM is load-*aware* only up to saturation — it spreads
flows across VRIs but has no answer once offered load exceeds aggregate
capacity.  This module is that answer: a shedding/admission stage that
sits in front of monitor dispatch in both backends and degrades the
monitor *gracefully* (shed bulk first, keep control-plane traffic
flowing, hold high-class tail latency) instead of letting every class
collapse together behind full rings.

Mechanism
---------
Each priority class ``c`` (see :mod:`repro.overload.classify`) carries
an admission rate ``rate[c] ∈ [floor, 1.0]``.  Admission is a
*deterministic stride sampler* — a per-class credit accumulator::

    acc += rate            # scalar decision
    if acc >= 1.0: acc -= 1.0; admit
    else: shed

and the block form used by the vectorized kernels path admits the first
``k = floor(acc + n*rate)`` frames of the class within the burst, which
is arithmetically identical to running the scalar sampler ``n`` times.
Rates are quantized to 1/2**16 and the accumulator is an integer, so
the scalar and block forms agree *bit-exactly* (repeated float addition
would drift from ``n * rate``).  No RNG is involved: the DES stays
bit-reproducible and a rate of 0.25 means *exactly* every fourth frame,
not every fourth in expectation.

Rates move by AIMD toward a target band of data-ring occupancy.  The
controller samples ``occupancy_fn()`` (max ring fill across VRIs,
normalised to [0, 1]) at most every ``update_interval`` seconds,
smooths it with the paper's EWMA (:func:`repro.core.estimation.
ewma_update`), and then:

* occupancy above ``band_hi`` (or an active SLO breach) → multiplicative
  **decrease**, shaped by the policy (below);
* occupancy below ``band_lo`` and no SLO pressure → additive
  **increase** of every class by ``increase`` per update, capped at 1.

Policies (``--overload-policy``):

``none``
    No controller is installed at all — the legacy dispatch path, zero
    overhead, ``/overload`` serves ``{}``.
``tail-drop``
    Class-blind: every class is decreased together.  Models "shed the
    newest arrivals whoever they are" — better than nothing (the queue
    stays short) but control traffic starves with the bulk.
``priority-shed``
    Strictly bottom-up: each decrease step tightens only the lowest
    class not yet at ``floor``; class 0 (control) is never shed.  This
    is the policy that holds high-class p99 flat through overload.
``adaptive-sample``
    Load-aware sampling in the spirit of adaptive multicore samplers:
    every class except control is decreased each step, but the factor
    softens with priority (``decrease ** (c / (n-1))`` for class c), so
    lower classes shed faster yet *every* class keeps a deterministic
    trickle for visibility.

An SLO breach of kind ``p99_latency_ms`` reported via :meth:`
AdmissionController.note_slo` tightens immediately on the breach edge
and pins decrease-pressure for as long as the breach persists, so the
watchdog's latency signal shortens queues *before* the supervisor sees
drop-rate breaches.

Accounting
----------
Per class, ``offered == admitted + shed`` — always, including across
faults (the conservation test in ``tests/test_overload.py``).  The shed
counters are deliberately **not** in the SLO watchdog's
``DEFAULT_DROP_NAMES``: intentional shedding is the cure, not the
disease, and must not itself trip the no-drops SLO.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.estimation import ewma_update
from repro.errors import ConfigError
from repro.obs.registry import Registry, default_registry
from repro.overload.classify import PriorityClassifier

__all__ = ["POLICIES", "OverloadConfig", "AdmissionController",
           "build_controller"]

#: Recognised overload policies; ``none`` means "install nothing".
POLICIES = ("none", "tail-drop", "priority-shed", "adaptive-sample")

#: Fixed-point scale for admission rates: rates are quantized to
#: 1/SCALE so the scalar and block samplers agree bit-exactly.
_SCALE = 1 << 16


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs for the admission controller (docs/OVERLOAD.md)."""

    policy: str = "none"
    #: Target occupancy band for the AIMD loop: relax below ``band_lo``,
    #: tighten above ``band_hi``.  Occupancy is max data-ring fill
    #: across VRIs, in [0, 1].
    band_lo: float = 0.25
    band_hi: float = 0.75
    #: Additive step per update when relaxing (rate units / update).
    increase: float = 0.05
    #: Multiplicative factor per update when tightening.
    decrease: float = 0.5
    #: Admission-rate floor: no class is ever sampled below this, so
    #: even fully-shed classes keep a deterministic trickle.
    floor: float = 0.05
    #: Minimum seconds between controller updates (rate limiting; the
    #: hot path only pays a float compare between updates).
    update_interval: float = 0.05
    #: EWMA weight for occupancy smoothing (paper's estimator form;
    #: 0 disables smoothing).
    ewma_weight: float = 2.0
    #: Classifier spec (see ``PriorityClassifier.from_spec``).
    classifier: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown overload policy {self.policy!r} "
                f"(choose from {POLICIES})")
        if not 0.0 <= self.band_lo <= self.band_hi <= 1.0:
            raise ConfigError(
                f"need 0 <= band_lo <= band_hi <= 1, got "
                f"[{self.band_lo}, {self.band_hi}]")
        if not 0.0 < self.increase <= 1.0:
            raise ConfigError(f"increase must be in (0, 1], "
                              f"got {self.increase}")
        if not 0.0 < self.decrease < 1.0:
            raise ConfigError(f"decrease must be in (0, 1), "
                              f"got {self.decrease}")
        if not 0.0 <= self.floor < 1.0:
            raise ConfigError(f"floor must be in [0, 1), got {self.floor}")
        if self.update_interval <= 0.0:
            raise ConfigError("update_interval must be > 0")
        if self.ewma_weight < 0.0:
            raise ConfigError("ewma_weight must be >= 0")
        if self.classifier is not None and not isinstance(
                self.classifier, dict):
            raise ConfigError("classifier spec must be a mapping")

    @classmethod
    def from_spec(cls, spec: Union[None, str, dict,
                                   "OverloadConfig"]) -> "OverloadConfig":
        """Accept a config dict, a JSON string, or a ready config."""
        if spec is None:
            return cls()
        if isinstance(spec, OverloadConfig):
            return spec
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"bad overload spec JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ConfigError(
                f"overload spec must be a mapping, got {type(spec).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise ConfigError(
                f"unknown overload config keys {sorted(unknown)} "
                f"(known: {sorted(known)})")
        return cls(**spec)


class AdmissionController:
    """Per-class deterministic stride sampler + AIMD rate governor.

    One instance fronts one LVRM's dispatch path (DES or runtime); it
    owns the per-class ``overload_*`` instruments in the registry under
    the LVRM's scope labels.
    """

    def __init__(self, config: OverloadConfig,
                 registry: Optional[Registry] = None,
                 scope_labels: Optional[Dict[str, str]] = None,
                 verdict=None, verdict_slot: int = 0):
        if config.policy == "none":
            raise ConfigError(
                "policy 'none' means no controller; use build_controller()")
        self.config = config
        #: Optional :class:`repro.overload.verdict.SharedVerdict` row this
        #: controller publishes to and clamps from (sharded dispatch).
        self._verdict = verdict
        self._verdict_slot = verdict_slot
        self.classifier = PriorityClassifier.from_spec(config.classifier)
        n = self.classifier.n_classes
        self.rates: List[float] = [1.0] * n
        self._stride: List[int] = [_SCALE] * n
        self._floor_stride = int(round(config.floor * _SCALE))
        self._acc: List[int] = [0] * n
        self.offered: List[int] = [0] * n
        self.admitted: List[int] = [0] * n
        self.shed: List[int] = [0] * n
        self._occ_avg: Optional[float] = None
        self._last_update: Optional[float] = None
        self._slo_pressure = False
        self.updates = 0
        self.tightens = 0
        self.relaxes = 0

        reg = default_registry() if registry is None else registry
        labels = dict(scope_labels or {})
        self._c_admitted = []
        self._c_shed = []
        self._g_rate = []
        for name in self.classifier.classes:
            self._c_admitted.append(reg.counter(
                "overload_admitted_total",
                "Frames admitted past the overload stage, per class.",
                cls=name, **labels))
            self._c_shed.append(reg.counter(
                "overload_shed_total",
                "Frames shed by the overload stage, per class.",
                cls=name, **labels))
            self._g_rate.append(reg.gauge(
                "overload_admission_rate",
                "Current per-class admission rate in [floor, 1].",
                cls=name, **labels))
        for g in self._g_rate:
            g.set(1.0)
        self._g_occ = reg.gauge(
            "overload_occupancy",
            "EWMA-smoothed max data-ring occupancy seen by the "
            "admission controller.", **labels)

    # ------------------------------------------------------------------
    # admission (hot path)
    # ------------------------------------------------------------------

    def set_rate(self, cls: int, rate: float) -> None:
        """Pin one class's admission rate (quantized to 1/2**16)."""
        stride = min(_SCALE, max(0, int(round(rate * _SCALE))))
        self._stride[cls] = stride
        self.rates[cls] = stride / _SCALE
        self._g_rate[cls].set(self.rates[cls])

    def decide(self, cls: int) -> bool:
        """Scalar stride decision for one frame of class ``cls``."""
        self.offered[cls] += 1
        stride = self._stride[cls]
        if stride >= _SCALE:
            self.admitted[cls] += 1
            self._c_admitted[cls].inc()
            return True
        acc = self._acc[cls] + stride
        if acc >= _SCALE:
            self._acc[cls] = acc - _SCALE
            self.admitted[cls] += 1
            self._c_admitted[cls].inc()
            return True
        self._acc[cls] = acc
        self.shed[cls] += 1
        self._c_shed[cls].inc()
        return False

    def admit_frame(self, frame) -> bool:
        """Classify + decide for a DES ``Frame`` (or FrameView)."""
        return self.decide(self.classifier.classify_frame(frame))

    def admit_raw(self, buf) -> bool:
        """Classify + decide for raw wire bytes (runtime scalar path)."""
        return self.decide(self.classifier.classify_raw(buf))

    def admit_block(self, frames: Sequence,
                    classify: Optional[Callable] = None) -> list:
        """Block admission for the vectorized burst path.

        Returns the admitted sub-list in original order.  Per class the
        first ``k`` frames are admitted where ``k`` advances the same
        credit accumulator the scalar path uses — so a burst of ``n``
        decides identically to ``n`` scalar calls, and the kernels see
        one contiguous (smaller) block to vectorise over.
        """
        if not frames:
            return []
        classify = classify or self.classifier.classify_raw
        classes = [classify(f) for f in frames]
        n_cls = len(self.rates)
        counts = [0] * n_cls
        for c in classes:
            counts[c] += 1
        quota = [0] * n_cls
        for c in range(n_cls):
            m = counts[c]
            if not m:
                continue
            self.offered[c] += m
            stride = self._stride[c]
            if stride >= _SCALE:
                quota[c] = m
            else:
                total = self._acc[c] + m * stride
                k = min(m, total // _SCALE)
                self._acc[c] = total - k * _SCALE
                quota[c] = k
            self._c_admitted[c].inc(quota[c])
            self._c_shed[c].inc(m - quota[c])
            self.admitted[c] += quota[c]
            self.shed[c] += m - quota[c]
        if all(quota[c] == counts[c] for c in range(n_cls)):
            return list(frames)
        taken = [0] * n_cls
        admitted = []
        for f, c in zip(frames, classes):
            if taken[c] < quota[c]:
                taken[c] += 1
                admitted.append(f)
        return admitted

    # ------------------------------------------------------------------
    # rate control
    # ------------------------------------------------------------------

    def maybe_update(self, now: float,
                     occupancy_fn: Callable[[], float]) -> bool:
        """Run one AIMD step if ``update_interval`` has elapsed.

        Returns True when a step ran (tests and the admin view use the
        update count; callers ignore the result on the hot path).
        """
        last = self._last_update
        if last is not None and now - last < self.config.update_interval:
            return False
        self._last_update = now
        occ = min(1.0, max(0.0, float(occupancy_fn())))
        if self.config.ewma_weight > 0.0:
            self._occ_avg = ewma_update(self._occ_avg, occ,
                                        self.config.ewma_weight)
        else:
            self._occ_avg = occ
        self._g_occ.set(self._occ_avg)
        self.updates += 1
        if self._occ_avg > self.config.band_hi or self._slo_pressure:
            self._tighten()
        elif self._occ_avg < self.config.band_lo:
            self._relax()
        if self._verdict is not None:
            # Publish this shard's own post-AIMD opinion *first*, then
            # clamp the live rates to the cluster-wide element-min.  The
            # published row never carries the clamp, so the verdict
            # relaxes the moment the tightest shard itself relaxes.
            self._verdict.publish(self._verdict_slot, list(self._stride))
            for c, stride in enumerate(self._verdict.effective()):
                if stride < self._stride[c]:
                    self.set_rate(c, stride / _SCALE)
        return True

    def note_slo(self, breaching: bool) -> None:
        """Couple the SLO watchdog's p99 verdict into the AIMD loop.

        On the breach *edge* the controller tightens immediately (no
        waiting for the next occupancy sample); while the breach
        persists every update tightens regardless of occupancy.
        """
        if breaching and not self._slo_pressure:
            self._tighten()
        self._slo_pressure = breaching

    def _tighten(self) -> None:
        cfg = self.config
        policy = cfg.policy
        rates = self.rates
        n = len(rates)
        if policy == "tail-drop":
            for c in range(n):
                self.set_rate(c, max(cfg.floor, rates[c] * cfg.decrease))
        elif policy == "priority-shed":
            # Bottom-up: hit the lowest class not yet at the floor;
            # class 0 (control) is never shed.  Compare quantized
            # strides so a class at the (quantized) floor counts as
            # fully shed and the step moves on to the next class up.
            for c in range(n - 1, 0, -1):
                if self._stride[c] > self._floor_stride:
                    self.set_rate(c, max(cfg.floor,
                                         rates[c] * cfg.decrease))
                    break
        else:  # adaptive-sample
            denom = max(1, n - 1)
            for c in range(1, n):
                factor = cfg.decrease ** (c / denom)
                self.set_rate(c, max(cfg.floor, rates[c] * factor))
        self.tightens += 1

    def _relax(self) -> None:
        cfg = self.config
        changed = False
        for c, rate in enumerate(self.rates):
            if rate < 1.0:
                self.set_rate(c, min(1.0, rate + cfg.increase))
                changed = True
        if changed:
            self.relaxes += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def state(self) -> Dict:
        """JSON-ready snapshot for the ``/overload`` admin route and
        scenario reports."""
        names = self.classifier.classes
        return {
            "policy": self.config.policy,
            "band": [self.config.band_lo, self.config.band_hi],
            "floor": self.config.floor,
            **({"verdict": [round(r, 6) for r in self._verdict.rates()]}
               if self._verdict is not None else {}),
            "occupancy": (round(self._occ_avg, 6)
                          if self._occ_avg is not None else None),
            "slo_pressure": self._slo_pressure,
            "updates": self.updates,
            "tightens": self.tightens,
            "relaxes": self.relaxes,
            "classes": {
                names[c]: {
                    "rate": round(self.rates[c], 6),
                    "offered": self.offered[c],
                    "admitted": self.admitted[c],
                    "shed": self.shed[c],
                } for c in range(len(names))
            },
        }


def build_controller(policy: str,
                     opts: Union[None, str, dict, OverloadConfig] = None,
                     registry: Optional[Registry] = None,
                     scope_labels: Optional[Dict[str, str]] = None,
                     verdict=None, verdict_slot: int = 0,
                     ) -> Optional[AdmissionController]:
    """Factory used by both backends: ``None`` for policy ``none``
    (legacy dispatch path, zero overhead), a controller otherwise.
    ``opts`` overrides config fields; its ``policy`` key, if present,
    must agree with ``policy``."""
    if policy not in POLICIES:
        raise ConfigError(
            f"unknown overload policy {policy!r} (choose from {POLICIES})")
    if policy == "none":
        return None
    cfg = OverloadConfig.from_spec(opts)
    if cfg.policy != policy:
        if cfg.policy != "none":
            raise ConfigError(
                f"overload_opts policy {cfg.policy!r} conflicts with "
                f"requested policy {policy!r}")
        cfg = OverloadConfig.from_spec({**(cfg.__dict__), "policy": policy})
    return AdmissionController(cfg, registry=registry,
                               scope_labels=scope_labels,
                               verdict=verdict, verdict_slot=verdict_slot)
