"""Overload control: priority classification + load-aware admission.

See docs/OVERLOAD.md for the operator playbook.  The package fronts
monitor dispatch in both backends:

* :mod:`repro.overload.classify` — 5-tuple → priority class;
* :mod:`repro.overload.controller` — per-class deterministic stride
  sampling with AIMD rates driven by ring occupancy and the SLO
  watchdog;
* :mod:`repro.overload.verdict` — the shared-memory element-min stride
  table that couples per-shard AIMD controllers under the sharded
  dispatch plane (:mod:`repro.dispatch`).
"""

from repro.overload.classify import (ClassRule, DEFAULT_CLASSES,
                                     DEFAULT_RULES, PriorityClassifier)
from repro.overload.controller import (AdmissionController, OverloadConfig,
                                       POLICIES, build_controller)
from repro.overload.verdict import SharedVerdict, verdict_bytes_needed

__all__ = [
    "SharedVerdict",
    "verdict_bytes_needed",
    "ClassRule",
    "DEFAULT_CLASSES",
    "DEFAULT_RULES",
    "PriorityClassifier",
    "AdmissionController",
    "OverloadConfig",
    "POLICIES",
    "build_controller",
]
