"""Overload control: priority classification + load-aware admission.

See docs/OVERLOAD.md for the operator playbook.  The package fronts
monitor dispatch in both backends:

* :mod:`repro.overload.classify` — 5-tuple → priority class;
* :mod:`repro.overload.controller` — per-class deterministic stride
  sampling with AIMD rates driven by ring occupancy and the SLO
  watchdog.
"""

from repro.overload.classify import (ClassRule, DEFAULT_CLASSES,
                                     DEFAULT_RULES, PriorityClassifier)
from repro.overload.controller import (AdmissionController, OverloadConfig,
                                       POLICIES, build_controller)

__all__ = [
    "ClassRule",
    "DEFAULT_CLASSES",
    "DEFAULT_RULES",
    "PriorityClassifier",
    "AdmissionController",
    "OverloadConfig",
    "POLICIES",
    "build_controller",
]
