"""Priority classification of frames from the 5-tuple.

The overload stage (docs/OVERLOAD.md) needs to know *which* traffic to
shed first.  Following Charon-style per-class dispatch, frames map to a
small ordered set of priority classes — index 0 is the most important —
via first-match rules over ``(proto, src_port, dst_port)``.  The default
taxonomy:

========== ===== ====================================================
class      index matches
========== ===== ====================================================
control    0     ICMP, or either port <= 1023 (BGP, DNS, SSH, LDP —
                 the traffic that keeps the network itself alive)
interactive 1    either port in 1024..9999 (registered / RPC band)
bulk       2     everything else (ephemeral high ports, unknown)
========== ===== ====================================================

Rules are configurable (``PriorityClassifier.from_spec``) so operators
can pin their own taxonomy; classification itself is a pure function of
the header fields and therefore identical between the DES and runtime
backends — the DES classifies :class:`~repro.net.frame.Frame` metadata,
the runtime classifies raw wire bytes without a full header validation
pass (:meth:`PriorityClassifier.classify_raw`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.net.frame import PROTO_ICMP

__all__ = ["ClassRule", "PriorityClassifier", "DEFAULT_CLASSES",
           "DEFAULT_RULES"]

#: Default priority-class names, most important first.
DEFAULT_CLASSES = ("control", "interactive", "bulk")


@dataclass(frozen=True)
class ClassRule:
    """One first-match classification rule.

    ``None`` fields are wildcards; port ranges are inclusive and match
    when *either* the source or the destination port falls inside.
    """

    cls: int
    proto: Optional[int] = None
    port_lo: Optional[int] = None
    port_hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cls < 0:
            raise ConfigError(f"negative class index {self.cls}")
        if (self.port_lo is None) != (self.port_hi is None):
            raise ConfigError(
                "port range needs both port_lo and port_hi")
        if self.port_lo is not None and self.port_lo > self.port_hi:
            raise ConfigError(
                f"empty port range [{self.port_lo}, {self.port_hi}]")

    def matches(self, proto: int, src_port: int, dst_port: int) -> bool:
        if self.proto is not None and proto != self.proto:
            return False
        if self.port_lo is not None:
            lo, hi = self.port_lo, self.port_hi
            return lo <= src_port <= hi or lo <= dst_port <= hi
        return True


#: The default taxonomy (module docstring).  Bulk is the fall-through.
DEFAULT_RULES = (
    ClassRule(cls=0, proto=PROTO_ICMP),
    ClassRule(cls=0, port_lo=0, port_hi=1023),
    ClassRule(cls=1, port_lo=1024, port_hi=9999),
)

_IP_PROTO = struct.Struct("!B")
_L4_PORTS = struct.Struct("!HH")


class PriorityClassifier:
    """First-match 5-tuple → priority-class mapping.

    Pure and stateless: two backends holding the same rules classify
    identically, which is what makes the DES overload drills a faithful
    model of the runtime's admission behaviour.
    """

    def __init__(self, classes: Sequence[str] = DEFAULT_CLASSES,
                 rules: Sequence[ClassRule] = DEFAULT_RULES,
                 default_cls: Optional[int] = None):
        self.classes: Tuple[str, ...] = tuple(classes)
        if len(self.classes) < 2:
            raise ConfigError("need at least two priority classes")
        if len(set(self.classes)) != len(self.classes):
            raise ConfigError(f"duplicate class names in {self.classes}")
        self.rules: Tuple[ClassRule, ...] = tuple(rules)
        for rule in self.rules:
            if rule.cls >= len(self.classes):
                raise ConfigError(
                    f"rule targets class {rule.cls} but only "
                    f"{len(self.classes)} classes are defined")
        #: Unmatched traffic lands in the lowest class by default.
        self.default_cls = (len(self.classes) - 1 if default_cls is None
                            else default_cls)
        if not 0 <= self.default_cls < len(self.classes):
            raise ConfigError(
                f"default class {self.default_cls} out of range")

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def classify(self, proto: int, src_port: int, dst_port: int) -> int:
        """The core mapping; both frame flavors funnel through here."""
        for rule in self.rules:
            if rule.matches(proto, src_port, dst_port):
                return rule.cls
        return self.default_cls

    def classify_frame(self, frame) -> int:
        """Classify a DES :class:`~repro.net.frame.Frame` (or any object
        with ``proto``/``src_port``/``dst_port``).  Malformed frames —
        a :class:`~repro.net.frame.FrameView` over garbage bytes raises
        ``ValueError`` — classify as the default (lowest) class: junk
        never outranks real traffic."""
        try:
            return self.classify(frame.proto, frame.src_port,
                                 frame.dst_port)
        except ValueError:
            return self.default_cls

    def classify_raw(self, buf) -> int:
        """Classify raw wire bytes with a minimal header peek.

        The runtime dispatch path cannot afford the full validating
        parse (that is the worker kernels' job); admission only needs
        proto + ports, read straight from their fixed offsets.  Frames
        too short or non-IPv4 classify as the default class.
        """
        if len(buf) < 34:
            return self.default_cls
        try:
            vihl = buf[14]
            if vihl >> 4 != 4:
                return self.default_cls
            ihl = (vihl & 0xF) * 4
            proto = buf[23]
            if proto in (6, 17) and len(buf) >= 14 + ihl + 4:
                sport, dport = _L4_PORTS.unpack_from(buf, 14 + ihl)
            else:
                sport = dport = 0
        except (IndexError, struct.error, TypeError):
            return self.default_cls
        return self.classify(proto, sport, dport)

    def to_dict(self) -> Dict:
        return {
            "classes": list(self.classes),
            "default": self.classes[self.default_cls],
            "rules": [
                {k: v for k, v in (
                    ("class", self.classes[r.cls]),
                    ("proto", r.proto),
                    ("port_lo", r.port_lo),
                    ("port_hi", r.port_hi)) if v is not None}
                for r in self.rules],
        }

    @classmethod
    def from_spec(cls, spec: Optional[Dict]) -> "PriorityClassifier":
        """Build from a config mapping (the ``classifier`` section of
        ``examples/configs/overload_priority.json``)::

            {"classes": ["control", "interactive", "bulk"],
             "rules": [{"class": "control", "proto": 1},
                       {"class": "control", "port_lo": 0, "port_hi": 1023}],
             "default": "bulk"}

        ``None`` / ``{}`` yields the default classifier.
        """
        if not spec:
            return cls()
        classes = tuple(spec.get("classes", DEFAULT_CLASSES))
        index = {name: i for i, name in enumerate(classes)}
        rules: List[ClassRule] = []
        for item in spec.get("rules", ()):
            if "class" not in item:
                raise ConfigError(f"classifier rule missing 'class': {item}")
            name = item["class"]
            if name not in index:
                raise ConfigError(
                    f"classifier rule targets unknown class {name!r} "
                    f"(have {list(classes)})")
            unknown = set(item) - {"class", "proto", "port_lo", "port_hi"}
            if unknown:
                raise ConfigError(
                    f"classifier rule {item}: unknown keys {sorted(unknown)}")
            rules.append(ClassRule(cls=index[name],
                                   proto=item.get("proto"),
                                   port_lo=item.get("port_lo"),
                                   port_hi=item.get("port_hi")))
        if not rules and "rules" not in spec:
            rules = list(DEFAULT_RULES)
            for rule in rules:
                if rule.cls >= len(classes):
                    raise ConfigError(
                        "custom classes need explicit rules (default "
                        f"rules target {len(DEFAULT_CLASSES)} classes)")
        default_name = spec.get("default")
        default_cls = None
        if default_name is not None:
            if default_name not in index:
                raise ConfigError(
                    f"unknown default class {default_name!r}")
            default_cls = index[default_name]
        return cls(classes=classes, rules=rules, default_cls=default_cls)
