"""Canned federation scenarios: the failover drill and the scaling sweep.

Two deterministic DES scenarios drive the acceptance story of the
federation subsystem:

* :func:`run_des_failover_scenario` — a 2-member HA pair under steady
  traffic; a scheduled ``kill_instance`` fault murders the active
  mid-run.  The report is a complete ledger: failover time against the
  2-supervision-period budget, the blackout drop count, replication and
  route-survival evidence (no re-learning), and throughput before vs
  after promotion.  Every field is a pure function of the config — two
  runs must produce bit-identical reports (tests/test_determinism.py).
* :func:`run_des_scaling` — N shards, no pairs, with the capture cost
  inflated so the monitor process itself is the bottleneck (the paper's
  single-process ceiling).  Aggregate forwarded throughput then scales
  with the shard count, which is the whole argument for federating.

Both are driven by :class:`FederationConfig`, the JSON shape of
``examples/configs/federation_pair.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import LvrmConfig, VrSpec
from repro.errors import ConfigError
from repro.faults.schedule import CLUSTER_KINDS, FaultSchedule, FaultSpec
from repro.net.addresses import ip_to_int
from repro.net.frame import PROTO_UDP, Frame
from repro.routing.prefix import Prefix
from repro.routing.sync import RouteUpdate
from repro.sim.engine import Simulator
from repro.cluster.federation import DesFederation

__all__ = ["FederationConfig", "load_federation_config",
           "run_des_failover_scenario", "run_des_scaling"]

#: Frame size used by both scenarios (the paper's minimal-ish UDP).
_FRAME_BYTES = 84


@dataclass(frozen=True)
class FederationConfig:
    """The JSON-loadable shape of a canned federation scenario."""

    description: str = ""
    #: VRIs per member for the pair's single VR.
    n_vris: int = 2
    rate_fps: float = 8000.0
    #: Distinct 5-tuples cycled through (flow pins to replicate).
    n_flows: int = 16
    duration: float = 2.5
    seed: int = 2011
    supervision_period: float = 0.05
    #: Control-plane routes announced early and replicated to the
    #: standby; all must survive promotion without re-learning.
    routes: int = 12
    faults: FaultSchedule = field(default_factory=FaultSchedule)

    def __post_init__(self) -> None:
        if self.n_vris < 1:
            raise ConfigError("n_vris must be >= 1")
        if self.rate_fps <= 0 or self.duration <= 0:
            raise ConfigError("rate_fps and duration must be positive")
        if self.n_flows < 1:
            raise ConfigError("n_flows must be >= 1")
        if self.supervision_period <= 0:
            raise ConfigError("supervision_period must be positive")
        if self.routes < 0:
            raise ConfigError("routes cannot be negative")
        for spec in self.faults:
            if spec.kind not in CLUSTER_KINDS:
                raise ConfigError(
                    f"federation scenarios take cluster faults only "
                    f"({CLUSTER_KINDS}), got {spec.kind!r}")
            if not 0 < spec.t < self.duration:
                raise ConfigError(
                    f"fault at t={spec.t} outside (0, {self.duration})")

    @classmethod
    def from_dict(cls, data: Dict) -> "FederationConfig":
        if not isinstance(data, dict):
            raise ConfigError("federation config must be a JSON object")
        allowed = {"description", "n_vris", "rate_fps", "n_flows",
                   "duration", "seed", "supervision_period", "routes",
                   "faults"}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigError(
                f"unknown federation config keys: {sorted(unknown)}")
        entries = data.get("faults", [])
        if not isinstance(entries, list):
            raise ConfigError("'faults' must be a list")
        faults = FaultSchedule(
            tuple(FaultSpec.from_dict(e) for e in entries),
            description=str(data.get("description", "")))
        kwargs = {k: data[k] for k in allowed - {"faults"} if k in data}
        return cls(faults=faults, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FederationConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid federation config JSON: {exc}") \
                from exc
        return cls.from_dict(data)


def load_federation_config(path: str) -> FederationConfig:
    with open(path, "r", encoding="utf-8") as fh:
        return FederationConfig.from_json(fh.read())


def _flow_frame(flow: int, subnet: int = 1) -> Frame:
    """One deterministic frame of flow ``flow`` (src 10.subnet/16,
    dst 10.2/16 — forwarded by ``DEFAULT_MAP_LINES`` unchanged)."""
    return Frame(_FRAME_BYTES,
                 ip_to_int(f"10.{subnet}.{1 + flow % 250}.2"),
                 ip_to_int(f"10.2.{1 + flow % 250}.2"),
                 PROTO_UDP, 1000 + flow, 2000 + flow)


# -- the kill-the-active drill ------------------------------------------------
def run_des_failover_scenario(cfg: FederationConfig) -> Dict:
    """Run the canned HA-pair scenario; returns the deterministic report."""
    sim = Simulator()
    lvrm_config = LvrmConfig(supervise=True, flow_based=True,
                             balancer="jsq",
                             supervision_period=cfg.supervision_period)
    fed = DesFederation(sim, ["m0", "m1"], pairs={"m0": "m1"},
                        config=lvrm_config)
    fed.add_vr(VrSpec(name="gw", subnets=(Prefix.parse("10.1.0.0/16"),)),
               n_vris=cfg.n_vris, home="m0")

    updates = [RouteUpdate(Prefix.parse(f"10.{60 + i}.0.0/16"),
                           iface=1, metric=2)
               for i in range(cfg.routes)]
    if updates:
        # Announced early, so replication has shipped them well before
        # any scheduled kill.
        sim.call_at(min(0.1, cfg.duration / 10),
                    lambda: fed.announce_routes("m0", updates))

    for spec in cfg.faults:
        sim.call_at(spec.t,
                    lambda s=spec: fed.kill_instance(s.instance, s.kind),
                    urgent=True)
    kill_at = min((f.t for f in cfg.faults), default=None)

    def traffic():
        gap = 1.0 / cfg.rate_fps
        for i in range(int(cfg.rate_fps * cfg.duration)):
            fed.dispatch(_flow_frame(i % cfg.n_flows))
            yield sim.sleep(gap)

    fed.start()
    sim.process(traffic())

    # Throughput sampled over equal windows just before the kill and at
    # the end of the run (post-promotion steady state).
    samples: Dict[str, int] = {}

    def snap(tag: str) -> None:
        samples[tag] = sum(m.lvrm.stats.forwarded
                           for m in fed.members.values())

    window = min(0.4, cfg.duration / 4)
    if kill_at is not None:
        sim.call_at(max(0.0, kill_at - window), lambda: snap("pre_lo"))
        sim.call_at(kill_at, lambda: snap("pre_hi"))
        sim.call_at(cfg.duration - window, lambda: snap("post_lo"))
    sim.run(until=cfg.duration)
    snap("end")

    members = {}
    for mid, member in fed.members.items():
        members[mid] = {
            "role": member.role,
            "alive": member.lvrm.instance_alive,
            "pushed": member.capture.pushed,
            "captured": member.lvrm.stats.captured,
            "forwarded": member.lvrm.stats.forwarded,
            "backlog": member.backlog(),
            "death_epoch": member.lvrm.death_epoch,
        }

    report: Dict = {
        "backend": "des",
        "config": {"n_vris": cfg.n_vris, "rate_fps": cfg.rate_fps,
                   "n_flows": cfg.n_flows, "duration": cfg.duration,
                   "seed": cfg.seed,
                   "supervision_period": cfg.supervision_period,
                   "routes": cfg.routes,
                   "faults": [f.to_dict() for f in cfg.faults]},
        "members": members,
        "dispatched": fed.dispatched,
        "drop_no_vr": fed.drop_no_vr,
        "bus": dict(fed.bus),
        "bus_bytes": fed.bus_bytes,
        "events_processed": sim.events_processed,
        "director": fed.director.view(sim.now),
    }

    active = fed.members["m0"]
    standby = fed.members["m1"]
    report["replication"] = {
        "deltas": active.delta.deltas,
        "bytes": active.delta.bytes,
        "applied": standby.replica.applied,
        "stale": standby.replica.stale,
        "replica_seq": standby.replica.seq,
        "replica_pins": len(standby.replica.pins),
    }
    promote = fed.promote_report
    report["routes"] = {
        "announced": fed.routes_announced,
        "present_on_standby_at_promote": (
            promote["routes_present_at_promote"] if promote else 0),
        "relearned_after_promotion": fed.route_relearns,
    }

    ok = True
    if kill_at is not None:
        failover = (fed.director.failovers[0]
                    if fed.director.failovers else None)
        if failover is None or promote is None:
            ok = False
        else:
            within = failover["failover_seconds"] <= fed.failover_budget
            # The blackout ledger: frames pushed at the dead active
            # that it never forwarded (in-flight + pushed-while-dead).
            dead = fed.members[failover["member"]]
            report["failover"] = {
                **failover,
                "budget_seconds": fed.failover_budget,
                "within_budget": within,
                "promote": promote,
                "lost_in_blackout": dead.capture.pushed
                                    - dead.lvrm.stats.forwarded,
            }
            pre = (samples["pre_hi"] - samples["pre_lo"]) / window
            post = (samples["end"] - samples["post_lo"]) / window
            recovered = post / pre if pre > 0 else 0.0
            report["throughput"] = {
                "pre_kill_kfps": round(pre / 1e3, 3),
                "post_failover_kfps": round(post / 1e3, 3),
                "recovered_ratio": round(recovered, 4),
            }
            ok = (within and recovered >= 0.9
                  and promote["replica_seq"] > 0
                  and fed.route_relearns == 0
                  and (cfg.routes == 0
                       or promote["routes_present_at_promote"]
                       == cfg.routes)
                  and not report["director"].get("slo_breaching"))
    report["ok"] = ok
    return report


# -- the sharding scaling sweep -----------------------------------------------
def run_des_scaling(n_shards: int, duration: float = 0.6,
                    rate_fps: float = 40_000.0, n_vrs: int = 8,
                    n_vris: int = 1, rx_scale: float = 1800.0) -> Dict:
    """Aggregate throughput of ``n_shards`` monitors over ``n_vrs`` VRs.

    ``rx_scale`` inflates per-frame capture cost so each monitor
    process saturates (offered load must exceed per-member capacity);
    the federation's win is then shard-count-linear.  VRs are spread by
    the load-aware rebalance over equal estimated loads.
    """
    if n_shards < 1:
        raise ConfigError("n_shards must be >= 1")
    sim = Simulator()
    fed = DesFederation(
        sim, [f"m{i}" for i in range(n_shards)],
        config=LvrmConfig(supervise=False, balancer="jsq"),
        rx_scale=rx_scale)
    specs = {f"vr{k}": VrSpec(name=f"vr{k}",
                              subnets=(Prefix.parse(f"10.{10 + k}.0.0/16"),))
             for k in range(n_vrs)}
    assignment = fed.place_vrs(specs, {name: 1.0 for name in specs},
                               n_vris=n_vris)

    def traffic():
        gap = 1.0 / rate_fps
        for i in range(int(rate_fps * duration)):
            k = i % n_vrs
            fed.dispatch(_flow_frame(i % 4, subnet=10 + k))
            yield sim.sleep(gap)

    fed.start()
    sim.process(traffic())
    sim.run(until=duration)

    forwarded = sum(m.lvrm.stats.forwarded for m in fed.members.values())
    shares = {mid: sum(1 for h in assignment.values() if h == mid)
              for mid in fed.members}
    return {
        "n_shards": n_shards,
        "offered_kfps": round(rate_fps / 1e3, 3),
        "forwarded": forwarded,
        "throughput_kfps": round(forwarded / duration / 1e3, 3),
        "vr_shares": shares,
        "rebalance_moves": fed.placement.last_moves,
        "dispatched": fed.dispatched,
        "events_processed": sim.events_processed,
    }
