"""Active → standby state replication (the ``KIND_REPLICATE`` payload).

An HA pair's active monitor continuously ships two kinds of state to
its standby, so promotion needs no re-learning:

* **flow pins** — the flow-table entries of the PR 2 flow-based
  balancer, as (five-tuple, VRI *slot*) pairs.  Slots are spawn-order
  indices, not raw vri_ids: ids are process-global counters and mean
  nothing on another instance, while "the k-th VRI of this VR" does.
* **route updates** — :class:`repro.routing.sync.RouteUpdate` batches,
  reusing the existing route-sync wire codec verbatim.

Deltas are sequence-numbered.  Delivery is at-least-once over a control
ring, so :class:`ReplicaState` applies idempotently: a delta whose seq
is not newer than the last applied one is counted stale and dropped.
:class:`DeltaSource` is the active side — it remembers what the standby
already has and emits only changes.

Wire format (the ``KIND_REPLICATE`` payload)::

    <IH>                      seq, n_pins
    n_pins * <IIBHHH>         src_ip, dst_ip, proto, sport, dport, slot
    route batch               repro.routing.sync.encode_updates bytes
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.routing.sync import RouteUpdate, decode_updates, encode_updates

__all__ = ["encode_delta", "decode_delta", "DeltaSource", "ReplicaState"]

#: A flow key as the flow table stores it (Frame.five_tuple).
FlowKey = Tuple[int, int, int, int, int]

_DELTA_HEADER = struct.Struct("<IH")        # seq, n_pins
_PIN = struct.Struct("<IIBHHH")             # five-tuple + slot


def encode_delta(seq: int, pins: Iterable[Tuple[FlowKey, int]],
                 routes: Iterable[RouteUpdate]) -> bytes:
    pins = list(pins)
    if len(pins) > 0xFFFF:
        raise ValueError(f"delta carries {len(pins)} pins (max 65535)")
    parts = [_DELTA_HEADER.pack(seq & 0xFFFFFFFF, len(pins))]
    for (src_ip, dst_ip, proto, sport, dport), slot in pins:
        parts.append(_PIN.pack(src_ip, dst_ip, proto, sport, dport, slot))
    parts.append(encode_updates(list(routes)))
    return b"".join(parts)


def decode_delta(payload: bytes
                 ) -> Tuple[int, List[Tuple[FlowKey, int]],
                            List[RouteUpdate]]:
    if len(payload) < _DELTA_HEADER.size:
        raise ValueError(f"short replication delta: {len(payload)} bytes")
    seq, n_pins = _DELTA_HEADER.unpack_from(payload)
    offset = _DELTA_HEADER.size
    need = offset + n_pins * _PIN.size
    if len(payload) < need:
        raise ValueError("truncated replication delta (pins)")
    pins: List[Tuple[FlowKey, int]] = []
    for _ in range(n_pins):
        src_ip, dst_ip, proto, sport, dport, slot = \
            _PIN.unpack_from(payload, offset)
        pins.append(((src_ip, dst_ip, proto, sport, dport), slot))
        offset += _PIN.size
    routes = decode_updates(payload[offset:])
    return seq, pins, routes


class DeltaSource:
    """Active-side replication log: emits only what the standby lacks."""

    def __init__(self) -> None:
        self.seq = 0
        self._shipped: Dict[FlowKey, int] = {}
        self._route_queue: List[RouteUpdate] = []
        self.deltas = 0
        self.bytes = 0

    def note_routes(self, updates: Iterable[RouteUpdate]) -> None:
        """Queue route updates for the next delta (in arrival order)."""
        self._route_queue.extend(updates)

    def delta(self, pins: Mapping[FlowKey, int]) -> Optional[bytes]:
        """The next delta payload, or None when nothing changed.

        ``pins`` is the active's *current* pin view; only pins that are
        new or moved since the last emitted delta are shipped.  Expired
        pins are simply not re-shipped — a stale pin on the standby is
        harmless (it re-pins a flow that would be rebalanced anyway).
        """
        changed = [(key, slot) for key, slot in sorted(pins.items())
                   if self._shipped.get(key) != slot]
        if not changed and not self._route_queue:
            return None
        self.seq += 1
        payload = encode_delta(self.seq, changed, self._route_queue)
        for key, slot in changed:
            self._shipped[key] = slot
        self._route_queue = []
        self.deltas += 1
        self.bytes += len(payload)
        return payload


class ReplicaState:
    """Standby-side shadow of the active's replicated state."""

    def __init__(self) -> None:
        self.seq = 0
        #: Current pin view: flow key -> VRI slot.
        self.pins: Dict[FlowKey, int] = {}
        #: Net route state: prefix -> latest non-withdrawn update
        #: (withdrawals delete; insertion order is preserved).
        self._routes: Dict[object, RouteUpdate] = {}
        self.applied = 0
        self.stale = 0

    def apply(self, payload: bytes
              ) -> Optional[Tuple[List[Tuple[FlowKey, int]],
                                  List[RouteUpdate]]]:
        """Fold one delta in; returns its (pins, routes) or None if
        stale (already applied — at-least-once delivery dedup)."""
        seq, pins, routes = decode_delta(payload)
        if seq <= self.seq:
            self.stale += 1
            return None
        self.seq = seq
        for key, slot in pins:
            self.pins[key] = slot
        for update in routes:
            if update.withdraw:
                self._routes.pop(update.prefix, None)
            else:
                self._routes[update.prefix] = update
        self.applied += 1
        return pins, routes

    def route_updates(self) -> List[RouteUpdate]:
        """The net (non-withdrawn) route set, in first-seen order."""
        return list(self._routes.values())
