"""Deterministic VR → monitor placement (rendezvous hashing).

A federation shards VRs across N LVRM instances.  The placement policy
must be (a) deterministic across processes and runs — the DES
determinism contract extends to the cluster — and (b) minimally
disruptive: adding or removing a member may only move the keys that
member gains or loses.  Rendezvous (highest-random-weight) hashing over
``blake2b`` gives both; Python's builtin ``hash()`` is per-process
salted and would silently break (a).

The weighted variant uses the standard logarithmic transform
(score = -weight / ln(u), u uniform in (0,1) from the hash), so member
weights scale expected key share proportionally.  On top of pure HRW,
:meth:`RendezvousPlacement.rebalance` performs the load-aware pass: it
starts from the hash assignment and greedily moves the fewest keys (by
estimated load — the PR 2/5 estimators supply per-VR rates) needed to
level member shares, deterministically.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["RendezvousPlacement"]

_TWO64 = 2 ** 64


def _uniform(member: str, key: str) -> float:
    """A (0, 1) uniform from blake2b(member|key) — stable everywhere."""
    digest = hashlib.blake2b(f"{member}|{key}".encode("utf-8"),
                             digest_size=8).digest()
    return (int.from_bytes(digest, "big") + 1) / (_TWO64 + 1)


class RendezvousPlacement:
    """Weighted rendezvous hashing over a fixed member list."""

    def __init__(self, members: Iterable[str],
                 weights: Optional[Mapping[str, float]] = None):
        self.members: List[str] = list(members)
        if not self.members:
            raise ConfigError("placement needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ConfigError("duplicate member ids in placement")
        self.weights: Dict[str, float] = {
            m: float((weights or {}).get(m, 1.0)) for m in self.members}
        for m, w in self.weights.items():
            if not (w > 0 and math.isfinite(w)):
                raise ConfigError(
                    f"member {m!r}: weight must be finite and > 0, got {w!r}")
        #: Keys moved by the last :meth:`rebalance` pass.
        self.last_moves = 0

    def score(self, member: str, key: str) -> float:
        """HRW score; the key lands on the member with the max score."""
        return -self.weights[member] / math.log(_uniform(member, key))

    def place(self, key: str) -> str:
        """The pure-hash home of ``key`` (ties broken by member id)."""
        return max(self.members,
                   key=lambda m: (self.score(m, str(key)), m))

    def placement_map(self, keys: Iterable[str]) -> Dict[str, str]:
        return {k: self.place(k) for k in keys}

    # -- the load-aware pass -------------------------------------------------
    def rebalance(self, loads: Mapping[str, float]) -> Dict[str, str]:
        """Assign ``loads``' keys, leveling estimated load per member.

        Starts from the pure hash placement, then repeatedly moves the
        single key (from the most-loaded member) whose move most
        reduces the max/min load gap, stopping when no move helps.
        Everything is ordered (sorted keys, lexicographic tie-breaks),
        so the result is a pure function of the inputs.  Move count is
        left in :attr:`last_moves` — the disruption a rebalance costs.
        """
        assign = {k: self.place(k) for k in sorted(loads)}
        member_load = {m: 0.0 for m in self.members}
        for key, member in assign.items():
            member_load[member] += loads[key]
        moves = 0
        for _ in range(2 * len(assign) + 1):
            hi = max(self.members, key=lambda m: (member_load[m], m))
            lo = min(self.members, key=lambda m: (member_load[m], m))
            gap = member_load[hi] - member_load[lo]
            best: Optional[Tuple[float, str]] = None
            for key in sorted(k for k, m in assign.items() if m == hi):
                weight = loads[key]
                # Moving `key` hi->lo changes the pair gap to |gap-2w|:
                # only strictly-narrowing moves, largest first.
                if weight < gap and (best is None or weight > best[0]):
                    best = (weight, key)
            if best is None:
                break
            _, key = best
            assign[key] = lo
            member_load[hi] -= loads[key]
            member_load[lo] += loads[key]
            moves += 1
        self.last_moves = moves
        return assign
