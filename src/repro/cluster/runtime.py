"""Real-process federation: an active/standby ``RuntimeLvrm`` pair.

The runtime twin of :class:`repro.cluster.federation.DesFederation`,
restricted (like the runtime backend itself) to the mechanism proof:
one HA pair of real monitor processes, a real shared-memory control
ring carrying ``KIND_REPLICATE`` / ``KIND_ELECT`` / ``KIND_VIP_MOVE``
events between them, and the same :class:`ClusterDirector` detecting
the kill and promoting the standby.

Two deliberate asymmetries against the DES federation:

* **No per-member Supervisor in the failover drill.**  Instance-level
  HA supersedes intra-instance restarts here: the scenario kills every
  worker of the active at once, which a worker supervisor would fight
  by respawning them.  (A member *can* carry one — the death-epoch
  dedup test runs that configuration — the canned drill just doesn't.)
* **Route state only is replicated.**  The runtime balancer is
  stateless round-robin (no flow table), so the pin half of the delta
  is always empty; the route half exercises the same wire path.
"""

from __future__ import annotations

import struct
import time
from typing import Dict, List, Optional

from repro.errors import RuntimeBackendError
from repro.ipc.factory import attach_ring, make_ring, ring_bytes_for
from repro.ipc.messages import (ControlEvent, KIND_ELECT, KIND_REPLICATE,
                                KIND_VIP_MOVE, decode_event, encode_event)
from repro.ipc.shm import SharedSegment
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.obs.registry import default_registry
from repro.routing.prefix import Prefix
from repro.routing.sync import RouteUpdate
from repro.runtime.monitor import RuntimeLvrm
from repro.runtime.supervisor import Supervisor, SupervisorPolicy
from repro.cluster.director import ClusterDirector
from repro.cluster.replication import DeltaSource, ReplicaState

__all__ = ["RuntimeMember", "RuntimeFederation",
           "run_runtime_failover_scenario"]

_ELECT = struct.Struct("<HI")    # member index, election term
_VIP_MOVE = struct.Struct("<H")  # member index

_REPL_CAPACITY = 256
_REPL_SLOT = 4096


class RuntimeMember:
    """One real-process member: a monitor plus its HA state.  Implements
    the director's member protocol over live worker processes."""

    def __init__(self, member_id: str, role: str, n_vris: int = 2,
                 heartbeat_interval: float = 0.1,
                 supervised: bool = False,
                 policy: Optional[SupervisorPolicy] = None):
        self.member_id = member_id
        self.role = role
        self.lvrm = RuntimeLvrm(n_vris=n_vris, worker_lifetime=60.0,
                                heartbeat_interval=heartbeat_interval)
        self.supervisor = (Supervisor(self.lvrm,
                                      policy or SupervisorPolicy())
                           if supervised else None)
        self.replica = ReplicaState()
        self.delta = DeltaSource()
        #: Driver-maintained forward-progress count (frames drained).
        self.forwarded = 0
        #: Active-side installed route view (prefix -> update).
        self.routes: Dict = {}
        self.promoted_at: Optional[float] = None
        self.stopped = False

    # -- director protocol ---------------------------------------------------
    def instance_alive(self) -> bool:
        vris = self.lvrm.vris
        return bool(vris) and any(v.process.is_alive() for v in vris)

    def heartbeat_age(self, now: float) -> float:
        ages = self.lvrm.heartbeat_ages()
        return min(ages.values()) if ages else float("inf")

    def progress_watermark(self) -> int:
        return self.forwarded

    def backlog(self) -> int:
        # The driver dispatches and drains synchronously; rings are the
        # only queue and their occupancy is not worth a hang verdict.
        return 0

    def death_epoch(self) -> int:
        return self.supervisor.death_epoch if self.supervisor else 0

    def registry_snapshot(self) -> Optional[Dict]:
        tag = self.lvrm.obs_id
        snapshot = default_registry().snapshot()
        metrics = [m for m in snapshot["metrics"]
                   if m.get("labels", {}).get("rt") == tag]
        return {"v": snapshot["v"], "metrics": metrics}

    # -- plumbing ------------------------------------------------------------
    def pump(self) -> None:
        if self.lvrm.vris:
            self.lvrm.pump_control()

    def drain(self) -> int:
        if not self.lvrm.vris:
            return 0
        got = len(self.lvrm.drain())
        self.forwarded += got
        return got

    def stop(self) -> None:
        if not self.stopped:
            self.stopped = True
            self.lvrm.stop()


class RuntimeFederation:
    """An m0 (active) / m1 (standby) pair over a real replication ring."""

    def __init__(self, n_vris: int = 2, heartbeat_interval: float = 0.1,
                 probe_period: float = 0.25, crash_timeout: float = 1.0,
                 repl_period: float = 0.1,
                 supervised_active: bool = False):
        self.active = RuntimeMember("m0", "active", n_vris,
                                    heartbeat_interval,
                                    supervised=supervised_active)
        self.standby = RuntimeMember("m1", "standby", n_vris,
                                     heartbeat_interval)
        self.members: Dict[str, RuntimeMember] = {
            "m0": self.active, "m1": self.standby}
        self.vip = "m0"
        self.repl_period = repl_period
        #: Worst case: one heartbeat interval of staleness + one probe
        #: period of detection latency, both well inside two probes.
        self.failover_budget = 2 * probe_period
        self._term = 0
        self.bus: Dict[str, int] = {"replicate": 0, "vip_move": 0,
                                    "elect": 0}
        self.bus_bytes = 0
        self.routes_announced = 0
        # The control ring is a real shared segment: what two monitor
        # processes on one host would actually share.
        seg_bytes = ring_bytes_for("lamport", _REPL_CAPACITY, _REPL_SLOT)
        self._repl_seg = SharedSegment.create(seg_bytes)
        self._repl_tx = make_ring("lamport", self._repl_seg.buf,
                                  _REPL_CAPACITY, _REPL_SLOT)
        self._repl_rx = attach_ring("lamport", self._repl_seg.buf)
        self.director = ClusterDirector(
            list(self.members.values()), clock=time.monotonic,
            probe_period=probe_period, crash_timeout=crash_timeout,
            hang_timeout=10 * crash_timeout, on_failover=self._promote,
            slo_rules=[{"name": "fast-failover",
                        "kind": "failover_time_ms",
                        "threshold": self.failover_budget * 1e3}])
        self._closed = False

    # -- traffic path --------------------------------------------------------
    def owner(self) -> RuntimeMember:
        return self.members[self.vip]

    def dispatch(self, frame: bytes) -> bool:
        owner = self.owner()
        if not owner.lvrm.vris:
            return False
        try:
            return owner.lvrm.dispatch(frame)
        except RuntimeBackendError:
            return False

    def drain(self) -> int:
        return sum(m.drain() for m in self.members.values())

    def pump(self) -> None:
        for member in self.members.values():
            member.pump()

    # -- replication ---------------------------------------------------------
    def announce_routes(self, updates: List[RouteUpdate]) -> None:
        owner = self.owner()
        for update in updates:
            if update.withdraw:
                owner.routes.pop(update.prefix, None)
            else:
                owner.routes[update.prefix] = update
        owner.delta.note_routes(updates)
        self.routes_announced += len(updates)

    def replicate(self) -> None:
        """One replication beat: active ships a delta, standby applies
        whatever has arrived on the ring."""
        owner = self.owner()
        if owner.promoted_at is None:   # only the original active ships
            payload = self.active.delta.delta({})
            if payload is not None:
                self._send(KIND_REPLICATE, payload, "replicate")
        while True:
            record = self._repl_rx.try_pop()
            if record is None:
                break
            event = decode_event(record)
            if event.kind == KIND_REPLICATE:
                self.standby.replica.apply(event.payload)

    def _send(self, kind: int, payload: bytes, counter: str) -> None:
        data = encode_event(ControlEvent(kind, 0, 0, payload,
                                         t_sent=time.monotonic()))
        if self._repl_tx.try_push(data):
            self.bus[counter] += 1
            self.bus_bytes += len(data)

    # -- chaos + failover ----------------------------------------------------
    def kill_active(self) -> None:
        """SIGKILL every worker of the VIP owner (the whole instance)."""
        for vri in list(self.owner().lvrm.vris):
            if vri.process.is_alive():
                vri.process.kill()
        for vri in list(self.owner().lvrm.vris):
            vri.process.join(1.0)

    def _promote(self, failed: RuntimeMember, reason: str
                 ) -> Optional[str]:
        if failed.member_id != self.vip:
            return None
        standby = self.standby if failed is self.active else self.active
        if not standby.instance_alive():
            return None
        # Route state was applied on receipt; promotion just adopts it.
        for update in standby.replica.route_updates():
            standby.routes[update.prefix] = update
        standby.role = "active"
        standby.promoted_at = time.monotonic()
        self.vip = standby.member_id
        self._term += 1
        index = list(self.members).index(standby.member_id)
        self._send(KIND_ELECT, _ELECT.pack(index, self._term), "elect")
        self._send(KIND_VIP_MOVE, _VIP_MOVE.pack(index), "vip_move")
        return standby.member_id

    def retire(self, member_id: str) -> None:
        """Tear the failed member down (joins corpses, unlinks shm)."""
        self.members[member_id].stop()

    # -- views + lifecycle ---------------------------------------------------
    def cluster_view(self) -> Dict:
        now = time.monotonic()
        members = []
        for member in self.members.values():
            members.append({
                "id": member.member_id, "role": member.role,
                "alive": member.instance_alive(),
                "workers": len(member.lvrm.vris),
                "forwarded": member.forwarded,
                "routes": len(member.routes),
                "replica_seq": member.replica.seq,
            })
        return {"backend": "runtime", "members": members,
                "vip": self.vip, "bus": dict(self.bus),
                "bus_bytes": self.bus_bytes,
                "director": self.director.view(now)}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for member in self.members.values():
            member.stop()
        self._repl_tx.close()
        self._repl_rx.close()
        self._repl_seg.close()


def run_runtime_failover_scenario(duration: float = 4.0,
                                  kill_at: float = 1.2,
                                  n_vris: int = 2,
                                  rate_fps: float = 2000.0,
                                  n_routes: int = 12,
                                  admin_port: Optional[int] = None
                                  ) -> Dict:
    """The kill-the-active drill over real processes.

    Drives the pair from a wall-clock loop: paced dispatch to the VIP
    owner, periodic replication and director probes, a SIGKILL of every
    active worker at ``kill_at``, then verification that the standby
    was promoted inside the budget and kept forwarding.  With
    ``admin_port`` the director's registry (and ``/cluster``) is served
    over loopback HTTP for the CI smoke to curl mid-failover.
    """
    fed = RuntimeFederation(n_vris=n_vris)
    admin = None
    if admin_port is not None:
        from repro.obs.admin import AdminServer, AdminState
        admin = AdminServer(AdminState(fed.director.registry,
                                       cluster_fn=fed.cluster_view),
                            port=admin_port).start()
    try:
        fed.announce_routes([
            RouteUpdate(Prefix.parse(f"10.{60 + i}.0.0/16"),
                        iface=1, metric=2)
            for i in range(n_routes)])
        frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                                ip_to_int("10.2.1.2"), 1000, 2000,
                                b"federation")
        tick = 0.01
        per_tick = max(1, int(rate_fps * tick))
        t0 = time.monotonic()
        next_repl = next_probe = 0.0
        killed = False
        retired = False
        pre_forwarded = post_base = None
        while True:
            elapsed = time.monotonic() - t0
            if elapsed >= duration:
                break
            for _ in range(per_tick):
                fed.dispatch(frame)
            fed.pump()
            fed.drain()
            if elapsed >= next_repl:
                fed.replicate()
                next_repl = elapsed + fed.repl_period
            if elapsed >= next_probe:
                fed.director.probe()
                next_probe = elapsed + fed.director.probe_period
            if not killed and elapsed >= kill_at:
                pre_forwarded = fed.active.forwarded
                fed.kill_active()
                killed = True
            if killed and not retired and fed.director.failovers:
                # Promotion happened: reap the corpse so its segments
                # leave /dev/shm while the promoted member serves on.
                fed.retire(fed.director.failovers[0]["member"])
                retired = True
                post_base = fed.standby.forwarded
            time.sleep(0.002)
        fed.drain()
        failover = (fed.director.failovers[0]
                    if fed.director.failovers else None)
        within = (failover is not None
                  and failover["failover_seconds"] <= fed.failover_budget)
        recovered = (post_base is not None
                     and fed.standby.forwarded > post_base)
        report = {
            "backend": "runtime",
            "duration": duration, "kill_at": kill_at,
            "failover": failover,
            "budget_seconds": fed.failover_budget,
            "within_budget": within,
            "pre_kill_forwarded": pre_forwarded,
            "standby_forwarded": fed.standby.forwarded,
            "recovered": recovered,
            "routes_on_standby": len(fed.standby.replica.route_updates()),
            "bus": dict(fed.bus),
            "vip": fed.vip,
            "ok": bool(failover and within and recovered
                       and fed.vip == "m1"
                       and len(fed.standby.replica.route_updates())
                       == n_routes),
        }
        return report
    finally:
        if admin is not None:
            admin.stop()
        fed.close()
