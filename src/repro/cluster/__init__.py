"""Multi-LVRM federation: sharded monitors, HA failover, coordination.

The paper scales the monitor *within* one process (VRIs on cores); this
package scales it *across* monitor instances.  VRs shard over N LVRMs
by load-aware rendezvous placement; an HA pair replicates flow pins and
route state active → standby so a crash fails over without re-learning;
a :class:`ClusterDirector` merges every member's telemetry into one
registry (the ``/cluster`` admin view) and drives the failure detector
that triggers the VIP move.  Both backends are covered: the DES
federation is bit-reproducible, the runtime federation runs real
processes over a real shared-memory control ring.
"""

from repro.cluster.director import ClusterDirector
from repro.cluster.federation import DesFederation, DesMember, VipCapture
from repro.cluster.placement import RendezvousPlacement
from repro.cluster.replication import (DeltaSource, ReplicaState,
                                       decode_delta, encode_delta)
from repro.cluster.scenario import (FederationConfig,
                                    load_federation_config,
                                    run_des_failover_scenario,
                                    run_des_scaling)

__all__ = [
    "ClusterDirector", "DesFederation", "DesMember", "VipCapture",
    "RendezvousPlacement", "DeltaSource", "ReplicaState",
    "decode_delta", "encode_delta",
    "FederationConfig", "load_federation_config",
    "run_des_failover_scenario", "run_des_scaling",
]
