"""The DES federation: N simulated LVRM instances under one clock.

Each member is a full :class:`repro.core.Lvrm` on its own
:class:`~repro.hardware.Machine` (own cores — sharding multiplies
monitor capacity, which is the whole point), fed through a
:class:`VipCapture`: a push-based capture backend standing in for "the
VIP currently routes here".  A federation-level dispatcher classifies
frames by VR subnet, resolves the owning member through the rendezvous
placement, applies the VIP override of the member's HA pair, and pushes.

HA pairs: the active replicates flow pins + route deltas to its standby
every ``repl_period`` as real ``KIND_REPLICATE`` control events
(encoded and decoded through the wire codec, delivered after
``ctrl_latency``).  The :class:`~repro.cluster.director.ClusterDirector`
probes members from heartbeat processes; on a death it calls back into
:meth:`DesFederation._promote`, which installs the replicated pins into
the standby's live flow tables (route state was already applied on
receipt — no re-learning), flips the VIP, and emits ``KIND_ELECT`` /
``KIND_VIP_MOVE`` through the codec.

Everything runs at sim-time priorities only — bit-reproducible by
construction.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec
from repro.errors import ConfigError
from repro.hardware import DEFAULT_COSTS, Machine
from repro.ipc.messages import (KIND_ELECT, KIND_REPLICATE, KIND_VIP_MOVE,
                                ControlEvent, decode_event, encode_event)
from repro.net.capture import CaptureBackend
from repro.net.frame import Frame
from repro.obs.registry import default_registry
from repro.routing.sync import RouteUpdate, router_table_of
from repro.cluster.director import ClusterDirector
from repro.cluster.placement import RendezvousPlacement
from repro.cluster.replication import DeltaSource, ReplicaState

__all__ = ["VipCapture", "DesMember", "DesFederation"]

_ELECT = struct.Struct("<HI")    # member index, election term
_VIP_MOVE = struct.Struct("<H")  # member index


class VipCapture(CaptureBackend):
    """Push-based capture: frames arrive because the VIP points here.

    The federation dispatcher :meth:`push`\\ es frames in; the owning
    LVRM's main loop is woken through the same notify contract NIC
    queues use (``set_notify``/``backlog``, armed by ``_arm_wakes``).
    Costs mirror :class:`~repro.net.capture.MemoryCapture`, scaled by
    ``rx_scale`` — scaling scenarios raise it to model a monitor that
    is itself the bottleneck (the paper's single-process ceiling).
    """

    name = "vip"

    def __init__(self, sim, costs, rx_scale: float = 1.0):
        self.sim = sim
        self.costs = costs
        self.rx_scale = rx_scale
        self._queue: List[Frame] = []
        self._head = 0
        self._notify: Optional[Callable[[], None]] = None
        self._closed = False
        self.pushed = 0
        self.discarded = 0

    # -- the push side -------------------------------------------------------
    def push(self, frame: Frame) -> None:
        frame.t_created = self.sim.now
        self._queue.append(frame)
        self.pushed += 1
        if self._notify is not None:
            self._notify()

    def close(self) -> None:
        """No more input ever (lets memory-trace drain detection fire)."""
        self._closed = True
        if self._notify is not None:
            self._notify()

    # -- the notify contract (duck-typed by Lvrm._arm_wakes) -----------------
    def set_notify(self, callback: Optional[Callable[[], None]]) -> None:
        self._notify = callback

    def backlog(self) -> int:
        return len(self._queue) - self._head

    # -- CaptureBackend ------------------------------------------------------
    def rx_cost(self, frame: Frame) -> float:
        return (self.costs.memory_rx
                + self.costs.memory_rx_per_byte * frame.size) * self.rx_scale

    def tx_cost(self, frame: Frame) -> float:
        return self.costs.discard_tx

    def poll(self) -> Optional[Frame]:
        if self._head >= len(self._queue):
            return None
        frame = self._queue[self._head]
        self._queue[self._head] = None  # release the reference
        self._head += 1
        if self._head > 4096 and self._head * 2 > len(self._queue):
            del self._queue[:self._head]
            self._head = 0
        return frame

    def transmit(self, frame: Frame) -> bool:
        self.discarded += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self._closed and self.backlog() == 0

    def next_available_delay(self) -> Optional[float]:
        # Arrival is externally driven; set_notify wakes the monitor.
        return None


class DesMember:
    """One federation member: an Lvrm + its machine, capture, and the
    per-member HA state.  Implements the director's member protocol."""

    def __init__(self, member_id: str, role: str, machine: Machine,
                 capture: VipCapture, lvrm: Lvrm):
        self.member_id = member_id
        self.role = role
        self.machine = machine
        self.capture = capture
        self.lvrm = lvrm
        self.last_heartbeat = 0.0
        #: Standby-side shadow / active-side delta log (both allocated;
        #: a member's role can flip at promotion).
        self.replica = ReplicaState()
        self.delta = DeltaSource()
        self.promoted_at: Optional[float] = None
        self.pins_installed = 0

    # -- director protocol ---------------------------------------------------
    def instance_alive(self) -> bool:
        return self.lvrm.instance_alive

    def heartbeat_age(self, now: float) -> float:
        return max(0.0, now - self.last_heartbeat)

    def progress_watermark(self) -> int:
        return self.lvrm.stats.forwarded

    def backlog(self) -> int:
        return self.capture.backlog() + sum(
            v.queue_len for v in self.lvrm.all_vris() if v.alive)

    def death_epoch(self) -> int:
        return self.lvrm.death_epoch

    def registry_snapshot(self) -> Optional[Dict]:
        """This instance's slice of the process-wide registry — exactly
        what a per-process member would ship over KIND_STATS."""
        tag = self.lvrm.obs_labels["lvrm"]
        snapshot = default_registry().snapshot()
        metrics = [m for m in snapshot["metrics"]
                   if m.get("labels", {}).get("lvrm") == tag]
        return {"v": snapshot["v"], "metrics": metrics}


class DesFederation:
    """N sharded monitors + optional HA pairs + the coordination plane."""

    def __init__(self, sim, member_ids: Iterable[str],
                 pairs: Optional[Mapping[str, str]] = None,
                 costs=DEFAULT_COSTS,
                 config: Optional[LvrmConfig] = None,
                 rx_scale: float = 1.0,
                 hb_interval: Optional[float] = None,
                 probe_period: Optional[float] = None,
                 crash_timeout: Optional[float] = None,
                 hang_timeout: Optional[float] = None,
                 repl_period: Optional[float] = None,
                 ctrl_latency: float = 200e-6,
                 slo_rules: Optional[List[Dict]] = None):
        self.sim = sim
        self.config = config or LvrmConfig(supervise=True, flow_based=True,
                                           balancer="jsq")
        period = self.config.supervision_period
        #: Failure-detector cadence, all derived from the supervision
        #: period unless overridden: members beat 4x per period, the
        #: director probes 2x, a heartbeat older than one period is a
        #: crash.  Worst-case detection is therefore well inside the
        #: 2-period failover budget.
        self.hb_interval = hb_interval if hb_interval is not None \
            else period / 4
        self.probe_period = probe_period if probe_period is not None \
            else period / 2
        crash_timeout = crash_timeout if crash_timeout is not None else period
        hang_timeout = hang_timeout if hang_timeout is not None \
            else self.config.heartbeat_timeout
        self.repl_period = repl_period if repl_period is not None \
            else period / 2
        self.ctrl_latency = ctrl_latency
        self.failover_budget = 2 * period

        self.pairs: Dict[str, str] = dict(pairs or {})
        self.members: Dict[str, DesMember] = {}
        for mid in member_ids:
            if mid in self.members:
                raise ConfigError(f"duplicate member id {mid!r}")
            role = "standby" if mid in self.pairs.values() else (
                "active" if mid in self.pairs else "shard")
            machine = Machine(sim, costs=costs)
            capture = VipCapture(sim, costs, rx_scale)
            lvrm = Lvrm(sim, machine, capture, config=self.config)
            self.members[mid] = DesMember(mid, role, machine, capture, lvrm)
        for active, standby in self.pairs.items():
            for mid in (active, standby):
                if mid not in self.members:
                    raise ConfigError(f"pair references unknown member "
                                      f"{mid!r}")
        #: Placement runs over traffic-owning members only (standbys
        #: receive traffic through the VIP, never directly).
        standby_ids = set(self.pairs.values())
        self.placement = RendezvousPlacement(
            [m for m in self.members if m not in standby_ids])
        #: VIP ownership per pair, keyed by the pair's initial active.
        self.vip: Dict[str, str] = {a: a for a in self.pairs}
        self._vr_home: Dict[str, str] = {}
        self._specs: Dict[str, VrSpec] = {}
        self._term = 0
        self.bus: Dict[str, int] = {"replicate": 0, "vip_move": 0,
                                    "elect": 0}
        self.bus_bytes = 0
        self.dispatched = 0
        self.drop_no_vr = 0
        self.routes_announced = 0
        self.route_relearns = 0
        self.promote_report: Optional[Dict] = None

        rules = slo_rules if slo_rules is not None else [
            {"name": "fast-failover", "kind": "failover_time_ms",
             "threshold": self.failover_budget * 1e3},
            {"name": "fresh-members", "kind": "stale_heartbeat",
             "threshold": crash_timeout},
        ]
        self.director = ClusterDirector(
            list(self.members.values()), clock=sim.clock(),
            probe_period=self.probe_period, crash_timeout=crash_timeout,
            hang_timeout=hang_timeout, on_failover=self._promote,
            slo_rules=rules)

    # -- VR hosting ----------------------------------------------------------
    def add_vr(self, spec: VrSpec, n_vris: int = 1,
               home: Optional[str] = None) -> str:
        """Host a VR on its placed member (and dark on the standby of an
        HA pair); returns the home member id."""
        if home is None:
            home = self.placement.place(spec.name)
        if home not in self.members:
            raise ConfigError(f"unknown home member {home!r}")
        self.members[home].lvrm.add_vr(spec, FixedAllocation(n_vris))
        standby = self.pairs.get(home)
        if standby is not None:
            # The standby hosts the same VR in the same slot order, hot
            # but dark: it sees no traffic until the VIP moves.
            self.members[standby].lvrm.add_vr(spec, FixedAllocation(n_vris))
        self._vr_home[spec.name] = home
        self._specs[spec.name] = spec
        return home

    def place_vrs(self, specs: Mapping[str, VrSpec],
                  loads: Mapping[str, float], n_vris: int = 1
                  ) -> Dict[str, str]:
        """Shard a VR set with the load-aware rebalance (scaling runs)."""
        assignment = self.placement.rebalance(dict(loads))
        for name in sorted(specs):
            self.add_vr(specs[name], n_vris, home=assignment[name])
        return assignment

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        for member in self.members.values():
            member.lvrm.start()
            self.sim.process(self._heartbeat_proc(member))
        for active, standby in self.pairs.items():
            self.sim.process(self._replication_proc(active, standby))
        self.sim.process(self._director_proc())

    def close_traffic(self) -> None:
        for member in self.members.values():
            member.capture.close()

    # -- traffic path --------------------------------------------------------
    def classify(self, frame: Frame) -> Optional[str]:
        for name, spec in self._specs.items():
            if spec.owns(frame.src_ip):
                return name
        return None

    def target_member(self, frame: Frame) -> Optional[DesMember]:
        vr = self.classify(frame)
        if vr is None:
            return None
        home = self._vr_home[vr]
        return self.members[self.vip.get(home, home)]

    def dispatch(self, frame: Frame) -> bool:
        """Push one frame at the VIP owner of its VR's pair (or its
        shard).  A dead owner still 'receives' it — that is the
        blackout the failover SLO measures."""
        member = self.target_member(frame)
        if member is None:
            self.drop_no_vr += 1
            return False
        member.capture.push(frame)
        self.dispatched += 1
        return True

    # -- chaos ---------------------------------------------------------------
    def kill_instance(self, index: int, reason: str = "crash") -> str:
        ids = list(self.members)
        if not 0 <= index < len(ids):
            raise ConfigError(f"no federation member at index {index}")
        member = self.members[ids[index]]
        member.lvrm.fail_instance(reason)
        return member.member_id

    # -- the coordination plane ----------------------------------------------
    def _heartbeat_proc(self, member: DesMember):
        while member.lvrm.instance_alive:
            member.last_heartbeat = self.sim.now
            yield self.sim.sleep(self.hb_interval)

    def _director_proc(self):
        while True:
            yield self.sim.sleep(self.probe_period)
            self.director.probe(self.sim.now)

    def _collect_pins(self, member: DesMember) -> Dict:
        slot_of = {v.vri_id: i
                   for i, v in enumerate(member.lvrm.all_vris())}
        pins: Dict = {}
        for monitor in member.lvrm._vri_monitors:
            flows = getattr(monitor.balancer, "flows", None)
            if flows is None:
                continue
            for key, vri_id in flows.entries():
                slot = slot_of.get(vri_id)
                if slot is not None:
                    pins[key] = slot
        return pins

    def _replication_proc(self, active_id: str, standby_id: str):
        active = self.members[active_id]
        standby = self.members[standby_id]
        while active.lvrm.instance_alive:
            yield self.sim.sleep(self.repl_period)
            if not active.lvrm.instance_alive:
                break
            payload = active.delta.delta(self._collect_pins(active))
            if payload is None:
                continue
            event = ControlEvent(KIND_REPLICATE, 0, 0, payload,
                                 t_sent=self.sim.now)
            data = encode_event(event)
            self.bus["replicate"] += 1
            self.bus_bytes += len(data)
            self.sim.call_in(self.ctrl_latency,
                             lambda d=data, s=standby: self._deliver(s, d))

    def _deliver(self, standby: DesMember, data: bytes) -> None:
        if not standby.lvrm.instance_alive:
            return
        event = decode_event(data)
        applied = standby.replica.apply(event.payload)
        if applied is None:
            return
        _pins, routes = applied
        if routes:
            self._apply_routes(standby, routes)
            if standby.promoted_at is not None:
                # Should never happen: the dead active cannot send.
                self.route_relearns += len(routes)

    def _apply_routes(self, member: DesMember,
                      updates: List[RouteUpdate]) -> None:
        for vri in member.lvrm.all_vris():
            if not vri.alive:
                continue
            table = router_table_of(vri.router)
            for update in updates:
                if update.withdraw:
                    if update.prefix in set(p for p, _ in table):
                        table.remove(update.prefix)
                else:
                    table.add(update.prefix, update.iface)

    def announce_routes(self, pair_active: str,
                        updates: List[RouteUpdate]) -> None:
        """Control-plane input: routes land on the pair's current VIP
        owner and are queued for replication to its standby."""
        owner = self.members[self.vip.get(pair_active, pair_active)]
        self._apply_routes(owner, updates)
        owner.delta.note_routes(updates)
        self.routes_announced += len(updates)

    # -- failover ------------------------------------------------------------
    def _member_index(self, member_id: str) -> int:
        return list(self.members).index(member_id)

    def _emit(self, kind: int, payload: bytes, counter: str) -> None:
        event = ControlEvent(kind, 0, 0, payload, t_sent=self.sim.now)
        data = encode_event(event)
        decoded = decode_event(data)   # exercise the wire codec
        assert decoded.kind == kind and decoded.payload == payload
        self.bus[counter] += 1
        self.bus_bytes += len(data)

    def _promote(self, failed: DesMember, reason: str) -> Optional[str]:
        """Director callback: promote the standby of the failed active."""
        standby_id = self.pairs.get(failed.member_id)
        if standby_id is None:
            return None
        standby = self.members[standby_id]
        if not standby.lvrm.instance_alive:
            return None
        now = self.sim.now
        installed = self._install_pins(standby)
        routes_present = self._count_routes_present(standby)
        standby.role = "active"
        standby.promoted_at = now
        standby.pins_installed = installed
        self.vip[failed.member_id] = standby_id
        self._term += 1
        self._emit(KIND_ELECT,
                   _ELECT.pack(self._member_index(standby_id), self._term),
                   "elect")
        self._emit(KIND_VIP_MOVE,
                   _VIP_MOVE.pack(self._member_index(standby_id)),
                   "vip_move")
        self.promote_report = {
            "failed": failed.member_id, "promoted": standby_id,
            "reason": reason, "t": now,
            "pins_installed": installed,
            "replica_seq": standby.replica.seq,
            "routes_present_at_promote": routes_present,
        }
        return standby_id

    def _install_pins(self, standby: DesMember) -> int:
        """Move the replicated pin set into the standby's live flow
        tables (slot → this instance's same-slot VRI)."""
        now = self.sim.now
        vris = standby.lvrm.all_vris()
        installed = 0
        for monitor in standby.lvrm._vri_monitors:
            flows = getattr(monitor.balancer, "flows", None)
            if flows is None:
                continue
            for key, slot in sorted(standby.replica.pins.items()):
                if not monitor.spec.owns(key[0]):
                    continue
                if slot < len(vris) and vris[slot].alive:
                    flows.insert(key, vris[slot].vri_id, now)
                    installed += 1
        return installed

    def _count_routes_present(self, member: DesMember) -> int:
        """How many replicated (net) routes already sit in the member's
        live tables — the no-re-learning evidence."""
        updates = member.replica.route_updates()
        vris = [v for v in member.lvrm.all_vris() if v.alive]
        if not vris or not updates:
            return 0
        table = router_table_of(vris[0].router)
        have = {prefix for prefix, _ in table}
        return sum(1 for u in updates if u.prefix in have)

    # -- the /cluster view ---------------------------------------------------
    def cluster_view(self) -> Dict:
        members = []
        for member in self.members.values():
            stats = member.lvrm.stats
            members.append({
                "id": member.member_id, "role": member.role,
                "alive": member.lvrm.instance_alive,
                "pushed": member.capture.pushed,
                "captured": stats.captured,
                "forwarded": stats.forwarded,
                "backlog": member.backlog(),
                "replica_seq": member.replica.seq,
            })
        return {"backend": "des", "members": members,
                "vip": dict(self.vip), "vr_home": dict(self._vr_home),
                "pairs": dict(self.pairs),
                "bus": dict(self.bus), "bus_bytes": self.bus_bytes,
                "director": self.director.view(self.sim.now)}

    def admin_state(self):
        """A poll-based admin view with ``/cluster`` wired (DES: call
        ``handle()`` at any sim point, no sockets)."""
        from repro.obs.admin import AdminState
        return AdminState(self.director.registry,
                          cluster_fn=self.cluster_view)
