"""The cluster coordination plane: health probing, one merged view,
and the HA failover trigger.

A :class:`ClusterDirector` periodically probes every federation member
and maintains:

* **one cluster registry** — each member's registry snapshot is merged
  under an added ``instance`` label, so identically-named series from
  different members (and from a standby that later becomes active)
  never collide;
* **a failure verdict per member** — *crash* when the member's process
  liveness is gone or its freshest heartbeat is older than
  ``crash_timeout``; *hang* when the member is alive and has backlog
  but its progress watermark has not advanced for ``hang_timeout``;
* **death-epoch bookkeeping** — members' own supervisors already
  debounce and fail over individual VRI/worker deaths.  The director
  counts those deaths only when the member's ``death_epoch`` advances,
  never by re-observing the corpse itself, so a death is counted
  exactly once cluster-wide (and intra-instance deaths never trigger
  an instance failover).

When a member is declared dead the director calls ``on_failover`` (the
owning federation promotes the standby and moves the VIP; the call is
synchronous) and records the **failover time**: promotion-done minus
the estimated death instant (last heartbeat for a crash, last progress
advance for a hang).  That lands in the ``cluster_failover_seconds``
gauge, which the ``failover_time_ms`` SLO rule watches.

Members are duck-typed; the protocol is:

=====================  ====================================================
``member_id``          stable string id
``role``               "active" / "standby" / "shard" (mutable)
``instance_alive()``   process-level liveness (False = certainly dead)
``heartbeat_age(now)`` seconds since the freshest heartbeat
``progress_watermark()``  monotonic forward-progress counter
``backlog()``          pending input (hang detection is gated on it)
``death_epoch()``      the member supervisor's debounced-death counter
``registry_snapshot()``   registry snapshot dict, or None
=====================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.recorder import RECORDER
from repro.obs.registry import Registry
from repro.obs.slo import SloWatchdog, parse_rules

__all__ = ["ClusterDirector"]


class ClusterDirector:
    """Merges member telemetry and drives failure detection."""

    def __init__(self, members: Sequence, clock: Callable[[], float],
                 probe_period: float, crash_timeout: float,
                 hang_timeout: float,
                 on_failover: Optional[Callable] = None,
                 registry: Optional[Registry] = None,
                 slo_rules: Sequence = (),
                 track: str = "cluster"):
        self.members = list(members)
        self.clock = clock
        self.probe_period = probe_period
        self.crash_timeout = crash_timeout
        self.hang_timeout = hang_timeout
        self.on_failover = on_failover
        self.registry = registry if registry is not None else Registry()
        self.watchdog = (SloWatchdog(parse_rules(list(slo_rules)),
                                     self.registry, clock=clock,
                                     track=track)
                         if slo_rules else None)
        self.probes = 0
        #: Members already declared dead (never re-probed).
        self.failed: List[str] = []
        #: Completed failovers, in order: dicts with member/reason/
        #: detected_at/death_estimate/promoted/failover_seconds.
        self.failovers: List[Dict] = []
        self._last_epoch: Dict[str, int] = {
            m.member_id: m.death_epoch() for m in self.members}
        # member -> (last watermark, time it last advanced).
        self._progress: Dict[str, tuple] = {}
        reg = self.registry
        self.c_probes = reg.counter(
            "cluster_probes_total", "director probe sweeps")
        self.c_failovers = reg.counter(
            "cluster_failovers_total",
            "instance failovers the director completed (standby promoted)")
        reg.gauge("cluster_members",
                  "federation size the director watches").set(
            float(len(self.members)))
        for m in self.members:
            reg.gauge("cluster_active",
                      "1 while the member is serving, 0 once declared dead",
                      instance=m.member_id).set(1.0)

    # -- the probe sweep -----------------------------------------------------
    def probe(self, now: Optional[float] = None) -> List[Dict]:
        """One sweep: merge telemetry, detect deaths, drive failover.

        Returns the failover records completed in this sweep (usually
        empty).  Safe to call at any cadence; detection latency is the
        caller's probe period plus the heartbeat staleness bound.
        """
        if now is None:
            now = self.clock()
        self.probes += 1
        self.c_probes.inc()
        fired: List[Dict] = []
        heartbeat_ages: Dict[str, float] = {}
        for member in self.members:
            mid = member.member_id
            snapshot = member.registry_snapshot()
            if snapshot:
                # Satellite fix: the instance label keeps a standby's
                # pre-promotion series distinct from its active-era ones
                # and from the dead active's history.
                self.registry.merge(snapshot,
                                    extra_labels={"instance": mid})
            # Deaths the member's own supervisor debounced: count the
            # epoch delta, don't re-detect the corpses.
            epoch = member.death_epoch()
            delta = epoch - self._last_epoch.get(mid, 0)
            if delta > 0:
                self._last_epoch[mid] = epoch
                self.registry.counter(
                    "cluster_deaths_total",
                    "debounced worker/VRI deaths across the federation",
                    instance=mid).inc(delta)
            if mid in self.failed:
                continue
            age = member.heartbeat_age(now)
            heartbeat_ages[mid] = age
            watermark = member.progress_watermark()
            last_mark, t_advance = self._progress.get(mid, (None, now))
            if last_mark is None or watermark > last_mark:
                self._progress[mid] = (watermark, now)
                t_advance = now
            crashed = (not member.instance_alive()
                       or age > self.crash_timeout)
            hung = (not crashed and member.backlog() > 0
                    and now - t_advance > self.hang_timeout)
            if not (crashed or hung):
                continue
            reason = "crash" if crashed else "hang"
            death_estimate = (now - age) if crashed else t_advance
            record = self._fail_member(member, reason, death_estimate, now)
            fired.append(record)
        if self.watchdog is not None:
            self.watchdog.evaluate(now, heartbeat_ages)
        return fired

    def _fail_member(self, member, reason: str, death_estimate: float,
                     now: float) -> Dict:
        mid = member.member_id
        self.failed.append(mid)
        self.registry.gauge(
            "cluster_active",
            "1 while the member is serving, 0 once declared dead",
            instance=mid).set(0.0)
        promoted = (self.on_failover(member, reason)
                    if self.on_failover is not None else None)
        done = self.clock()
        record: Dict = {"member": mid, "reason": reason,
                        "detected_at": now,
                        "death_estimate": death_estimate,
                        "promoted": promoted}
        if promoted is not None:
            failover_s = max(done - death_estimate, 0.0)
            record["failover_seconds"] = failover_s
            self.c_failovers.inc()
            self.registry.gauge(
                "cluster_failover_seconds",
                "last failover's blackout: standby promoted minus "
                "estimated death instant",
                pair=f"{mid}->{promoted}").set(failover_s)
        self.failovers.append(record)
        RECORDER.note("cluster.failover", ts=now, **record)
        return record

    # -- the merged view -----------------------------------------------------
    def view(self, now: Optional[float] = None) -> Dict:
        """JSON-ready cluster state (the core of ``/cluster``)."""
        if now is None:
            now = self.clock()
        members = []
        for m in self.members:
            dead = m.member_id in self.failed
            entry = {"id": m.member_id, "role": m.role,
                     "alive": not dead and m.instance_alive(),
                     "death_epoch": m.death_epoch()}
            if not dead:
                entry["heartbeat_age"] = round(m.heartbeat_age(now), 6)
            members.append(entry)
        out = {"members": members, "probes": self.probes,
               "failed": list(self.failed),
               "failovers": list(self.failovers)}
        if self.watchdog is not None:
            out["slo_breaching"] = self.watchdog.breaching()
        return out
