"""The trace recorder: a total-order, epoch-stamped event log.

:class:`ReplayRecorder` attaches to the process-wide
:data:`~repro.obs.trace.TRACER` as its ``replay`` sink, so every trace
event an instrumented site emits — control-message order, supervisor
decisions, descriptor-ring push/pop batches, fault injections — flows
through :meth:`absorb` exactly once, *before* the retained list and the
flight recorder see it.  Absorbing stamps three logical clocks onto the
event (the new :class:`~repro.obs.trace.TraceEvent` slots):

``seq``
    The recorder's total order: 1, 2, 3, ... over the whole trace.
    The monitor process is the single observer of everything recorded
    (workers surface only through control messages it absorbs), so
    this sequence is a valid Lamport timestamping of the trace.
``clk``
    The per-track Lamport clock — program order within one logical
    process lane (``lvrm``, ``faults``, ``slo``, a synthetic worker
    track...).  The happens-before checker's program-order edges
    follow ``clk``, not ``seq``: two tracks are only ordered where an
    explicit synchronization edge says so.
``epoch``
    The supervision epoch.  Starts at 0 and advances on every fault
    injection and supervisor decision (failover / restart / degrade /
    elect / vip-move), so offline analysis can slice the trace by
    failover generation without re-deriving it from event names.

The trace serializes as JSONL via the ordinary exporters
(:func:`repro.obs.export.events_jsonl`), one event per line with binary
args hex-escaped — ``lvrm-exp replay`` and ``tools/check_races.py``
load it back with :func:`load_trace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.export import events_jsonl, parse_events_jsonl, write_text
from repro.obs.trace import TRACER, PH_COUNTER, TraceEvent

__all__ = ["ReplayRecorder", "SUMMARY_EVENT", "EPOCH_PREFIXES",
           "load_trace", "save_trace"]

#: The trace's final record: a counter event whose args are the
#: record-time counter snapshot the replayer must reproduce.
SUMMARY_EVENT = "replay.summary"

#: An event whose name starts with one of these advances the epoch —
#: the trace's "a supervision decision happened here" boundaries.
EPOCH_PREFIXES = ("fault.", "supervisor.", "cluster.elect",
                  "cluster.vip_move")


class ReplayRecorder:
    """Collects and stamps every traced event while attached.

    Not reentrant and deliberately not a singleton: one recording is
    one recorder object, and :meth:`start`/:meth:`stop` guard against
    double-attachment.  The recorder keeps its own event list — it
    survives ``obs.reset()`` and works with ``TRACER.retain`` off, so
    record mode does not force full in-tracer retention.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.seq = 0
        self.epoch = 0
        self._clk: Dict[str, int] = {}
        self._attached = False
        self._prev_enabled = False
        #: Filled by :meth:`finalize`; served by the ``/replay`` route.
        self.summary: Optional[Dict] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ReplayRecorder":
        """Attach to the tracer and enable emission process-wide."""
        if self._attached:
            raise RuntimeError("replay recorder already attached")
        if TRACER.replay is not None:
            raise RuntimeError("another replay recorder is attached")
        self._attached = True
        self._prev_enabled = TRACER.enabled
        TRACER.replay = self
        TRACER.enable()
        return self

    def stop(self) -> "ReplayRecorder":
        """Detach; tracing returns to its pre-recording state."""
        if self._attached:
            self._attached = False
            TRACER.replay = None
            if not self._prev_enabled:
                TRACER.disable()
        return self

    def __enter__(self) -> "ReplayRecorder":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sink ----------------------------------------------------------
    def absorb(self, event: TraceEvent) -> None:
        """Stamp ``seq``/``clk``/``epoch`` onto one event and keep it."""
        self.seq += 1
        event.seq = self.seq
        clk = self._clk.get(event.track, 0) + 1
        self._clk[event.track] = clk
        event.clk = clk
        name = event.name
        for prefix in EPOCH_PREFIXES:
            if name.startswith(prefix):
                self.epoch += 1
                break
        event.epoch = self.epoch
        self.events.append(event)

    # -- finishing a recording ---------------------------------------------
    def finalize(self, counters: Dict) -> TraceEvent:
        """Append the record-time counter snapshot as the trace's last
        event.  ``counters`` is what the replayer must reproduce
        bit-identically (per-VRI dispatch/drain, per-class admission,
        supervisor ledger — whatever the recording side owns)."""
        self.summary = counters
        event = TraceEvent(SUMMARY_EVENT, ts=0.0, ph=PH_COUNTER,
                           cat="replay", track="replay", args=dict(counters))
        self.absorb(event)
        return event

    # -- export / introspection --------------------------------------------
    def jsonl(self) -> str:
        return events_jsonl(self.events)

    def save(self, path: str) -> None:
        write_text(path, self.jsonl())

    def state(self) -> Dict:
        """The ``/replay`` admin view of a live recording."""
        return {
            "recording": self._attached,
            "events": len(self.events),
            "seq": self.seq,
            "epoch": self.epoch,
            "tracks": {t: c for t, c in sorted(self._clk.items())},
            "finalized": self.summary is not None,
        }


def load_trace(path: str) -> List[TraceEvent]:
    """Load a recorded JSONL trace back into events."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_events_jsonl(fh.read())


def save_trace(path: str, events: List[TraceEvent]) -> None:
    """Write any event list in the recorder's JSONL format."""
    write_text(path, events_jsonl(events))
