"""Offline happens-before race checking over a recorded trace.

The SDNRacer approach, scaled to the LVRM's shape: treat every trace
``track`` as one logical process, build the happens-before partial
order from program order plus the explicit synchronization the trace
records, then flag *conflicting* operation pairs on the same resource
that the partial order leaves concurrent.

Happens-before edges
--------------------
* **program order** — consecutive events on one track;
* **fork** — ``worker.spawn`` (args ``vri=N``) happens-before the
  first later event on track ``vriN`` (synthetic worker lanes; the
  runtime monitor records workers only through their messages);
* **message** — a ``ctrl.send`` happens-before the ``ctrl.recv`` that
  matches it FIFO on ``(kind, src, dst)``;
* **heartbeat** — any ``ctrl.recv`` with ``src=S`` happens-after the
  latest prior event on track ``vriS`` (absorbing a worker's message
  proves its earlier operations completed);
* **ring publish** — a ``ring.pop`` of ``n`` records happens-after
  every ``ring.push`` whose records it consumed (FIFO per ring): the
  SPSC ring's release/acquire pair is the data plane's only
  cross-process synchronization, so it must be an HB edge or every
  push/pop pair would read as a race.

Conflict rules
--------------
Each event maps to resource accesses; two accesses conflict when they
touch the same resource, at least one writes, and they sit on
different tracks.  A conflicting pair with no HB path is a race,
classified as one of the pair patterns this codebase has actually been
bitten by — restart vs. in-flight descriptor reclaim, arena free vs.
borrowed FrameView, replication delta vs. VIP move — or
``unclassified``.

Reachability uses per-node vector clocks over tracks (built in one
forward pass: the trace's total order is a topological order of the HB
DAG), so the check is O(events x tracks) plus the conflicting-pair
scan — no graph library needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import TraceEvent

__all__ = ["build_hb", "check_races", "HbGraph"]

#: Stop scanning a resource's access pairs past this many comparisons;
#: the report flags the truncation instead of silently under-reporting.
MAX_PAIRS = 100_000


def _worker_track(vri) -> str:
    return f"vri{vri}"


class HbGraph:
    """The happens-before relation over one trace."""

    def __init__(self, events: Sequence[TraceEvent]):
        self.events = list(events)
        self.n = len(self.events)
        # Assigned program-order clocks (trusted from the recorder when
        # present, rebuilt for hand-written traces).
        self.clk: List[int] = [0] * self.n
        self.track_of: List[str] = [e.track for e in self.events]
        # Vector clock per node: track -> highest clk known to
        # happen-before (and including) this node.
        self.vc: List[Dict[str, int]] = [dict() for _ in range(self.n)]
        self._build()

    def _build(self) -> None:
        last_on_track: Dict[str, int] = {}       # track -> node index
        clk_counter: Dict[str, int] = {}
        pending_spawn: Dict[str, int] = {}       # worker track -> spawn node
        send_fifo: Dict[Tuple, List[int]] = {}   # (kind, src, dst) -> nodes
        # ring vri -> FIFO of [node, records_remaining]
        ring_fifo: Dict[object, List[List[int]]] = {}
        for i, ev in enumerate(self.events):
            track = ev.track
            clk = clk_counter.get(track, 0) + 1
            clk_counter[track] = clk
            self.clk[i] = clk
            preds: List[int] = []
            prev = last_on_track.get(track)
            if prev is not None:
                preds.append(prev)
            name, args = ev.name, ev.args
            # fork edge: spawn -> first event on the worker's own lane
            spawn = pending_spawn.pop(track, None)
            if spawn is not None:
                preds.append(spawn)
            if name == "worker.spawn" and args.get("vri") is not None:
                pending_spawn.setdefault(
                    _worker_track(args["vri"]), i)
            elif name == "ctrl.send":
                key = (args.get("kind"), args.get("src"), args.get("dst"))
                send_fifo.setdefault(key, []).append(i)
            elif name == "ctrl.recv":
                key = (args.get("kind"), args.get("src"), args.get("dst"))
                fifo = send_fifo.get(key)
                if fifo:
                    preds.append(fifo.pop(0))
                elif args.get("src") is not None:
                    # heartbeat edge: the sender's lane up to its latest
                    # recorded event happens-before this receipt.
                    sender = last_on_track.get(
                        _worker_track(args["src"]))
                    if sender is not None:
                        preds.append(sender)
            elif name == "ring.push" and args.get("vri") is not None:
                n = int(args.get("n", 1))
                ring_fifo.setdefault(args["vri"], []).append([i, n])
            elif name == "ring.pop" and args.get("vri") is not None:
                need = int(args.get("n", 1))
                fifo = ring_fifo.get(args["vri"], [])
                while need > 0 and fifo:
                    node, left = fifo[0]
                    preds.append(node)
                    take = min(left, need)
                    need -= take
                    fifo[0][1] -= take
                    if fifo[0][1] == 0:
                        fifo.pop(0)
            # merge predecessor vector clocks, then add self
            vc = self.vc[i]
            for p in preds:
                for t, c in self.vc[p].items():
                    if c > vc.get(t, 0):
                        vc[t] = c
            vc[track] = clk
            last_on_track[track] = i
        self.tracks = sorted(clk_counter)

    def happens_before(self, a: int, b: int) -> bool:
        """True when node ``a`` happens-before (or is) node ``b``."""
        return self.vc[b].get(self.track_of[a], 0) >= self.clk[a]

    def concurrent(self, a: int, b: int) -> bool:
        return not (self.happens_before(a, b)
                    or self.happens_before(b, a))


def build_hb(events: Sequence[TraceEvent]) -> HbGraph:
    """Build the happens-before graph for a trace."""
    return HbGraph(events)


# ---------------------------------------------------------------------------
# Conflicting accesses
# ---------------------------------------------------------------------------

_W, _R = True, False


def _accesses(ev: TraceEvent) -> List[Tuple[str, bool]]:
    """``(resource, is_write)`` pairs one event performs."""
    name, args = ev.name, ev.args
    vri = args.get("vri")
    if name in ("ring.push", "ring.pop") and vri is not None:
        return [(f"ring:{vri}", _W)]
    if name == "arena.reclaim" and vri is not None:
        return [(f"ring:{vri}", _W), ("arena", _W)]
    if name in ("supervisor.failover", "supervisor.restart") \
            and vri is not None:
        # A failover retires the slot's rings; a restart recreates them.
        return [(f"slot:{vri}", _W), (f"ring:{vri}", _W)]
    if name in ("worker.spawn", "worker.retire", "supervisor.degraded",
                "fault.inject") and vri is not None:
        return [(f"slot:{vri}", _W)]
    if name == "arena.free" and args.get("off") is not None:
        return [(f"chunk:{args['off']}", _W)]
    if name == "frame.borrow" and args.get("off") is not None:
        return [(f"chunk:{args['off']}", _R)]
    if name == "cluster.replicate" and args.get("member") is not None:
        return [(f"vip:{args['member']}", _R)]
    if name == "cluster.vip_move" and args.get("member") is not None:
        return [(f"vip:{args['member']}", _W)]
    return []


def _classify(a_name: str, b_name: str, resource: str) -> str:
    names = {a_name, b_name}
    if ({"supervisor.restart", "supervisor.failover"} & names
            and {"arena.reclaim", "ring.push", "ring.pop"} & names):
        return "restart-vs-reclaim"
    if names == {"arena.free", "frame.borrow"}:
        return "free-vs-borrow"
    if names == {"cluster.replicate", "cluster.vip_move"}:
        return "replicate-vs-vip-move"
    return "unclassified"


def check_races(events: Sequence[TraceEvent],
                allow: Sequence[str] = ()) -> Dict:
    """Build the HB graph and report concurrent conflicting pairs.

    ``allow`` names race classifications to report as *explained*
    (known-benign for the workload) — they still appear in the report
    but do not count toward ``n_unexplained``.
    """
    graph = build_hb(events)
    by_resource: Dict[str, List[Tuple[int, bool]]] = {}
    for i, ev in enumerate(graph.events):
        for resource, is_write in _accesses(ev):
            by_resource.setdefault(resource, []).append((i, is_write))
    races: List[Dict] = []
    pairs = 0
    truncated = False
    for resource, accesses in sorted(by_resource.items()):
        for x in range(len(accesses)):
            a, a_w = accesses[x]
            for y in range(x + 1, len(accesses)):
                b, b_w = accesses[y]
                if not (a_w or b_w):
                    continue
                if graph.track_of[a] == graph.track_of[b]:
                    continue  # program order: never a race
                pairs += 1
                if pairs > MAX_PAIRS:
                    truncated = True
                    break
                if graph.concurrent(a, b):
                    ea, eb = graph.events[a], graph.events[b]
                    races.append({
                        "resource": resource,
                        "rule": _classify(ea.name, eb.name, resource),
                        "a": {"seq": ea.seq or a + 1, "name": ea.name,
                              "track": ea.track, "epoch": ea.epoch},
                        "b": {"seq": eb.seq or b + 1, "name": eb.name,
                              "track": eb.track, "epoch": eb.epoch},
                    })
            if truncated:
                break
        if truncated:
            break
    seqs = sorted(e.seq for e in graph.events if e.seq)
    seq_gaps = (seqs[-1] - seqs[0] + 1 - len(seqs)) if seqs else 0
    allowed = set(allow)
    unexplained = [r for r in races if r["rule"] not in allowed]
    return {
        "events": graph.n,
        "tracks": graph.tracks,
        "races": races,
        "n_races": len(races),
        "n_unexplained": len(unexplained),
        "seq_gaps": seq_gaps,
        "checked_pairs": pairs,
        "truncated": truncated,
    }
