"""Replay a recorded trace through the DES engine as a forced schedule.

The recorder's ``seq`` stamps are the runtime's observed total order.
The replayer turns that order into a *forced schedule*: every recorded
event becomes one :meth:`~repro.sim.engine.Simulator.call_at` callback
at a strictly increasing simulated time, so the DES engine executes the
exact interleaving the runtime lived through — no scheduler freedom, no
wall-clock jitter.  The callbacks drive a :class:`TwinState`, the DES
twin of the monitor's counter state (per-VRI dispatch/drain ledgers,
slot liveness, the supervisor ledger, shed/reclaim totals), and the run
ends by recomputing the record-time counter snapshot from nothing but
the trace.

Equivalence is bit-identical dictionary equality against the
``replay.summary`` event the recorder appended at finalize time.  Any
divergence — a counter the runtime incremented without tracing the
event, a replay handler that models a transition wrong, a truncated
trace — shows up as a concrete ``path: recorded != replayed`` mismatch,
not a fuzzy tolerance.  Because the DES is deterministic, replaying the
same trace twice must also produce identical reports; the test suite
asserts that too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.replay.record import SUMMARY_EVENT, load_trace
from repro.obs.trace import TraceEvent
from repro.sim.engine import Simulator

__all__ = ["TwinState", "replay_events", "replay_trace"]

#: Simulated spacing between consecutive forced-schedule callbacks.
_TICK = 1e-6


class TwinState:
    """The DES twin of the monitor's counter state during replay."""

    def __init__(self) -> None:
        self.dispatched: Dict[str, int] = {}
        self.drained: Dict[str, int] = {}
        self.queue: Dict[str, int] = {}
        self.alive: Dict[str, bool] = {}
        self.shed = 0
        self.per_class: Dict[str, int] = {}
        self.reclaimed = 0
        self.failovers = 0
        self.restarts = 0
        self.degraded = 0
        self.faults = 0
        self.spans = 0
        self.ctrl_sent = 0
        self.ctrl_received = 0
        self.anomalies: List[str] = []

    # -- event handlers (one per replayed kind) ----------------------------
    def apply(self, ev: TraceEvent, sim: Simulator) -> None:
        name, args = ev.name, ev.args
        vri = args.get("vri")
        key = str(vri) if vri is not None else None
        if name == "worker.spawn" and key is not None:
            self.alive[key] = True
            self.dispatched.setdefault(key, 0)
            self.drained.setdefault(key, 0)
            self.queue.setdefault(key, 0)
        elif name == "worker.retire" and key is not None:
            self.alive[key] = False
        elif name == "ring.push" and key is not None:
            n = int(args.get("n", 1))
            self.dispatched[key] = self.dispatched.get(key, 0) + n
            self.queue[key] = self.queue.get(key, 0) + n
        elif name == "ring.pop" and key is not None:
            n = int(args.get("n", 1))
            self.drained[key] = self.drained.get(key, 0) + n
            q = self.queue.get(key, 0) - n
            if q < 0:
                # A pop with no recorded push: either a seq gap or a
                # ring op the runtime performed without tracing it.
                self.anomalies.append(
                    f"ring:{key} popped {-q} untraced records "
                    f"at seq={ev.seq}")
                q = 0
            self.queue[key] = q
        elif name == "frame.shed":
            n = int(args.get("n", 1))
            self.shed += n
            cls = args.get("cls")
            if cls is not None:
                self.per_class[str(cls)] = \
                    self.per_class.get(str(cls), 0) + n
        elif name == "arena.reclaim" and key is not None:
            n = int(args.get("n", 0))
            self.reclaimed += n
            self.queue[key] = max(0, self.queue.get(key, 0) - n)
        elif name == "supervisor.failover" and key is not None:
            self.failovers += 1
            self.alive[key] = False
        elif name == "supervisor.restart" and key is not None:
            self.restarts += 1
            self.alive[key] = True
        elif name == "supervisor.degraded":
            self.degraded += 1
        elif name == "fault.inject":
            self.faults += 1
        elif name == "span.close":
            self.spans += 1
        elif name == "ctrl.send":
            self.ctrl_sent += 1
        elif name == "ctrl.recv":
            self.ctrl_received += 1

    # -- the recomputed record-time snapshot -------------------------------
    def summary(self) -> Dict:
        """Counters in exactly the shape the recorder finalized."""
        per_vri = {
            v: {"dispatched": self.dispatched.get(v, 0),
                "drained": self.drained.get(v, 0)}
            for v in sorted(set(self.dispatched) | set(self.drained),
                            key=lambda k: (len(k), k))
        }
        return {
            "per_vri": per_vri,
            "totals": {
                "dispatched": sum(self.dispatched.values()),
                "drained": sum(self.drained.values()),
                "shed": self.shed,
                "reclaimed": self.reclaimed,
            },
            "supervisor": {
                "failovers": self.failovers,
                "restarts": self.restarts,
                "degraded": self.degraded,
            },
            "faults": self.faults,
            "per_class": {k: self.per_class[k]
                          for k in sorted(self.per_class)},
            "spans": self.spans,
        }


def _diff(path: str, recorded, replayed, out: List[str]) -> None:
    if isinstance(recorded, dict) and isinstance(replayed, dict):
        for k in sorted(set(recorded) | set(replayed), key=str):
            _diff(f"{path}.{k}" if path else str(k),
                  recorded.get(k), replayed.get(k), out)
        return
    if recorded != replayed:
        out.append(f"{path}: recorded={recorded!r} replayed={replayed!r}")


def replay_events(events: Sequence[TraceEvent]) -> Dict:
    """Force-schedule a trace through the DES and verify its counters.

    Returns a report dict: ``ok`` is True when a ``replay.summary``
    record was present and the replayed counters match it bit-for-bit
    with no replay anomalies; ``mismatches`` lists every divergent
    counter path.
    """
    ordered = sorted(events, key=lambda e: e.seq if e.seq else float("inf"))
    expected: Optional[Dict] = None
    state = TwinState()
    sim = Simulator()
    t = 0.0
    for ev in ordered:
        if ev.name == SUMMARY_EVENT:
            expected = ev.args
            continue
        t += _TICK
        sim.call_at(t, lambda e=ev: state.apply(e, sim))
    sim.run()
    replayed = state.summary()
    mismatches: List[str] = []
    if expected is None:
        mismatches.append("trace has no replay.summary record")
    else:
        _diff("", expected, replayed, mismatches)
    return {
        "ok": not mismatches and not state.anomalies,
        "events": len(ordered),
        "replayed": replayed,
        "recorded": expected,
        "mismatches": mismatches,
        "anomalies": state.anomalies,
        "sim_time": sim.now,
    }


def replay_trace(path: str) -> Dict:
    """Load a recorded JSONL trace and replay it."""
    return replay_events(load_trace(path))
