"""Deterministic record/replay for the runtime backend.

The runtime's hard bugs live in interleavings the DES twin cannot
reproduce on its own (ROADMAP item 5).  This package closes the loop:

* :mod:`repro.replay.record` — :class:`ReplayRecorder` taps the global
  tracer and stamps every event with total-order / Lamport / epoch
  clocks, producing a JSONL trace of one runtime run;
* :mod:`repro.replay.replayer` — :func:`replay_events` feeds the trace
  through the DES engine as a forced schedule and verifies the
  recorded counters bit-identically;
* :mod:`repro.replay.hb` — :func:`check_races` builds the
  happens-before graph (fork / message / heartbeat / ring-publish
  edges) and flags concurrent conflicting pairs offline.

Entry points: ``lvrm-exp faults --record-trace``, ``lvrm-exp replay``,
``tools/check_races.py``, and the ``/replay`` admin route.
"""

from repro.replay.record import (EPOCH_PREFIXES, ReplayRecorder,
                                 SUMMARY_EVENT, load_trace, save_trace)
from repro.replay.hb import HbGraph, build_hb, check_races
from repro.replay.replayer import TwinState, replay_events, replay_trace

__all__ = [
    "ReplayRecorder", "SUMMARY_EVENT", "EPOCH_PREFIXES",
    "load_trace", "save_trace",
    "HbGraph", "build_hb", "check_races",
    "TwinState", "replay_events", "replay_trace",
]
