"""Connection tracking for flow-based load balancing (thesis §3.3).

The paper replaces dynamic arrays with hash tables "for the performance
issues in the connection tracking functions, which are called for each
incoming data frame", and refreshes each entry's timestamp on hit (the
``times()`` call it later blames for flow-based overhead in Experiment
3c).  A :class:`FlowTable` reproduces that: a dict keyed by 5-tuple with
per-entry timestamps, idle-timeout expiry, and a bounded size with
oldest-entry eviction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

__all__ = ["FlowTable"]


class FlowTable:
    """5-tuple -> VRI pinning with timestamps and idle expiry."""

    def __init__(self, max_entries: int = 65536, idle_timeout: float = 30.0):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.max_entries = max_entries
        self.idle_timeout = idle_timeout
        #: key -> [vri_id, last_seen].  A mutable list, deliberately: the
        #: per-hit timestamp refresh (the paper's ``times()`` call) then
        #: mutates in place instead of rehashing the 5-tuple key for a
        #: dict store — the hit path is one dict probe total.
        self._table: Dict[Hashable, List] = {}
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._table)

    def entries(self) -> Iterator[Tuple[Hashable, int]]:
        """Live ``(flow key, pinned vri_id)`` pairs, insertion-ordered.

        The HA replication plane (repro.cluster) reads pins through
        this to ship them to a standby; timestamps stay private.
        """
        for key, (vri_id, _last_seen) in self._table.items():
            yield key, vri_id

    def lookup(self, key: Hashable, now: float) -> Optional[int]:
        """VRI pinned to ``key``, refreshing its timestamp; None on miss."""
        entry = self._table.get(key)
        if entry is None:
            self.misses += 1
            return None
        if now - entry[1] > self.idle_timeout:
            del self._table[key]
            self.expired += 1
            self.misses += 1
            return None
        entry[1] = now  # in-place refresh: no rehash of the 5-tuple
        self.hits += 1
        return entry[0]

    def insert(self, key: Hashable, vri_id: int, now: float) -> None:
        """Pin ``key`` to ``vri_id`` (evicting the stalest entry if full)."""
        if key not in self._table and len(self._table) >= self.max_entries:
            oldest = min(self._table, key=lambda k: self._table[k][1])
            del self._table[oldest]
            self.evicted += 1
        self._table[key] = [vri_id, now]

    def invalidate_vri(self, vri_id: int) -> int:
        """Drop every entry pinned to a VRI that no longer exists.

        Called by the VRI monitor on VRI destruction so stale pins do not
        blackhole ("the VRI of the entry is valid" check in Figure 3.3).
        """
        stale = [k for k, (v, _t) in self._table.items() if v == vri_id]
        for key in stale:
            del self._table[key]
        return len(stale)

    def reassign_vri(self, old_vri: int, new_vri: int) -> int:
        """Repin every entry of ``old_vri`` to ``new_vri`` in place.

        The eager sibling of :meth:`invalidate_vri`, used when a
        replacement instance is already known (a supervised restart):
        timestamps are preserved, so long-lived flows keep their idle
        clocks.  Returns how many entries moved.
        """
        moved = 0
        for entry in self._table.values():
            if entry[0] == old_vri:
                entry[0] = new_vri
                moved += 1
        return moved

    def expire_idle(self, now: float) -> int:
        """Bulk-expire idle entries; returns how many were dropped."""
        stale = [k for k, (_v, t) in self._table.items()
                 if now - t > self.idle_timeout]
        for key in stale:
            del self._table[key]
        self.expired += len(stale)
        return len(stale)
