"""Per-VR memory accounting (thesis §3.2 extension).

The thesis: "The design allows flexible changes, for example, to extend
via the function call ``setrlimit()`` with other resource managements
such as the memory management."  It then argues memory is rarely the
binding constraint for routers — which is exactly what an accountant
can *verify* rather than assume.

:class:`MemoryBudget` is the ``setrlimit(RLIMIT_AS)``-analog: a per-VR
byte budget charged when a VRI is created (its four IPC queues plus its
route table and flow-table share) and refunded at destruction.  LVRM
components stay oblivious; the VRI monitor consults the budget like the
affinity policy consults the core map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AllocationError, ConfigError

__all__ = ["VriMemoryModel", "MemoryBudget"]


@dataclass(frozen=True)
class VriMemoryModel:
    """Estimated resident bytes of one VRI's state.

    Defaults mirror the real runtime backend's geometry: 2 KiB slots in
    the data rings, 512-byte slots in the control rings.
    """

    data_slot: int = 2048
    ctrl_slot: int = 512
    #: Route-table bytes per installed prefix (trie node estimate).
    route_entry: int = 96
    #: Flow-table bytes per tracked connection.
    flow_entry: int = 128
    #: Process baseline (stack, code pages attributable to the VRI).
    baseline: int = 256 * 1024

    def vri_bytes(self, queue_capacity: int, n_routes: int,
                  flow_entries: int = 0) -> int:
        if queue_capacity < 1 or n_routes < 0 or flow_entries < 0:
            raise ConfigError("invalid memory-model inputs")
        queues = 2 * queue_capacity * self.data_slot \
            + 2 * queue_capacity * self.ctrl_slot
        return (self.baseline + queues + n_routes * self.route_entry
                + flow_entries * self.flow_entry)


class MemoryBudget:
    """A per-VR resident-memory limit with charge/refund accounting."""

    def __init__(self, limit_bytes: int,
                 model: Optional[VriMemoryModel] = None):
        if limit_bytes <= 0:
            raise ConfigError("memory limit must be positive")
        self.limit_bytes = limit_bytes
        self.model = model or VriMemoryModel()
        self._charges: Dict[int, int] = {}
        self.peak = 0

    @property
    def used(self) -> int:
        return sum(self._charges.values())

    @property
    def available(self) -> int:
        return self.limit_bytes - self.used

    def would_fit(self, nbytes: int) -> bool:
        return nbytes <= self.available

    def charge_vri(self, vri_id: int, queue_capacity: int, n_routes: int,
                   flow_entries: int = 0) -> int:
        """Reserve a VRI's footprint; raises when over budget."""
        if vri_id in self._charges:
            raise AllocationError(f"VRI {vri_id} already charged")
        nbytes = self.model.vri_bytes(queue_capacity, n_routes,
                                      flow_entries)
        if not self.would_fit(nbytes):
            raise AllocationError(
                f"memory budget exceeded: need {nbytes} bytes, "
                f"{self.available} available of {self.limit_bytes}")
        self._charges[vri_id] = nbytes
        self.peak = max(self.peak, self.used)
        return nbytes

    def refund_vri(self, vri_id: int) -> int:
        """Release a destroyed VRI's footprint."""
        try:
            return self._charges.pop(vri_id)
        except KeyError:
            raise AllocationError(f"VRI {vri_id} was never charged")

    def utilization(self) -> float:
        return self.used / self.limit_bytes
