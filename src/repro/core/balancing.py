"""Load balancing among the VRIs of one VR (thesis §3.3, Figure 3.3).

Frame-based schemes pick a VRI per frame:

* :class:`JoinShortestQueue` — lowest estimated load (the default);
* :class:`RoundRobin` — next valid VRI;
* :class:`RandomBalancer` — uniform pick.

:class:`FlowBasedBalancer` wraps any of them: frames of a known 5-tuple
stick to the VRI that got the flow's first frame (avoiding intra-flow
reordering at the cost of coarser granularity and a per-frame hash +
timestamp update — the trade-off Experiment 3c measures).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.core.flows import FlowTable
from repro.hardware.costs import CostModel
from repro.net.frame import Frame
from repro.obs.trace import TRACER as _TRACE

__all__ = ["VriLike", "LoadBalancer", "JoinShortestQueue", "RoundRobin",
           "RandomBalancer", "FlowBasedBalancer", "make_balancer"]


class VriLike(Protocol):
    """What a balancer needs to know about a VRI."""

    vri_id: int

    def load_estimate(self) -> float: ...


class LoadBalancer:
    """Interface shared by all balancing schemes."""

    name = "abstract"

    def pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        if not vris:
            raise ConfigError("cannot balance across zero VRIs")
        choice = self._pick(frame, vris, now)
        if _TRACE.enabled:
            _TRACE.instant("balance.decision", ts=now, cat="balance",
                           track="lvrm", scheme=self.name,
                           vri=choice.vri_id, n_vris=len(vris))
        return choice

    def _pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        raise NotImplementedError

    def decision_cost(self, costs: CostModel, n_vris: int) -> float:
        """CPU seconds LVRM spends choosing (Figure 3.3's loop)."""
        return costs.balance_fixed

    def forget_vri(self, vri_id: int) -> int:
        """Hook: a VRI was destroyed.  Returns how many flow pins the
        removal invalidated (0 for frame-based schemes)."""
        return 0

    def reassign_vri(self, old_vri: int, new_vri: int) -> int:
        """Hook: a VRI was replaced in place (supervised restart).
        Returns how many flow pins moved (0 for frame-based schemes)."""
        return 0


class JoinShortestQueue(LoadBalancer):
    """Forward to the VRI with the lightest estimated load."""

    name = "jsq"

    def _pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        best = vris[0]
        best_load = best.load_estimate()
        for vri in vris[1:]:
            load = vri.load_estimate()
            if load < best_load:
                best, best_load = vri, load
        return best

    def decision_cost(self, costs: CostModel, n_vris: int) -> float:
        return costs.balance_fixed + costs.balance_jsq_per_vri * n_vris


class RoundRobin(LoadBalancer):
    """Cycle through the valid VRIs."""

    name = "rr"

    def __init__(self) -> None:
        self._counter = 0

    def _pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        vri = vris[self._counter % len(vris)]
        self._counter += 1
        return vri


class RandomBalancer:
    """Uniform random pick."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng or np.random.default_rng(2011)

    def pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        if not vris:
            raise ConfigError("cannot balance across zero VRIs")
        choice = vris[int(self._rng.integers(len(vris)))]
        if _TRACE.enabled:
            _TRACE.instant("balance.decision", ts=now, cat="balance",
                           track="lvrm", scheme=self.name,
                           vri=choice.vri_id, n_vris=len(vris))
        return choice

    def decision_cost(self, costs: CostModel, n_vris: int) -> float:
        return costs.balance_fixed

    def forget_vri(self, vri_id: int) -> int:
        return 0

    def reassign_vri(self, old_vri: int, new_vri: int) -> int:
        return 0


class FlowBasedBalancer(LoadBalancer):
    """Flow pinning on top of any frame-based scheme (Figure 3.3,
    "balance": hash-table find with current timestamp, falling back to
    JSQ/Rnd/RR for the flow's first frame)."""

    def __init__(self, inner: LoadBalancer,
                 flow_table: Optional[FlowTable] = None):
        self.inner = inner
        # Explicit None check: an *empty* FlowTable is falsy (len == 0),
        # so ``flow_table or FlowTable()`` would discard a caller's table.
        self.flows = FlowTable() if flow_table is None else flow_table
        #: vri_id -> VRI, rebuilt lazily so the pinned-flow hot path is
        #: a dict probe instead of a linear scan.  Safe because every
        #: VRI removal reaches :meth:`forget_vri` (which clears it) and
        #: additions change ``len(vris)`` (which triggers a rebuild).
        self._by_id: dict = {}

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"flow-{self.inner.name}"

    def pick(self, frame: Frame, vris: Sequence[VriLike], now: float) -> VriLike:
        if not vris:
            raise ConfigError("cannot balance across zero VRIs")
        key = frame.five_tuple
        pinned = self.flows.lookup(key, now)
        if pinned is not None:
            by_id = self._by_id
            if len(by_id) != len(vris):
                by_id = self._by_id = {v.vri_id: v for v in vris}
            vri = by_id.get(pinned)
            if vri is not None:
                if _TRACE.enabled:
                    _TRACE.instant("balance.decision", ts=now,
                                   cat="balance", track="lvrm",
                                   scheme=self.name, vri=vri.vri_id,
                                   n_vris=len(vris), pinned=True)
                return vri
            # The pinned VRI is gone ("... and the VRI of the entry is
            # valid"): fall through and re-pin.
        choice = self.inner.pick(frame, vris, now)
        self.flows.insert(key, choice.vri_id, now)
        return choice

    def decision_cost(self, costs: CostModel, n_vris: int) -> float:
        # Hash lookup + times() timestamp refresh on every frame, plus
        # the inner decision when the flow is new; charging the inner
        # cost every time keeps the model conservative and simple.
        return costs.balance_flow_lookup + self.inner.decision_cost(costs, n_vris)

    def forget_vri(self, vri_id: int) -> int:
        unpinned = self.flows.invalidate_vri(vri_id)
        self._by_id = {}
        self.inner.forget_vri(vri_id)
        return unpinned

    def reassign_vri(self, old_vri: int, new_vri: int) -> int:
        """Failover repin: move the dead VRI's flows to its replacement
        (used by the supervisor when a restart lands before the flows'
        idle timeout; lazier callers use :meth:`forget_vri` and let each
        flow re-balance on its next frame)."""
        moved = self.flows.reassign_vri(old_vri, new_vri)
        self._by_id = {}
        self.inner.forget_vri(old_vri)
        return moved


def make_balancer(name: str, rng: Optional[np.random.Generator] = None,
                  flow_based: bool = False,
                  flow_table: Optional[FlowTable] = None) -> LoadBalancer:
    """Factory: ``"jsq" | "rr" | "random"``, optionally flow-based."""
    base: LoadBalancer
    if name == "jsq":
        base = JoinShortestQueue()
    elif name == "rr":
        base = RoundRobin()
    elif name == "random":
        base = RandomBalancer(rng)  # type: ignore[assignment]
    else:
        raise ConfigError(f"unknown balancing scheme {name!r}")
    if flow_based:
        return FlowBasedBalancer(base, flow_table)
    return base
