"""Virtual-router specifications.

A :class:`VrSpec` is the administrative definition of one VR: which
source subnets it owns (LVRM classifies frames by source IP, thesis
§2.1), what router implementation its VRIs run, and its allocation
limits.  The spec is immutable; runtime state lives in the monitors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.router_types import ClickVrModel, CppVrModel, RouterModel
from repro.errors import ConfigError
from repro.routing.mapfile import parse_map_lines
from repro.routing.prefix import Prefix

__all__ = ["VrType", "VrSpec", "DEFAULT_MAP_LINES"]


class VrType(enum.Enum):
    """The two hosted VR implementations of Chapter 4."""

    CPP = "cpp"
    CLICK = "click"


#: Routes matching the Figure 4.1 testbed: receiver side behind iface 1,
#: sender side behind iface 0 (for replies).
DEFAULT_MAP_LINES = (
    "route 10.2.0.0/16 iface 1",
    "route 10.1.0.0/16 iface 0",
)


@dataclass(frozen=True)
class VrSpec:
    """One virtual router's configuration."""

    name: str
    #: Source subnets whose traffic this VR processes.
    subnets: Tuple[Prefix, ...]
    vr_type: VrType = VrType.CPP
    #: Map-file lines initializing the VRIs' route tables (thesis §3.7).
    map_lines: Tuple[str, ...] = DEFAULT_MAP_LINES
    #: Click configuration script (Click VRs only; None = the default
    #: minimal forwarder).
    click_config: Optional[str] = None
    #: Extra per-frame processing (Experiments 2b-3b use 1/60 ms).
    dummy_load: float = 0.0
    #: Upper bound on simultaneously live VRIs.
    max_vris: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("VR needs a name")
        if not self.subnets:
            raise ConfigError(f"VR {self.name!r} owns no subnets")
        if self.dummy_load < 0:
            raise ConfigError("dummy_load cannot be negative")
        if self.max_vris < 1:
            raise ConfigError("max_vris must be >= 1")
        if self.vr_type is VrType.CPP and self.click_config is not None:
            raise ConfigError("click_config given for a C++ VR")

    def owns(self, src_ip: int) -> bool:
        """Whether this VR is responsible for frames from ``src_ip``."""
        return any(p.contains(src_ip) for p in self.subnets)

    def build_router(self) -> RouterModel:
        """Instantiate the per-VRI router model.

        Each VRI gets its own instance (VRIs of one VR share the same
        *configuration*, not the same in-memory state).
        """
        if self.vr_type is VrType.CPP:
            routes, _arp = parse_map_lines(self.map_lines)
            return CppVrModel(routes, dummy_load=self.dummy_load)
        return ClickVrModel(self.click_config, dummy_load=self.dummy_load)
