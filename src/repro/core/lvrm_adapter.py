"""The LVRM adapter (thesis §3.6): the VRI-side API.

In the real system this is the library linked into every VRI exposing
``fromLVRM()`` / ``toLVRM()`` over the shared-memory queues, initialized
with the shm identifier passed in the VRI's main arguments; with dynamic
thresholds enabled it also measures the VRI's service rate (the gap
between successive ``fromLVRM()`` completions while busy) and reports it
to LVRM.

In the DES the queue plumbing is explicit, so this class carries the
measurement duty plus the frame counters; the real-process backend in
:mod:`repro.runtime.api` implements the byte-moving twin.
"""

from __future__ import annotations

from repro.core.estimation import ServiceRateEstimator

__all__ = ["LvrmAdapter"]


class LvrmAdapter:
    """Service-rate estimation + counters for one VRI."""

    def __init__(self, vri_id: int, estimator: ServiceRateEstimator = None):
        self.vri_id = vri_id
        self.estimator = estimator if estimator is not None else ServiceRateEstimator()
        self.from_lvrm_calls = 0
        self.to_lvrm_calls = 0

    def record_service(self, service_time: float) -> None:
        """One frame fully processed, taking ``service_time`` seconds."""
        self.from_lvrm_calls += 1
        self.estimator.observe_service(service_time)

    def record_output(self) -> None:
        self.to_lvrm_calls += 1

    def service_rate(self) -> float:
        """Estimated frames/s this VRI can sustain (0 until warm)."""
        return self.estimator.rate()
