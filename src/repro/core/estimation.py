"""Load estimation (thesis §3.4, Figure 3.4).

The VRI adapter estimates each VRI's load; the VR monitor estimates each
VR's aggregate arrival rate; with dynamic thresholds, the LVRM adapter
also estimates each VRI's service rate.  All three use the paper's
exponential weighted average update::

    Average_Load <- (current + weight * Average_Load) / (1 + weight)

which converges to the sample mean for stationary input and tracks
changes with time constant ~``weight`` samples.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import TRACER as _TRACE

__all__ = ["ewma_update", "LoadEstimator", "EwmaQueueLength",
           "EwmaArrivalRate", "ServiceRateEstimator"]


def ewma_update(average: Optional[float], current: float,
                weight: float) -> float:
    """One step of the paper's EWMA (Figure 3.4, "estimate")."""
    if weight < 0:
        raise ValueError(f"weight must be >= 0, got {weight}")
    if average is None:
        return current
    return (current + weight * average) / (1.0 + weight)


class LoadEstimator:
    """Interface: per-VRI load estimate consumed by JSQ balancing."""

    def observe(self, now: float, queue_len: int) -> None:
        """Record one observation (called when a frame is dispatched)."""
        raise NotImplementedError

    def get(self) -> float:
        """Current load estimate; lower means less loaded."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class EwmaQueueLength(LoadEstimator):
    """EWMA of the incoming data queue's occupancy (the default: the
    paper measures "the VRI adapter's ring buffer's data count")."""

    def __init__(self, weight: float = 8.0):
        if weight < 0:
            raise ValueError("weight must be >= 0")
        self.weight = weight
        self._avg: Optional[float] = None
        #: Label used in ``ewma.update`` trace events (set by the owner).
        self.trace_name = ""

    def observe(self, now: float, queue_len: int) -> None:
        if queue_len < 0:
            raise ValueError("queue length cannot be negative")
        self._avg = ewma_update(self._avg, float(queue_len), self.weight)
        if _TRACE.enabled:
            _TRACE.instant("ewma.update", ts=now, cat="estimation",
                           track="estimation",
                           estimator=self.trace_name or "queue_len",
                           sample=queue_len, value=self._avg)

    def get(self) -> float:
        return 0.0 if self._avg is None else self._avg

    def reset(self) -> None:
        self._avg = None


class EwmaArrivalRate(LoadEstimator):
    """EWMA of inter-arrival time, reported as a rate (frames/s).

    The "arrival time" variant of Figure 3.4: the VR monitor uses it to
    estimate each VR's offered load for core allocation.
    """

    def __init__(self, weight: float = 32.0):
        if weight < 0:
            raise ValueError("weight must be >= 0")
        self.weight = weight
        self._last: Optional[float] = None
        self._avg_gap: Optional[float] = None
        self.samples = 0
        #: Label used in ``ewma.update`` trace events (set by the owner).
        self.trace_name = ""

    def observe(self, now: float, queue_len: int = 0) -> None:
        if self._last is not None:
            gap = now - self._last
            if gap < 0:
                raise ValueError("time went backwards")
            # Coincident arrivals carry no inter-arrival information.
            if gap > 0.0:
                self._avg_gap = ewma_update(self._avg_gap, gap, self.weight)
                self.samples += 1
                if _TRACE.enabled:
                    _TRACE.instant("ewma.update", ts=now, cat="estimation",
                                   track="estimation",
                                   estimator=self.trace_name or "arrival",
                                   sample=gap, value=self._avg_gap)
        self._last = now

    def get(self) -> float:
        """Estimated arrival rate in events/second (0 until warm)."""
        if self._avg_gap is None or self._avg_gap <= 0.0:
            return 0.0
        return 1.0 / self._avg_gap

    def rate(self, now: Optional[float] = None,
             idle_timeout: float = 1.0) -> float:
        """Rate estimate that decays to zero when arrivals stop.

        Without this, a VR whose traffic ceased would keep its last rate
        forever and never release cores.  If the gap since the last
        arrival exceeds both the EWMA gap and ``idle_timeout``, the
        current silence is used as the effective inter-arrival time.
        """
        base = self.get()
        if now is None or self._last is None:
            return base
        silence = now - self._last
        if silence > idle_timeout and (self._avg_gap is None
                                       or silence > self._avg_gap):
            return 1.0 / silence if silence > 0 else 0.0
        return base

    def reset(self) -> None:
        self._last = None
        self._avg_gap = None
        self.samples = 0


class ServiceRateEstimator:
    """Departure-rate estimate for dynamic thresholds (thesis §3.6).

    The LVRM adapter measures the time between successive ``fromLVRM()``
    completions at a VRI while it is busy, i.e. the per-frame service
    time; the VR monitor compares arrival rate against the summed
    service rates.  The paper prefers this over ``getrusage()`` because
    it is directly comparable with the arrival rate.
    """

    def __init__(self, weight: float = 32.0):
        if weight < 0:
            raise ValueError("weight must be >= 0")
        self.weight = weight
        self._avg_service: Optional[float] = None
        self.samples = 0

    def observe_service(self, service_time: float) -> None:
        if service_time <= 0:
            raise ValueError("service time must be positive")
        self._avg_service = ewma_update(self._avg_service, service_time,
                                        self.weight)
        self.samples += 1

    def rate(self) -> float:
        """Estimated service rate (frames/s); 0 until warm."""
        if self._avg_service is None or self._avg_service <= 0:
            return 0.0
        return 1.0 / self._avg_service

    def reset(self) -> None:
        self._avg_service = None
        self.samples = 0
