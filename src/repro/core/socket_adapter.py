"""Socket-adapter factory (thesis §3.1).

LVRM obtains frames by contacting the socket adapter; which lower-level
mechanism the adapter polls is a configuration detail.  This factory
builds the right :class:`~repro.net.capture.CaptureBackend` by name:

* ``"raw-socket"`` — BSD raw socket (recvfrom/send);
* ``"pf-ring"`` — PF_RING both ways (LVRM 1.1);
* ``"pf-ring-1.0"`` — PF_RING rx, raw-socket tx (LVRM 1.0, when PF_RING
  < 3.7.5 had no send path);
* ``"memory"`` — main-memory trace in, discard out (Experiments 1c/1d).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.hardware.costs import CostModel
from repro.net.capture import (CaptureBackend, MemoryCapture, PfRingCapture,
                               RawSocketCapture)
from repro.net.frame import Frame
from repro.net.nic import Nic
from repro.sim.engine import Simulator

__all__ = ["make_socket_adapter", "SOCKET_ADAPTER_NAMES"]

SOCKET_ADAPTER_NAMES = ("raw-socket", "pf-ring", "pf-ring-1.0", "memory")


def make_socket_adapter(name: str, sim: Simulator, costs: CostModel,
                        nics: Optional[Sequence[Nic]] = None,
                        trace: Optional[Iterable[Frame]] = None,
                        trace_rate_fps: Optional[float] = None) -> CaptureBackend:
    """Build a socket adapter variant by name."""
    if name == "memory":
        if trace is None:
            raise ConfigError("memory adapter needs a frame trace")
        return MemoryCapture(sim, trace, costs, rate_fps=trace_rate_fps)
    if nics is None:
        raise ConfigError(f"{name!r} adapter needs NICs")
    if name == "raw-socket":
        return RawSocketCapture(sim, nics, costs)
    if name == "pf-ring":
        return PfRingCapture(sim, nics, costs)
    if name == "pf-ring-1.0":
        return PfRingCapture(sim, nics, costs, tx_via_raw_socket=True)
    raise ConfigError(
        f"unknown socket adapter {name!r}; expected one of {SOCKET_ADAPTER_NAMES}")
