"""Hosted VR types (thesis §3.8).

Two router models, matching the paper's hosted VRs:

* :class:`CppVrModel` — "a simple data forwarding program written in
  C++": one LPM lookup and an interface stamp, tiny per-frame cost.
* :class:`ClickVrModel` — a real mini-Click pipeline
  (:mod:`repro.core.click`); per-frame cost scales with the number of
  elements traversed, which is what separates the two VR types in every
  figure.

Both accept the *dummy processing load* Experiments 2b–3b add (1/60 ms
per frame) to make the workload CPU-bound.
"""

from __future__ import annotations

from typing import Optional

from repro.core.click import ClickConfig, DEFAULT_FORWARDER_CONFIG, parse_click_config
from repro.errors import RoutingError
from repro.hardware.costs import CostModel
from repro.net.frame import Frame
from repro.routing.table import RouteTable

__all__ = ["RouterModel", "CppVrModel", "ClickVrModel"]


class RouterModel:
    """Interface: per-frame processing of a hosted router."""

    name = "abstract"

    def __init__(self, dummy_load: float = 0.0):
        if dummy_load < 0:
            raise ValueError("dummy load cannot be negative")
        #: Extra per-frame busy time (the 1/60 ms of Experiments 2b-3b).
        self.dummy_load = dummy_load
        self.forwarded = 0
        self.dropped = 0

    def service_time(self, frame: Frame, costs: CostModel) -> float:
        """CPU seconds to process one frame (excluding IPC)."""
        raise NotImplementedError

    def process(self, frame: Frame) -> bool:
        """Routing decision: stamp ``frame.out_iface``; False = drop."""
        raise NotImplementedError


class CppVrModel(RouterModel):
    """The minimal C++ forwarder: LPM lookup + interface stamp."""

    name = "cpp"

    def __init__(self, routes: RouteTable, dummy_load: float = 0.0):
        super().__init__(dummy_load)
        if len(routes) == 0:
            raise RoutingError("C++ VR needs at least one route")
        self.routes = routes
        # Memoized lookup when the table offers one (RouteTable does;
        # the BruteForceTable oracle does not).
        self._get = getattr(routes, "get_cached", routes.get)

    def service_time(self, frame: Frame, costs: CostModel) -> float:
        return costs.cpp_vr_cost + self.dummy_load

    def process(self, frame: Frame) -> bool:
        iface = self._get(frame.dst_ip)
        if iface is None:
            self.dropped += 1
            return False
        frame.out_iface = iface
        self.forwarded += 1
        return True


class ClickVrModel(RouterModel):
    """A Click VR: parses a configuration script into an element
    pipeline and relays each frame through it."""

    name = "click"

    def __init__(self, config_text: Optional[str] = None,
                 dummy_load: float = 0.0):
        super().__init__(dummy_load)
        self.config: ClickConfig = parse_click_config(
            config_text if config_text is not None else DEFAULT_FORWARDER_CONFIG)
        if self.config.n_elements == 0:
            raise RoutingError("Click VR config has an empty pipeline")

    def service_time(self, frame: Frame, costs: CostModel) -> float:
        return (self.config.n_elements * costs.click_element_cost
                + self.dummy_load)

    def process(self, frame: Frame) -> bool:
        result = self.config.run(frame)
        if result is None or result.out_iface is None:
            self.dropped += 1
            return False
        self.forwarded += 1
        return True
