"""A running VR instance (thesis §3.7), as a DES process.

The VRI loop reproduces the paper's consumer discipline: any pending
control event is handled before any data frame (control queues have
priority, §2.1).  Per data frame the VRI pays the IPC pop, runs its
router model (plus the experiment's dummy load and a small lognormal
service jitter), stamps the output interface, and pushes to its outgoing
data queue.  When both incoming queues are empty the process sleeps on a
wake hook — the DES stand-in for the real busy-poll.

Destruction is ``kill()``: the monitor interrupts the process and counts
whatever was left in the queues as dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.lvrm_adapter import LvrmAdapter
from repro.core.router_types import RouterModel
from repro.core.vri_adapter import VriAdapter
from repro.hardware.machine import Core
from repro.ipc.messages import ControlEvent
from repro.ipc.queues import VriChannels
from repro.ipc.sim_queue import Corrupted
from repro.obs.registry import default_registry
from repro.obs.trace import TRACER as _TRACE
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt

__all__ = ["VriRuntime"]


class VriRuntime:
    """One live VRI: core binding, queues, router, estimators, process."""

    def __init__(self, sim: Simulator, vri_id: int, vr_name: str,
                 core: Core, channels: VriChannels, router: RouterModel,
                 costs, cross_socket: bool, per_frame_penalty: float,
                 rng: np.random.Generator,
                 on_output: Callable[[], None],
                 service_jitter: Optional[float] = None,
                 obs_labels: Optional[Dict[str, str]] = None):
        self.sim = sim
        self.vri_id = vri_id
        self.vr_name = vr_name
        self.core = core
        self.channels = channels
        self.router = router
        self.costs = costs
        self.cross_socket = cross_socket
        self.per_frame_penalty = per_frame_penalty
        self._rng = rng
        self._on_output = on_output
        self._jitter = (costs.service_jitter if service_jitter is None
                        else service_jitter)
        self.adapter = VriAdapter(vri_id)
        self.lvrm_adapter = LvrmAdapter(vri_id)
        #: Extra cost charged to *LVRM* per dispatched frame (kernel-
        #: managed placements thrash the producer-side cache lines too).
        self.producer_penalty = 0.0
        #: Experiment hook: called with each control event received.
        self.control_handler: Optional[Callable[[ControlEvent, "VriRuntime"], None]] = None
        self.processed = 0
        # Drop counters live on the obs registry (the ``vri`` label is
        # globally unique per process); ``dropped_*`` properties below
        # are the read-through views the snapshots and tests consume.
        reg = default_registry()
        # Same family names as the runtime worker's local registry, so a
        # DES run and a merged runtime run expose identical metric names.
        # ``obs_labels`` is the owning monitor's instance scope (the
        # ``lvrm`` label): the SLO watchdog selects on it, so this run's
        # drop counters stay distinct from earlier runs' in one process.
        labels = {**(obs_labels or {}), "vr": vr_name, "vri": str(vri_id)}
        self._c_frames = reg.counter(
            "vri_frames_total",
            "frames the VRI popped from its incoming ring", **labels)
        self._c_forwarded = reg.counter(
            "vri_forwarded_total",
            "frames the VRI routed and handed back", **labels)
        self._c_no_route = reg.counter(
            "vri_dropped_no_route_total",
            "frames dropped by a VRI: no route for the destination",
            **labels)
        self._c_out_full = reg.counter(
            "vri_dropped_out_full_total",
            "frames dropped by a VRI: outgoing data queue full", **labels)
        self._c_corrupt = reg.counter(
            "vri_dropped_corrupt_total",
            "frames discarded by a VRI: slot corrupted (injected fault)",
            **labels)
        self.ctrl_received = 0
        self.alive = True
        #: Why this VRI died, when it died by fault rather than by the
        #: monitor's orderly ``kill()`` (None while alive / after kill).
        self.failed: Optional[str] = None
        #: Sim time :meth:`fail` fired.  The supervisor declares the
        #: crash only once the corpse is a full supervision period old
        #: (one missed check-in) — a polling monitor cannot observe a
        #: death in the same instant it happens, and that detection
        #: window is where a crash's frame losses actually come from.
        self.t_died: Optional[float] = None
        #: True while the instance is wedged by an injected hang.
        self.hung = False
        #: Multiplier on every service time (injected slowdown).
        self.slow_factor = 1.0
        #: Sim time of the last control event or frame this VRI finished
        #: handling — the supervisor's liveness signal: a VRI with queued
        #: input whose ``last_progress`` goes stale is hung, not idle.
        self.last_progress = sim.now
        #: The placement this VRI was created with (set by the VRI
        #: monitor); the supervisor respawns a crashed VRI onto it.
        self.placement = None
        self.process = sim.process(self._run())

    # -- read-through drop-counter views ------------------------------------------
    @property
    def dropped_no_route(self) -> int:
        return self._c_no_route.value

    @property
    def dropped_out_full(self) -> int:
        return self._c_out_full.value

    @property
    def dropped_corrupt(self) -> int:
        return self._c_corrupt.value

    @property
    def fault_slot_dropped(self) -> int:
        """Records lost to injected slot drops on this VRI's queues."""
        return (self.channels.data_in.fault_dropped
                + self.channels.data_out.fault_dropped)

    # -- balancer-facing interface ------------------------------------------------
    def load_estimate(self) -> float:
        """Load signal for JSQ: smoothed history plus current backlog.

        The EWMA alone goes stale for VRIs that stop receiving frames
        (their estimate is only refreshed on dispatch), which makes JSQ
        herd onto one VRI under light load; the instantaneous ring
        occupancy — the very "data count" of Figure 3.4 — breaks those
        ties in favour of the actually-idle instances.
        """
        return (self.adapter.load_estimate()
                + self.channels.data_in.data_count)

    @property
    def queue_len(self) -> int:
        return self.channels.data_in.data_count

    # -- lifecycle ----------------------------------------------------------------
    def kill(self) -> None:
        """The monitor's ``kill()``: interrupt the process immediately."""
        self.alive = False
        self.process.interrupt("kill")

    # -- injected failures (repro.faults) -------------------------------------------
    def fail(self, reason: str = "crash") -> None:
        """Die abruptly, as if the instance segfaulted.

        Unlike :meth:`kill` this is not the monitor's doing: the VRI
        just stops, queues still holding whatever was in flight, and the
        supervisor discovers the corpse on its next liveness check.
        """
        self.alive = False
        self.failed = reason
        self.t_died = self.sim.now
        self.process.interrupt(("crash", reason))

    def hang(self) -> None:
        """Wedge the instance: the process stops consuming forever.

        The OS-process analogue is a worker spinning in a deadlock — it
        is *alive* (``kill()`` still works) but makes no progress.  Only
        the supervisor's stale-``last_progress`` check can tell it apart
        from an idle instance.
        """
        self.hung = True
        self.process.interrupt("hang")

    def set_slow(self, factor: float) -> None:
        """Scale every subsequent service time by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"negative slow factor: {factor!r}")
        self.slow_factor = factor

    def drain_losses(self) -> int:
        """Count (and clear) frames stranded in the queues at death."""
        stranded = 0
        for q in (self.channels.data_in, self.channels.data_out):
            while q.try_pop() is not None:
                stranded += 1
        for q in (self.channels.ctrl_in, self.channels.ctrl_out):
            while q.try_pop() is not None:
                pass
        return stranded

    # -- control plane ------------------------------------------------------------
    def send_control(self, event: ControlEvent):
        """Generator: emit a control event from inside this VRI's context
        (charges the push cost to this VRI's core, as the real
        ``toLVRM()`` would)."""
        cost = self.costs.ipc_ctrl_cost(event.size, self.cross_socket)
        yield from self.core.execute(cost, owner=self, time_class="us")
        self.channels.ctrl_out.try_push(event)
        self._on_output()

    # -- the VRI main loop -----------------------------------------------------------
    def _service_multiplier(self) -> float:
        if self._jitter <= 0.0:
            return 1.0
        sigma = self._jitter
        # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
        return float(self._rng.lognormal(-0.5 * sigma * sigma, sigma))

    def _run(self):
        try:
            yield from self._serve()
        except Interrupt as intr:
            if intr.cause == "hang":
                # Wedged, not dead: park on an event that never fires.
                # The supervisor's liveness check eventually kill()s us,
                # which lands as a second interrupt right here.
                try:
                    yield self.sim.event()
                except Interrupt:
                    pass
            return "killed"

    def _serve(self):
        sim = self.sim
        costs = self.costs
        ch = self.channels
        while True:
            # Control first: higher priority than data (thesis §2.1).
            event = ch.ctrl_in.try_pop()
            if event is not None:
                cost = costs.ipc_ctrl_cost(event.size, self.cross_socket)
                yield from self.core.execute(cost, owner=self,
                                             time_class="us")
                self.ctrl_received += 1
                self.last_progress = sim.now
                if self.control_handler is not None:
                    self.control_handler(event, self)
                continue

            frame = ch.data_in.try_pop()
            if frame is not None:
                self._c_frames.inc()
                if isinstance(frame, Corrupted):
                    # A torn slot: pay the pop, discard the record.
                    pop = costs.ipc_data_cost(
                        frame.item.size, self.cross_socket)
                    yield from self.core.execute(pop, owner=self,
                                                 time_class="us")
                    self._c_corrupt.inc()
                    self.last_progress = sim.now
                    if _TRACE.enabled:
                        _TRACE.instant("frame.drop", ts=sim.now,
                                       cat="frame",
                                       track=f"vri{self.vri_id}",
                                       reason="corrupt",
                                       vri=self.vri_id)
                    continue
                if _TRACE.enabled:
                    _TRACE.instant("frame.dequeue", ts=sim.now,
                                   cat="frame", track=f"vri{self.vri_id}",
                                   vr=self.vr_name, vri=self.vri_id,
                                   qlen=ch.data_in.data_count)
                t_pop = sim.now
                pop = costs.ipc_data_cost(frame.size, self.cross_socket)
                service = (self.router.service_time(frame, costs)
                           * self._service_multiplier()
                           * self.slow_factor
                           + self.per_frame_penalty)
                push = costs.ipc_data_cost(frame.size, self.cross_socket)
                # pop + process + push charged in one execution: one
                # timer event per frame instead of three (the HPC
                # guides' per-event overhead rule); ordering of the
                # outgoing push is unchanged.
                yield from self.core.execute(pop + service + push,
                                             owner=self, time_class="us")
                self.lvrm_adapter.record_service(pop + service)
                self.last_progress = sim.now
                if frame.span is not None:
                    # Sampled frame: stamp service entry/exit (sim-time).
                    frame.span += (t_pop, sim.now)
                if not self.router.process(frame):
                    self._c_no_route.inc()
                    if _TRACE.enabled:
                        _TRACE.instant("frame.drop", ts=sim.now,
                                       cat="frame",
                                       track=f"vri{self.vri_id}",
                                       reason="no_route",
                                       vri=self.vri_id)
                    continue
                if ch.data_out.try_push(frame):
                    self.processed += 1
                    self._c_forwarded.inc()
                    self.lvrm_adapter.record_output()
                    self._on_output()
                else:
                    self._c_out_full.inc()
                    if _TRACE.enabled:
                        _TRACE.instant("frame.drop", ts=sim.now,
                                       cat="frame",
                                       track=f"vri{self.vri_id}",
                                       reason="out_full",
                                       vri=self.vri_id)
                continue

            # Idle: sleep until either incoming queue gets an item.
            wake = sim.event()
            fired = [False]

            def _wake() -> None:
                if not fired[0]:
                    fired[0] = True
                    wake.succeed()

            ch.ctrl_in.set_wake(_wake)
            ch.data_in.set_wake(_wake)
            yield wake
            ch.ctrl_in.clear_wake()
            ch.data_in.clear_wake()
