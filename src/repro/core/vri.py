"""A running VR instance (thesis §3.7), as a DES process.

The VRI loop reproduces the paper's consumer discipline: any pending
control event is handled before any data frame (control queues have
priority, §2.1).  Per data frame the VRI pays the IPC pop, runs its
router model (plus the experiment's dummy load and a small lognormal
service jitter), stamps the output interface, and pushes to its outgoing
data queue.  When both incoming queues are empty the process sleeps on a
wake hook — the DES stand-in for the real busy-poll.

Destruction is ``kill()``: the monitor interrupts the process and counts
whatever was left in the queues as dropped.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.lvrm_adapter import LvrmAdapter
from repro.core.router_types import RouterModel
from repro.core.vri_adapter import VriAdapter
from repro.hardware.machine import Core
from repro.ipc.messages import ControlEvent
from repro.ipc.queues import VriChannels
from repro.obs.registry import default_registry
from repro.obs.trace import TRACER as _TRACE
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt

__all__ = ["VriRuntime"]


class VriRuntime:
    """One live VRI: core binding, queues, router, estimators, process."""

    def __init__(self, sim: Simulator, vri_id: int, vr_name: str,
                 core: Core, channels: VriChannels, router: RouterModel,
                 costs, cross_socket: bool, per_frame_penalty: float,
                 rng: np.random.Generator,
                 on_output: Callable[[], None],
                 service_jitter: Optional[float] = None):
        self.sim = sim
        self.vri_id = vri_id
        self.vr_name = vr_name
        self.core = core
        self.channels = channels
        self.router = router
        self.costs = costs
        self.cross_socket = cross_socket
        self.per_frame_penalty = per_frame_penalty
        self._rng = rng
        self._on_output = on_output
        self._jitter = (costs.service_jitter if service_jitter is None
                        else service_jitter)
        self.adapter = VriAdapter(vri_id)
        self.lvrm_adapter = LvrmAdapter(vri_id)
        #: Extra cost charged to *LVRM* per dispatched frame (kernel-
        #: managed placements thrash the producer-side cache lines too).
        self.producer_penalty = 0.0
        #: Experiment hook: called with each control event received.
        self.control_handler: Optional[Callable[[ControlEvent, "VriRuntime"], None]] = None
        self.processed = 0
        # Drop counters live on the obs registry (the ``vri`` label is
        # globally unique per process); ``dropped_*`` properties below
        # are the read-through views the snapshots and tests consume.
        reg = default_registry()
        self._c_no_route = reg.counter(
            "vri_dropped_no_route_total",
            "frames dropped by a VRI: no route for the destination",
            vr=vr_name, vri=str(vri_id))
        self._c_out_full = reg.counter(
            "vri_dropped_out_full_total",
            "frames dropped by a VRI: outgoing data queue full",
            vr=vr_name, vri=str(vri_id))
        self.ctrl_received = 0
        self.alive = True
        self.process = sim.process(self._run())

    # -- read-through drop-counter views ------------------------------------------
    @property
    def dropped_no_route(self) -> int:
        return self._c_no_route.value

    @property
    def dropped_out_full(self) -> int:
        return self._c_out_full.value

    # -- balancer-facing interface ------------------------------------------------
    def load_estimate(self) -> float:
        """Load signal for JSQ: smoothed history plus current backlog.

        The EWMA alone goes stale for VRIs that stop receiving frames
        (their estimate is only refreshed on dispatch), which makes JSQ
        herd onto one VRI under light load; the instantaneous ring
        occupancy — the very "data count" of Figure 3.4 — breaks those
        ties in favour of the actually-idle instances.
        """
        return (self.adapter.load_estimate()
                + self.channels.data_in.data_count)

    @property
    def queue_len(self) -> int:
        return self.channels.data_in.data_count

    # -- lifecycle ----------------------------------------------------------------
    def kill(self) -> None:
        """The monitor's ``kill()``: interrupt the process immediately."""
        self.alive = False
        self.process.interrupt("kill")

    def drain_losses(self) -> int:
        """Count (and clear) frames stranded in the queues at death."""
        stranded = 0
        for q in (self.channels.data_in, self.channels.data_out):
            while q.try_pop() is not None:
                stranded += 1
        for q in (self.channels.ctrl_in, self.channels.ctrl_out):
            while q.try_pop() is not None:
                pass
        return stranded

    # -- control plane ------------------------------------------------------------
    def send_control(self, event: ControlEvent):
        """Generator: emit a control event from inside this VRI's context
        (charges the push cost to this VRI's core, as the real
        ``toLVRM()`` would)."""
        cost = self.costs.ipc_ctrl_cost(event.size, self.cross_socket)
        yield from self.core.execute(cost, owner=self, time_class="us")
        self.channels.ctrl_out.try_push(event)
        self._on_output()

    # -- the VRI main loop -----------------------------------------------------------
    def _service_multiplier(self) -> float:
        if self._jitter <= 0.0:
            return 1.0
        sigma = self._jitter
        # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
        return float(self._rng.lognormal(-0.5 * sigma * sigma, sigma))

    def _run(self):
        sim = self.sim
        costs = self.costs
        ch = self.channels
        try:
            while True:
                # Control first: higher priority than data (thesis §2.1).
                event = ch.ctrl_in.try_pop()
                if event is not None:
                    cost = costs.ipc_ctrl_cost(event.size, self.cross_socket)
                    yield from self.core.execute(cost, owner=self,
                                                 time_class="us")
                    self.ctrl_received += 1
                    if self.control_handler is not None:
                        self.control_handler(event, self)
                    continue

                frame = ch.data_in.try_pop()
                if frame is not None:
                    if _TRACE.enabled:
                        _TRACE.instant("frame.dequeue", ts=sim.now,
                                       cat="frame", track=f"vri{self.vri_id}",
                                       vr=self.vr_name, vri=self.vri_id,
                                       qlen=ch.data_in.data_count)
                    pop = costs.ipc_data_cost(frame.size, self.cross_socket)
                    service = (self.router.service_time(frame, costs)
                               * self._service_multiplier()
                               + self.per_frame_penalty)
                    push = costs.ipc_data_cost(frame.size, self.cross_socket)
                    # pop + process + push charged in one execution: one
                    # timer event per frame instead of three (the HPC
                    # guides' per-event overhead rule); ordering of the
                    # outgoing push is unchanged.
                    yield from self.core.execute(pop + service + push,
                                                 owner=self, time_class="us")
                    self.lvrm_adapter.record_service(pop + service)
                    if not self.router.process(frame):
                        self._c_no_route.inc()
                        if _TRACE.enabled:
                            _TRACE.instant("frame.drop", ts=sim.now,
                                           cat="frame",
                                           track=f"vri{self.vri_id}",
                                           reason="no_route",
                                           vri=self.vri_id)
                        continue
                    if ch.data_out.try_push(frame):
                        self.processed += 1
                        self.lvrm_adapter.record_output()
                        self._on_output()
                    else:
                        self._c_out_full.inc()
                        if _TRACE.enabled:
                            _TRACE.instant("frame.drop", ts=sim.now,
                                           cat="frame",
                                           track=f"vri{self.vri_id}",
                                           reason="out_full",
                                           vri=self.vri_id)
                    continue

                # Idle: sleep until either incoming queue gets an item.
                wake = sim.event()
                fired = [False]

                def _wake() -> None:
                    if not fired[0]:
                        fired[0] = True
                        wake.succeed()

                ch.ctrl_in.set_wake(_wake)
                ch.data_in.set_wake(_wake)
                yield wake
                ch.ctrl_in.clear_wake()
                ch.data_in.clear_wake()
        except Interrupt:
            return "killed"
