"""The paper's contribution: the load-aware virtual router monitor.

The hierarchy mirrors Figure 3.1 exactly:

* :class:`~repro.core.lvrm.Lvrm` — the centralized user-space process:
  socket adapter in front, VR monitor inside;
* :class:`~repro.core.vr_monitor.VrMonitor` — core allocation across VRs
  (fixed / dynamic-fixed-thresholds / dynamic-dynamic-thresholds);
* :class:`~repro.core.vri_monitor.VriMonitor` — per-VR: VRI lifecycle
  (vfork/kill) and load balancing (JSQ / round-robin / random, each
  frame-based or flow-based);
* :class:`~repro.core.vri_adapter.VriAdapter` — per-VRI frame relay and
  load estimation;
* :class:`~repro.core.lvrm_adapter.LvrmAdapter` — the VRI-side API
  (``fromLVRM()``/``toLVRM()``) and service-rate estimation;
* :class:`~repro.core.vri.Vri` — the routing instance itself, hosting a
  C++-style minimal forwarder or a mini-Click pipeline.

Each dimension is a small strategy interface so variants can be swapped
without touching the rest — the extensibility claim under test.
"""

from repro.core.vr import VrSpec, VrType
from repro.core.estimation import (
    LoadEstimator,
    EwmaQueueLength,
    EwmaArrivalRate,
    ServiceRateEstimator,
)
from repro.core.balancing import (
    LoadBalancer,
    JoinShortestQueue,
    RoundRobin,
    RandomBalancer,
    FlowBasedBalancer,
    make_balancer,
)
from repro.core.flows import FlowTable
from repro.core.allocation import (
    CoreAllocator,
    FixedAllocation,
    DynamicFixedThresholds,
    DynamicDynamicThresholds,
)
from repro.core.router_types import RouterModel, CppVrModel, ClickVrModel
from repro.core.click import ClickConfig, ClickElement, parse_click_config
from repro.core.lvrm import Lvrm, LvrmConfig, LvrmStats
from repro.core.memory import MemoryBudget, VriMemoryModel
from repro.core.socket_adapter import make_socket_adapter

__all__ = [
    "VrSpec",
    "VrType",
    "LoadEstimator",
    "EwmaQueueLength",
    "EwmaArrivalRate",
    "ServiceRateEstimator",
    "LoadBalancer",
    "JoinShortestQueue",
    "RoundRobin",
    "RandomBalancer",
    "FlowBasedBalancer",
    "make_balancer",
    "FlowTable",
    "CoreAllocator",
    "FixedAllocation",
    "DynamicFixedThresholds",
    "DynamicDynamicThresholds",
    "RouterModel",
    "CppVrModel",
    "ClickVrModel",
    "ClickConfig",
    "ClickElement",
    "parse_click_config",
    "Lvrm",
    "LvrmConfig",
    "LvrmStats",
    "MemoryBudget",
    "VriMemoryModel",
    "make_socket_adapter",
]
