"""LVRM itself: the centralized user-space monitor process.

The main loop reproduces the workflow of thesis §2.1, one action of each
kind per iteration (the single-threaded LVRM process interleaves its
duties):

1. relay pending inter-VRI *control* events (priority over data);
2. drain one processed frame from a VRI's outgoing data queue and
   transmit it through the socket adapter;
3. capture one raw frame, classify it by source IP to a VR, run the VR
   monitor's allocation pass when due (the "upon receipt of a packet
   after 1 s or more" trigger), and dispatch the frame to a VRI under
   the VR's balancing scheme.

Every step charges its calibrated cost on LVRM's core, so LVRM's finite
dispatch capacity — the effect Experiments 1a/1c measure — emerges from
the simulation rather than being asserted.
"""

from __future__ import annotations

import itertools
import os
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.allocation import CoreAllocator, DynamicFixedThresholds
from repro.core.balancing import make_balancer
from repro.core.vr import VrSpec
from repro.core.vr_monitor import VrMonitor
from repro.core.vri import VriRuntime
from repro.core.vri_monitor import VriMonitor
from repro.errors import AllocationError, ConfigError
from repro.hardware.affinity import AffinityMode, AffinityPolicy
from repro.hardware.costs import CostModel, DEFAULT_COSTS
from repro.hardware.machine import Machine
from repro.net.capture import CaptureBackend, _NicBackend
from repro.ipc.messages import ControlEvent, KIND_RESTART
from repro.net.frame import Frame
from repro.obs.recorder import RECORDER
from repro.obs.registry import default_registry
from repro.obs.slo import SloWatchdog, parse_rules
from repro.obs.spans import SpanRecorder
from repro.obs.trace import TRACER as _TRACE
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timeline import Timeline

__all__ = ["Lvrm", "LvrmConfig", "LvrmStats"]

#: Distinguishes the obs label sets of LVRM instances in one process.
_lvrm_ids = itertools.count(1)


@dataclass(frozen=True)
class LvrmConfig:
    """Tunable knobs of the monitor (all thesis-named)."""

    #: Core the LVRM process is bound to.
    lvrm_core: int = 0
    #: Minimum spacing of allocation passes (the paper's 1 second).
    allocation_period: float = 1.0
    #: Balancing scheme: ``jsq`` | ``rr`` | ``random``.
    balancer: str = "jsq"
    #: Flow-based (5-tuple-pinned) vs frame-based balancing.
    flow_based: bool = False
    #: Affinity mode for VRI placement.
    affinity: AffinityMode = AffinityMode.SIBLING_FIRST
    #: IPC data/control queue capacity (frames/events).
    queue_capacity: int = 512
    #: Record per-frame forwarding latency samples.
    record_latency: bool = True
    #: Run the supervision loop (crash/hang detection + restarts).  Off
    #: by default: the paper's experiments assume healthy instances, and
    #: an idle supervisor would still add periodic events to every run.
    supervise: bool = False
    #: How often the supervisor sweeps for dead/wedged VRIs.
    supervision_period: float = 0.05
    #: A VRI with queued input that has made no progress for this long
    #: is declared hung (then killed and failed over).
    heartbeat_timeout: float = 0.25
    #: First restart delay; doubles per restart already used by the VR,
    #: capped at ``restart_backoff_max`` (bounded exponential backoff).
    restart_backoff: float = 0.02
    restart_backoff_max: float = 0.5
    #: Restarts each VR is entitled to.  Once spent, further failures
    #: degrade the VR to fewer instances instead of churning forever.
    restart_budget: int = 3
    #: Record frame-level latency spans (dispatch / ring-wait / service
    #: / drain attribution into ``frame_latency_seconds{phase=...}``).
    record_spans: bool = True
    #: Span sampling stride: 1 records every frame (sim time is free of
    #: observer effects, so exact is the DES default); N records 1-in-N.
    span_sample_every: int = 1
    #: Declarative SLO rules the supervision loop evaluates each sweep
    #: (JSON string, dicts, or SloRule objects — see repro.obs.slo).
    #: Only swept while ``supervise`` is on, like the liveness checks.
    slo_rules: tuple = ()
    #: Directory for flight-recorder post-mortem dumps when a VRI fails
    #: over; None disables dumping.
    postmortem_dir: Optional[str] = None
    #: Data-plane mode: ``copy`` (frames staged through ring slots, the
    #: paper's baseline) or ``arena`` (zero-copy shared-memory frame
    #: arena + 24-byte descriptor rings; see docs/PERFORMANCE.md).  In
    #: the DES this swaps the IPC cost model to
    #: :meth:`~repro.hardware.costs.CostModel.arena_variant`; in the
    #: runtime backend it selects the real arena.
    data_plane: str = "copy"
    #: Idle-wait behaviour of the runtime poll loops: ``spin`` |
    #: ``yield`` | ``sleep`` (see :class:`repro.ipc.wait.WaitPolicy`).
    #: The DES ignores it (simulated queues never busy-wait).
    wait_strategy: str = "sleep"
    #: Burst kernel of the data-plane hot path: ``scalar`` | ``numpy``
    #: | ``cffi`` (``None`` = session default, which honors the
    #: ``REPRO_KERNEL`` env var; see :mod:`repro.kernels`).  In the DES
    #: this swaps the VR service cost to
    #: :meth:`~repro.hardware.costs.CostModel.kernel_variant`; in the
    #: runtime backend it selects the real kernel in every worker.
    kernel: Optional[str] = None
    #: Overload policy fronting monitor dispatch: ``none`` (legacy
    #: path, no admission stage) | ``tail-drop`` | ``priority-shed`` |
    #: ``adaptive-sample``.  See :mod:`repro.overload` and
    #: docs/OVERLOAD.md.
    overload_policy: str = "none"
    #: Optional :class:`repro.overload.OverloadConfig` overrides (dict
    #: or JSON string): AIMD band, steps, floor, classifier rules.
    overload_opts: Optional[dict] = None
    #: Dispatcher shards of the monitor's RX→classify→admit→steer
    #: pipeline (``None`` = session default, which honors the
    #: ``REPRO_DISPATCH_SHARDS`` env var; 1 = the paper's single
    #: monitor process).  In the DES this swaps the dispatch charge to
    #: :meth:`~repro.hardware.costs.CostModel.dispatch_variant`; in the
    #: runtime backend it spawns real shard processes
    #: (:mod:`repro.dispatch`).
    dispatch_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.allocation_period <= 0:
            raise ConfigError("allocation_period must be positive")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if self.balancer not in ("jsq", "rr", "random"):
            raise ConfigError(f"unknown balancer {self.balancer!r}")
        if self.supervision_period <= 0:
            raise ConfigError("supervision_period must be positive")
        if self.heartbeat_timeout <= 0:
            raise ConfigError("heartbeat_timeout must be positive")
        if self.restart_backoff <= 0 or self.restart_backoff_max <= 0:
            raise ConfigError("restart backoffs must be positive")
        if self.restart_budget < 0:
            raise ConfigError("restart_budget cannot be negative")
        if self.span_sample_every < 1:
            raise ConfigError("span_sample_every must be >= 1")
        if self.data_plane not in ("copy", "arena"):
            raise ConfigError(
                f"data_plane must be 'copy' or 'arena', got "
                f"{self.data_plane!r}")
        from repro.ipc.wait import WAIT_STRATEGIES
        if self.wait_strategy not in WAIT_STRATEGIES:
            raise ConfigError(
                f"wait_strategy must be one of {WAIT_STRATEGIES}, got "
                f"{self.wait_strategy!r}")
        from repro.errors import KernelError
        from repro.kernels import resolve_kernel_kind
        try:
            resolved = resolve_kernel_kind(self.kernel)
        except KernelError as exc:
            raise ConfigError(str(exc)) from exc
        if self.kernel is None:
            # Pin the env-resolved default so the frozen config reports
            # the kernel that actually runs.
            object.__setattr__(self, "kernel", resolved)
        from repro.dispatch import resolve_dispatch_shards
        try:
            shards = resolve_dispatch_shards(self.dispatch_shards)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        if self.dispatch_shards is None:
            # Pin the env-resolved default so the frozen config reports
            # the shard count that actually runs (same as kernel above).
            object.__setattr__(self, "dispatch_shards", shards)
        from repro.overload import OverloadConfig, POLICIES
        if self.overload_policy not in POLICIES:
            raise ConfigError(
                f"unknown overload policy {self.overload_policy!r} "
                f"(choose from {POLICIES})")
        if self.overload_opts is not None:
            # Validate eagerly so a bad band/classifier fails at config
            # time, not mid-run.
            OverloadConfig.from_spec(
                {**self.overload_opts, "policy": self.overload_policy}
                if "policy" not in self.overload_opts
                else self.overload_opts)


@dataclass(frozen=True)
class VriSnapshot:
    """Point-in-time view of one VRI (operator introspection)."""

    vri_id: int
    vr_name: str
    core_id: int
    cross_socket: bool
    queue_depth: int
    load_estimate: float
    service_rate: float
    processed: int
    dropped_no_route: int
    dropped_out_full: int


@dataclass(frozen=True)
class VrSnapshot:
    """Point-in-time view of one hosted VR."""

    name: str
    n_vris: int
    arrival_rate: float
    service_rate: float
    dispatched: int
    dropped_queue_full: int
    vris: tuple


class LvrmStats:
    """Counters and samples the experiments read out.

    The drop counters live on the :mod:`repro.obs` registry (labeled by
    LVRM instance so concurrent gateways in one process stay distinct);
    ``dropped_no_vr`` / ``dropped_queue_full`` are read-through views of
    them, so existing tests and experiment reports keep working.
    """

    def __init__(self, obs_labels: Optional[Dict[str, str]] = None):
        self.captured = 0
        self.forwarded = 0
        self.dropped_tx = 0
        self.ctrl_relayed = 0
        #: Per-frame input-to-output latency through the gateway.
        self.latency = Timeline("gw-latency")
        self.forwarded_by_vr: Dict[str, int] = {}
        labels = dict(obs_labels) if obs_labels else {
            "lvrm": str(next(_lvrm_ids))}
        reg = default_registry()
        # Registry-backed (the SLO drop_rate denominator); the
        # ``dispatched`` property below is its read-through view.
        self.c_dispatched = reg.counter(
            "lvrm_dispatched_total",
            "frames the monitor balanced onto a VRI queue",
            **labels)
        self.drop_no_vr = reg.counter(
            "lvrm_dropped_no_vr_total",
            "frames dropped at capture: no hosted VR owns the source IP",
            **labels)
        self.drop_queue_full = reg.counter(
            "lvrm_dropped_queue_full_total",
            "frames dropped at dispatch: chosen VRI's data queue full",
            **labels)
        # Supervision ledger (see docs/RELIABILITY.md): failures seen,
        # restarts performed, failures absorbed without replacement, and
        # flow pins moved off dead instances.
        self.failovers = reg.counter(
            "supervisor_failovers_total",
            "VRI failures (crash or hang) the supervisor failed over",
            **labels)
        self.restarts = reg.counter(
            "supervisor_restarts_total",
            "VRI replacements the supervisor spawned after a failure",
            **labels)
        self.degraded = reg.counter(
            "supervisor_degraded_total",
            "failures absorbed without a replacement (restart budget "
            "exhausted or no core available)",
            **labels)
        self.flows_reassigned = reg.counter(
            "supervisor_flows_reassigned_total",
            "flow-table pins moved off dead VRIs at failover",
            **labels)

    @property
    def dispatched(self) -> int:
        return self.c_dispatched.value

    @property
    def dropped_no_vr(self) -> int:
        return self.drop_no_vr.value

    @property
    def dropped_queue_full(self) -> int:
        return self.drop_queue_full.value


class Lvrm:
    """The load-aware virtual router monitor (DES backend)."""

    def __init__(self, sim: Simulator, machine: Machine,
                 capture: CaptureBackend,
                 costs: CostModel = DEFAULT_COSTS,
                 config: LvrmConfig = LvrmConfig(),
                 rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.machine = machine
        self.capture = capture
        #: With the arena data plane, every data-queue hop (dispatch,
        #: VRI pop/push, drain) moves a 24-byte descriptor instead of
        #: the payload: swap the cost model *before* any VriMonitor is
        #: built so the whole pipeline charges descriptor costs.  The
        #: payload's one staging copy is charged at dispatch
        #: (``_capture_one``) using the original per-byte cost.
        self._arena_plane = config.data_plane == "arena"
        self._staging_per_byte = costs.ipc_per_byte
        #: The burst kernel reprices VR service (parse+LPM batched away)
        #: before the arena swap reprices the ring hops — the two knobs
        #: compose exactly like the runtime's kernel= and data_plane=.
        costs = costs.kernel_variant(config.kernel)
        costs = costs.dispatch_variant(config.dispatch_shards)
        self.costs = costs.arena_variant() if self._arena_plane else costs
        self.config = config
        self.rng = rng or RngRegistry()
        #: Obs label set shared by this instance's registry entries.
        self.obs_labels = {"lvrm": str(next(_lvrm_ids))}
        self.stats = LvrmStats(obs_labels=self.obs_labels)
        #: Frame-latency spans, sim-time, exact when sample_every=1.
        self.spans = SpanRecorder(
            default_registry(),
            sample_every=(config.span_sample_every if config.record_spans
                          else 0),
            clock=sim.clock(), backend="des",
            labels=dict(self.obs_labels))
        #: Quality objectives swept by the supervision loop (empty
        #: rules = no watchdog, zero cost).
        self.watchdog = (SloWatchdog(parse_rules(config.slo_rules),
                                     default_registry(), clock=sim.clock(),
                                     track="slo",
                                     scope_labels=dict(self.obs_labels),
                                     dump_dir=config.postmortem_dir)
                         if config.slo_rules else None)
        #: Admission stage fronting dispatch (None for policy "none" —
        #: the legacy path pays nothing; see repro.overload).
        from repro.overload import build_controller
        self.overload = build_controller(config.overload_policy,
                                         config.overload_opts,
                                         default_registry(),
                                         scope_labels=dict(self.obs_labels))
        self._postmortems = 0
        machine.topology.validate_core(config.lvrm_core)
        self.core = machine.core(config.lvrm_core)
        self.affinity = AffinityPolicy(machine.topology, costs,
                                       config.lvrm_core, config.affinity)
        self.vr_monitor = VrMonitor(sim, machine, costs, self.affinity,
                                    config.lvrm_core,
                                    period=config.allocation_period,
                                    obs_labels=self.obs_labels)
        self._vri_monitors: List[VriMonitor] = []
        #: Fires when a memory-trace run has fully drained.
        self.done = sim.event()
        #: Experiment hooks called as ``fn(frame, now)`` on each transmit.
        self.on_forward: List[Callable[[Frame, float], None]] = []
        self._wake: Optional[Callable[[], None]] = None
        self._out_rr = 0
        self._process = None
        self._supervisor = None
        #: Monotonic count of debounced VRI deaths (the DES analog of
        #: ``repro.runtime.supervisor.Supervisor.death_epoch``): the
        #: cluster failure detector counts a death only when this
        #: advances, never by re-observing a corpse this instance's own
        #: supervision loop already failed over.
        self.death_epoch = 0
        #: Sim time at which the whole instance was killed
        #: (:meth:`fail_instance`), or None while it is up.
        self.failed_at: Optional[float] = None
        #: Per-VR count of restarts already performed (backoff doubles
        #: with this; at ``restart_budget`` the VR degrades instead).
        self._restarts_used: Dict[str, int] = {}
        #: Failed VRIs awaiting respawn: (vr_name, placement, not_before).
        self._pending_respawns: List[tuple] = []
        #: Injected control-plane delay (repro.faults): the next
        #: ``_ctrl_delay_count`` relayed events each cost an extra
        #: ``_ctrl_delay`` seconds on LVRM's core.
        self._ctrl_delay = 0.0
        self._ctrl_delay_count = 0

    # -- VR hosting -----------------------------------------------------------------
    def add_vr(self, spec: VrSpec,
               allocator: Optional[CoreAllocator] = None,
               memory_budget=None) -> VriMonitor:
        """Host a VR.  Default allocator: dynamic with fixed thresholds at
        60 Kfps per VRI (the Experiment 2c configuration).  An optional
        :class:`~repro.core.memory.MemoryBudget` caps the VR's resident
        footprint (the setrlimit extension of thesis §3.2)."""
        if allocator is None:
            allocator = DynamicFixedThresholds(60_000.0)
        balancer = make_balancer(self.config.balancer,
                                 rng=self.rng.stream(f"balance.{spec.name}"),
                                 flow_based=self.config.flow_based)
        monitor = VriMonitor(
            self.sim, spec, self.machine, self.costs, balancer,
            lvrm_core_id=self.config.lvrm_core,
            queue_capacity=self.config.queue_capacity,
            rng_registry=self.rng, on_output=self._notify,
            memory_budget=memory_budget, obs_labels=self.obs_labels)
        self._vri_monitors.append(monitor)
        self.vr_monitor.add_vr(monitor, allocator)
        self.stats.forwarded_by_vr[spec.name] = 0
        return monitor

    def start(self) -> None:
        """Spawn initial VRIs and launch the main loop (and, when
        ``config.supervise`` is set, the supervision loop)."""
        if self._process is not None:
            raise ConfigError("LVRM already started")
        self._process = self.sim.process(self._run())
        if self.config.supervise:
            self._supervisor = self.sim.process(self._supervise())

    # -- introspection ----------------------------------------------------------------
    def all_vris(self) -> List[VriRuntime]:
        return [v for m in self._vri_monitors for v in m.vris]

    def find_vri(self, vri_id: int) -> Optional[VriRuntime]:
        for vri in self.all_vris():
            if vri.vri_id == vri_id:
                return vri
        return None

    @property
    def instance_alive(self) -> bool:
        """False once the whole monitor was taken down
        (:meth:`fail_instance`) — the cluster-level liveness signal."""
        return self.failed_at is None

    def fail_instance(self, reason: str = "crash") -> None:
        """Kill the entire monitor instance (cluster chaos hook).

        Models losing the whole LVRM process: every VRI dies with it,
        the main and supervision loops stop, and nothing inside the
        instance ever reacts — in-flight frames strand where they are.
        Recovery is the *cluster's* job (repro.cluster promotes the
        standby); this instance stays a corpse.
        """
        if self.failed_at is not None:
            return
        self.failed_at = self.sim.now
        self.death_epoch += 1
        for vri in self.all_vris():
            if vri.alive:
                vri.fail(reason)
        for proc in (self._process, self._supervisor):
            if proc is not None and proc.is_alive:
                proc.interrupt(reason)
        self._pending_respawns.clear()
        RECORDER.note("cluster.instance_failed", ts=self.sim.now,
                      reason=reason, **self.obs_labels)

    def snapshot(self) -> Dict[str, VrSnapshot]:
        """Structured point-in-time state of every hosted VR and VRI.

        The monitoring view an operator (or the examples) reads without
        poking at internals: per-VR rates and drop counters, per-VRI
        core bindings, queue depths, and load/service estimates.
        """
        out: Dict[str, VrSnapshot] = {}
        for monitor in self._vri_monitors:
            vris = tuple(
                VriSnapshot(
                    vri_id=v.vri_id, vr_name=v.vr_name,
                    core_id=v.core.core_id, cross_socket=v.cross_socket,
                    queue_depth=v.channels.data_in.data_count,
                    load_estimate=v.load_estimate(),
                    service_rate=v.lvrm_adapter.service_rate(),
                    processed=v.processed,
                    dropped_no_route=v.dropped_no_route,
                    dropped_out_full=v.dropped_out_full)
                for v in monitor.vris)
            out[monitor.spec.name] = VrSnapshot(
                name=monitor.spec.name, n_vris=len(monitor.vris),
                arrival_rate=monitor.arrival.rate(
                    self.sim.now, idle_timeout=self.config.allocation_period),
                service_rate=monitor.service_rate(),
                dispatched=monitor.dispatched,
                dropped_queue_full=monitor.dropped_queue_full,
                vris=vris)
        return out

    def classify(self, src_ip: int) -> Optional[VriMonitor]:
        """Source-IP inspection: which hosted VR owns this frame."""
        for monitor in self._vri_monitors:
            if monitor.spec.owns(src_ip):
                return monitor
        return None

    # -- the admin plane (poll-based DES twin of the runtime's HTTP one) --------------
    def slot_states(self) -> Dict[str, str]:
        """Per-slot health keyed by live spawn order (vri_ids are
        process-global and would differ between identical runs)."""
        return {f"vri{i}": ("RUNNING" if v.alive else "DEAD")
                for i, v in enumerate(self.all_vris())}

    def topology(self) -> Dict:
        """The VR → VRI → core map the ``/topology`` route serves."""
        return {"backend": "des", **self.obs_labels,
                "balancer": self.config.balancer,
                "vrs": {m.spec.name: [
                    {"vri": v.vri_id, "core": v.core.core_id,
                     "alive": v.alive}
                    for v in m.vris]
                    for m in self._vri_monitors}}

    def admin_state(self):
        """An :class:`~repro.obs.admin.AdminState` over this monitor.

        The DES never opens sockets (it would break determinism and
        serve stale sim-time anyway); callers poll ``handle(path)``
        directly and get byte-identical payloads to the runtime's HTTP
        routes.
        """
        from repro.obs.admin import AdminState

        return AdminState(default_registry(),
                          health_fn=self.slot_states,
                          topology_fn=self.topology,
                          spans_fn=self.spans.jsonl,
                          overload_fn=(self._overload_view
                                       if self.overload is not None
                                       else None),
                          slo_fn=(self.watchdog.state
                                  if self.watchdog is not None else None))

    def _overload_view(self) -> Dict:
        """The ``/overload`` body: controller state plus the per-VRI
        occupancy map the shard-aware shedding signal reads."""
        view = self.overload.state()
        view["occupancy"] = {str(k): round(v, 4)
                             for k, v in self.occupancies().items()}
        return view

    # -- wake plumbing -----------------------------------------------------------------
    def _notify(self) -> None:
        if self._wake is not None:
            wake, self._wake = self._wake, None
            wake()

    def _arm_wakes(self, wake_cb: Callable[[], None]) -> None:
        self._wake = wake_cb
        if isinstance(self.capture, _NicBackend):
            for nic in self.capture.nics:
                nic.notify = wake_cb
            if self.capture.backlog() > 0:
                # A frame slipped in before arming: don't sleep on it.
                wake_cb()
        else:
            # Push-based backends (repro.cluster's VIP capture) expose
            # the same notify contract as a NIC queue, duck-typed so the
            # capture layer needn't know about this loop.
            set_notify = getattr(self.capture, "set_notify", None)
            if set_notify is not None:
                set_notify(wake_cb)
                if self.capture.backlog() > 0:
                    wake_cb()
        for vri in self.all_vris():
            vri.channels.data_out.set_wake(wake_cb)
            vri.channels.ctrl_out.set_wake(wake_cb)

    def _disarm_wakes(self) -> None:
        self._wake = None
        if isinstance(self.capture, _NicBackend):
            for nic in self.capture.nics:
                nic.notify = None
        else:
            set_notify = getattr(self.capture, "set_notify", None)
            if set_notify is not None:
                set_notify(None)
        for vri in self.all_vris():
            vri.channels.data_out.clear_wake()
            vri.channels.ctrl_out.clear_wake()

    # -- drain detection (memory-trace runs) ----------------------------------------------
    def _fully_drained(self) -> bool:
        if not self.capture.exhausted:
            return False
        for vri in self.all_vris():
            if vri.channels.pending_input() or not vri.channels.data_out.is_empty \
                    or not vri.channels.ctrl_out.is_empty:
                return False
        # Every dispatched frame must be accounted for: completed by a
        # live VRI (including fault discards — a corrupted slot and a
        # record that vanished from the ring both "complete" the frame
        # from the dispatcher's view), stranded when a VRI died, or
        # banked in ``retired_completed`` when its VRI retired.
        completed = sum(v.processed + v.dropped_no_route + v.dropped_out_full
                        + v.dropped_corrupt
                        + v.channels.data_in.fault_dropped
                        for v in self.all_vris())
        pending = self.stats.dispatched - completed \
            - sum(m.dropped_on_destroy + m.dropped_on_failure
                  + m.retired_completed for m in self._vri_monitors)
        return pending <= 0

    # -- fault hooks (repro.faults) --------------------------------------------------------
    def inject_ctrl_delay(self, delay: float, count: int = 1) -> None:
        """Delay the next ``count`` relayed control events by ``delay``
        seconds each (models a wedged control path; the priority *order*
        of the relay is unchanged, only its cost)."""
        if delay < 0:
            raise ValueError(f"negative control delay: {delay!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        self._ctrl_delay = delay
        self._ctrl_delay_count = count

    # -- loop steps ----------------------------------------------------------------------
    def _relay_control(self):
        """Relay one pending control event, if any (priority path)."""
        for vri in self.all_vris():
            event = vri.channels.ctrl_out.try_pop()
            if event is None:
                continue
            pop_cost = self.costs.ipc_ctrl_cost(event.size, vri.cross_socket)
            dst = self.find_vri(event.dst_vri)
            push_cost = 0.0
            if dst is not None:
                push_cost = self.costs.ipc_ctrl_cost(event.size,
                                                     dst.cross_socket)
            if self._ctrl_delay_count > 0:
                # Injected control-plane latency (repro.faults).
                self._ctrl_delay_count -= 1
                pop_cost += self._ctrl_delay
            yield from self.core.execute(pop_cost + push_cost, owner=self,
                                         time_class="us")
            if dst is not None:
                dst.channels.ctrl_in.try_push(event)
                self.stats.ctrl_relayed += 1
                if _TRACE.enabled:
                    _TRACE.instant("ctrl.relay", ts=self.sim.now, cat="ctrl",
                                   track="lvrm", src=event.src_vri,
                                   dst=event.dst_vri, kind=event.kind)
            return True
        return False

    def _transmit_one(self):
        """Drain one frame from some VRI's outgoing data queue."""
        vris = self.all_vris()
        n = len(vris)
        for offset in range(n):
            vri = vris[(self._out_rr + offset) % n]
            frame = vri.channels.data_out.try_pop()
            if frame is None:
                continue
            self._out_rr = (self._out_rr + offset + 1) % n
            # One execute per frame: the queue pop is charged together
            # with the transmit under the tx CPU class (the pop is tiny;
            # keeping event count low matters for multi-million-frame
            # runs — see the HPC guide's per-event-overhead advice).
            pop_cost = self.costs.ipc_data_cost(frame.size, vri.cross_socket)
            tx_cost = self.capture.tx_cost(frame)
            yield from self.core.execute(pop_cost + tx_cost, owner=self,
                                         time_class=self.capture.tx_time_class)
            if self.capture.transmit(frame):
                self.stats.forwarded += 1
                self.stats.forwarded_by_vr[vri.vr_name] = \
                    self.stats.forwarded_by_vr.get(vri.vr_name, 0) + 1
                if self.config.record_latency:
                    self.stats.latency.record(self.sim.now,
                                              self.sim.now - frame.t_created)
                if frame.span is not None and len(frame.span) == 4:
                    # All four stamps present: close the latency span
                    # (partial stamps mean the frame was dropped along
                    # the way and attribution would be meaningless).
                    self.spans.record_stamps(*frame.span, self.sim.now,
                                             vri_id=vri.vri_id,
                                             vr=vri.vr_name)
                if _TRACE.enabled:
                    _TRACE.instant("frame.tx", ts=self.sim.now, cat="frame",
                                   track="lvrm", vr=vri.vr_name,
                                   vri=vri.vri_id)
                for hook in self.on_forward:
                    hook(frame, self.sim.now)
            else:
                self.stats.dropped_tx += 1
                if _TRACE.enabled:
                    _TRACE.instant("frame.drop", ts=self.sim.now,
                                   cat="frame", track="lvrm", reason="tx",
                                   vri=vri.vri_id)
            return True
        return False

    def _capture_one(self):
        """Capture, classify, (maybe) allocate, balance, dispatch."""
        frame = self.capture.poll()
        if frame is None:
            return False
        rx_cost = self.capture.rx_cost(frame)
        yield from self.core.execute(rx_cost, owner=self,
                                     time_class=self.capture.rx_time_class)
        self.stats.captured += 1

        # Figure 3.2: allocation is triggered by packet receipt, rate-
        # limited to one pass per period.
        if self.vr_monitor.due(self.sim.now):
            yield from self.vr_monitor.allocate_pass()

        monitor = self.classify(frame.src_ip)
        if monitor is None or not monitor.vris:
            yield from self.core.execute(
                self._dispatch_charge(self.costs.classify_cost),
                owner=self, time_class="us")
            self.stats.drop_no_vr.inc()
            if _TRACE.enabled:
                _TRACE.instant("frame.drop", ts=self.sim.now, cat="frame",
                               track="lvrm", reason="no_vr",
                               src_ip=frame.src_ip)
            return True
        if self.overload is not None:
            # Admission fronts the monitor: a shed frame pays only the
            # classify cost (the stage reuses the 5-tuple read) and
            # never reaches record_arrival, so the allocator's arrival
            # estimate tracks *admitted* load — the load it must serve.
            self.overload.maybe_update(self.sim.now, self._occupancy)
            if not self.overload.admit_frame(frame):
                yield from self.core.execute(
                    self._dispatch_charge(self.costs.classify_cost),
                    owner=self, time_class="us")
                if _TRACE.enabled:
                    _TRACE.instant("frame.shed", ts=self.sim.now,
                                   cat="frame", track="lvrm",
                                   src_ip=frame.src_ip)
                return True
        monitor.record_arrival(self.sim.now)
        vri = monitor.pick(frame, self.sim.now)
        # Classify + balance + enqueue charged as one execution (the
        # decisions are pure reads; merging keeps per-frame event count
        # low without changing ordering).
        dispatch_cost = (self.costs.classify_cost + monitor.dispatch_cost()
                         + self.costs.ipc_data_cost(frame.size,
                                                    vri.cross_socket)
                         + vri.producer_penalty)
        if self._arena_plane:
            # The zero-copy plane's one payload copy: stage the frame
            # into its arena chunk (alloc + per-byte write) at dispatch;
            # every later hop is descriptor-priced via arena_variant().
            dispatch_cost += (self.costs.arena_alloc_cost
                              + self._staging_per_byte * frame.size)
        yield from self.core.execute(self._dispatch_charge(dispatch_cost),
                                     owner=self, time_class="us")
        if self.spans.sample_every and self.spans.should_sample():
            # Open a latency span: creation is t_start, the enqueue in
            # deliver() stamps t_push, the VRI stamps service, transmit
            # closes it.  A dropped frame leaves a partial stamp that
            # simply never records.
            frame.span = (frame.t_created,)
        # Deliberately no ``vri.alive`` check: the producer pushes into
        # shared memory and cannot know the consumer died.  Frames sent
        # to a corpse strand in its ring until the supervisor's failover
        # drains them as losses (vri_dropped_fault_total).
        if monitor.deliver(frame, vri, self.sim.now):
            self.stats.c_dispatched.inc()
        else:
            self.stats.drop_queue_full.inc()
        return True

    def _dispatch_charge(self, cost: float) -> float:
        """Monitor-side charge for one frame's dispatch work under the
        sharded plane: the splitter's hash/steer stays serial on the RX
        core while the pipeline cost divides across the shards running
        in parallel.  With one shard (the paper's layout) the cost
        passes through untouched, bit-for-bit."""
        shards = self.costs.dispatch_shards
        if shards > 1:
            return self.costs.dispatch_split_cost + cost / shards
        return cost

    def _occupancy(self) -> float:
        """Admission-control load signal: max data-ring fill across the
        live VRIs, in [0, 1] (the same per-ring ``data_count`` the JSQ
        estimator reads)."""
        cap = self.config.queue_capacity
        depth = 0
        for vri in self.all_vris():
            d = vri.channels.data_in.data_count
            if d > depth:
                depth = d
        return depth / cap if cap else 0.0

    def occupancies(self) -> Dict[int, float]:
        """Per-VRI data-ring fill ratios keyed by vri_id — the shard-
        aware shedding signal (`/overload` surfaces this map; the
        admission controller consumes its max via :meth:`_occupancy`)."""
        cap = self.config.queue_capacity
        if not cap:
            return {}
        return {vri.vri_id: vri.channels.data_in.data_count / cap
                for vri in self.all_vris()}

    # -- supervision (docs/RELIABILITY.md) -------------------------------------------------
    def _postmortem(self, vri_id: int, reason: str) -> Optional[str]:
        """Dump the flight recorder to a post-mortem file, best effort.

        Returns the path written, or ``None`` when post-mortems are off
        (no ``postmortem_dir``) or the write failed — a full disk must
        never block failover.  The file name carries a per-instance
        counter rather than a timestamp so repeated identical runs
        produce identical file sets.
        """
        directory = self.config.postmortem_dir
        if not directory:
            return None
        self._postmortems += 1
        lvrm = self.obs_labels.get("lvrm", "0")
        path = os.path.join(
            directory,
            f"postmortem-lvrm{lvrm}-vri{vri_id}-{reason}-"
            f"{self._postmortems}.txt")
        try:
            os.makedirs(directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                RECORDER.dump(fh, reason=f"vri{vri_id} {reason}")
        except OSError:
            return None
        return path

    def _check_liveness(self) -> None:
        """One supervision sweep: find crashed and hung VRIs, fail them
        over, and queue replacements (within budget, under backoff)."""
        cfg = self.config
        now = self.sim.now
        for monitor in self._vri_monitors:
            for vri in list(monitor.vris):
                # Crash detection debounces by one sweep: the corpse
                # must be at least a full supervision period old before
                # the failover fires.  A sweep that lands in the same
                # instant as the death (the canned t=2.0 kill does, with
                # period 0.05) must NOT act on it — a real polling
                # monitor confirms a missed check-in on its *next* pass,
                # and that detection window is where a crash's frame
                # losses come from.
                crashed = (not vri.alive
                           and (vri.t_died is None
                                or now - vri.t_died
                                >= cfg.supervision_period))
                # Hang detection is *behavioral*: queued input but no
                # progress for longer than the heartbeat timeout.  An
                # idle VRI (empty queues) is never declared hung, and
                # the injected ``hung`` flag is deliberately NOT read —
                # the supervisor only sees what a real monitor would.
                hung = (vri.alive and vri.queue_len > 0
                        and now - vri.last_progress > cfg.heartbeat_timeout)
                if not (crashed or hung):
                    continue
                name = monitor.spec.name
                reason = vri.failed or ("hang" if hung else "crash")
                placement = vri.placement
                reassigned = monitor.handle_failure(vri)
                self.stats.failovers.inc()
                self.death_epoch += 1
                self.stats.flows_reassigned.inc(reassigned)
                entry = self.vr_monitor.entries.get(name)
                if entry is not None:
                    entry.cores_series.record(now, len(monitor.vris))
                note = {"vr": name, "vri": vri.vri_id, "reason": reason,
                        "flows_reassigned": reassigned,
                        "survivors": len(monitor.vris)}
                postmortem = self._postmortem(vri.vri_id, reason)
                if postmortem is not None:
                    note["postmortem"] = postmortem
                RECORDER.note("supervisor.failover", ts=now, **note)
                used = self._restarts_used.get(name, 0)
                if used >= cfg.restart_budget:
                    # Budget exhausted: degrade to fewer instances
                    # rather than churn forever.
                    self.stats.degraded.inc()
                    RECORDER.note("supervisor.degraded", ts=now, vr=name,
                                  vri=vri.vri_id,
                                  restarts_used=used,
                                  survivors=len(monitor.vris))
                    continue
                self._restarts_used[name] = used + 1
                backoff = min(cfg.restart_backoff * (2 ** used),
                              cfg.restart_backoff_max)
                self._pending_respawns.append(
                    (name, placement, now + backoff, used + 1))
                RECORDER.note("supervisor.schedule_restart", ts=now,
                              vr=name, vri=vri.vri_id, attempt=used + 1,
                              backoff=backoff)

    def _respawn_due(self):
        """Generator: perform every queued respawn whose backoff expired."""
        now = self.sim.now
        due = [p for p in self._pending_respawns if p[2] <= now]
        if not due:
            return
        self._pending_respawns = [p for p in self._pending_respawns
                                  if p[2] > now]
        for name, placement, _t, attempt in due:
            entry = self.vr_monitor.entries.get(name)
            if entry is None:
                continue
            monitor = entry.monitor
            occupied = self.vr_monitor.occupied_cores()
            if (placement is None or placement.core_id in occupied
                    or placement.core_id == self.config.lvrm_core):
                # The dead VRI's core was re-used in the meantime (or
                # was never recorded): place afresh.
                try:
                    placement = self.affinity.place(occupied)
                except AllocationError:
                    self.stats.degraded.inc()
                    RECORDER.note("supervisor.degraded", ts=self.sim.now,
                                  vr=name, reason="no_core",
                                  attempt=attempt)
                    continue
            # The replacement costs what any VRI creation costs: a
            # vfork() + setup charged on LVRM's core.
            yield from self.core.execute(self.costs.vfork_cost,
                                         owner=self, time_class="sy")
            try:
                vri = monitor.create_vri(placement)
            except AllocationError:
                self.stats.degraded.inc()
                RECORDER.note("supervisor.degraded", ts=self.sim.now,
                              vr=name, reason="create_failed",
                              attempt=attempt)
                continue
            self.stats.restarts.inc()
            entry.cores_series.record(self.sim.now, len(monitor.vris))
            # Tell the fresh instance which attempt it is (rides the
            # control queue: handled before any data frame).
            vri.channels.ctrl_in.try_push(ControlEvent(
                kind=KIND_RESTART, src_vri=0, dst_vri=vri.vri_id,
                payload=struct.pack("<I", attempt),
                t_sent=self.sim.now))
            RECORDER.note("supervisor.restart", ts=self.sim.now, vr=name,
                          vri=vri.vri_id, core=placement.core_id,
                          attempt=attempt)
            if _TRACE.enabled:
                _TRACE.instant("supervisor.restart", ts=self.sim.now,
                               cat="alloc", track="lvrm", vr=name,
                               vri=vri.vri_id, core=placement.core_id,
                               attempt=attempt)
            # The main loop may be parked on its idle wake with the new
            # VRI's queues unarmed; nudge it so output drains promptly.
            self._notify()

    def _supervise(self):
        """The supervision process: a periodic sweep, independent of the
        data path (the real monitor's timer thread).  See
        docs/RELIABILITY.md for the full state machine."""
        period = self.config.supervision_period
        while True:
            yield self.sim.sleep(period)
            self._check_liveness()
            yield from self._respawn_due()
            if self.watchdog is not None:
                # SLO sweep rides the supervision clock.  Heartbeat age
                # is time since last observed progress, but only while
                # input is queued — an idle VRI is quiet, not stale
                # (same behavioral rule as hang detection above).
                ages = {v.vri_id: (self.sim.now - v.last_progress
                                   if v.queue_len > 0 else 0.0)
                        for v in self.all_vris() if v.alive}
                breaches = self.watchdog.evaluate(now=self.sim.now,
                                                  heartbeat_ages=ages)
                if self.overload is not None:
                    # Latency breaches tighten low-priority admission
                    # *before* queues overflow into supervisor-visible
                    # drops (docs/OVERLOAD.md).
                    self.overload.note_slo(any(
                        b.get("kind") == "p99_latency_ms"
                        for b in breaches))

    # -- the main loop --------------------------------------------------------------------
    def _run(self):
        # Spawn each VR's initial VRIs (allocation charged on our core).
        for monitor in self._vri_monitors:
            yield from self.vr_monitor.start_vr(monitor.spec.name)

        while True:
            progress = yield from self._relay_control()
            if not progress:
                progress = yield from self._capture_one()
                # Interleave: try to push one frame out per frame in.
                progress = (yield from self._transmit_one()) or progress
            if progress:
                continue

            if not self.done.triggered and self._fully_drained():
                # Signal trace completion, but keep serving: VRIs may
                # still exchange control events after the data dries up.
                self.done.succeed(self.stats)

            # Idle: sleep until a NIC or queue produces work.
            wake = self.sim.event()
            fired = [False]

            def _wake() -> None:
                if not fired[0]:
                    fired[0] = True
                    wake.succeed()

            self._arm_wakes(_wake)
            if self.capture.exhausted:
                if not self.done.triggered:
                    # Input is gone but frames are still in flight: poll
                    # periodically for the drain condition.
                    self.sim.call_in(20e-6, _wake)
            else:
                delay = self.capture.next_available_delay()
                if delay is not None:
                    # Paced trace source: wake when its next frame is due.
                    self.sim.call_in(max(delay, 1e-9), _wake)
            yield wake
            self._disarm_wakes()
